//! Assembles the complete simulated ecosystem.
//!
//! [`Population::build`] wires together: a simulated CA hierarchy and root
//! store, the named operators of [`crate::operators`], the notable domains
//! of Tables 2–4, a behaviour-sampled long tail (half of it on shared
//! hosting — the source of the paper's thousands of small service groups),
//! transient churn domains, DNS (A + MX), and the address plan. The result
//! hosts real TLS endpoints on a [`SimNet`] the scanner can probe.

use crate::churn::ChurnModel;
use crate::ground_truth::{DomainTruth, GroundTruth};
use crate::operators::{notables, operators, DhKexKind, NotableDomain, OperatorSpec, RotationSpec};
use crate::profile::{self, DomainBehavior, Software};
use crate::terminator::{Terminator, VHost};
use std::collections::HashMap;
use std::sync::Arc;
use ts_crypto::dh::DhGroup;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_simnet::addr::AsPlan;
use ts_simnet::{AsId, Dns, Ip, SimNet};
use ts_tls::cache::SharedSessionCache;
use ts_tls::config::ServerIdentity;
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::suites::CipherSuite;
use ts_tls::ticket::{RotationPolicy, SharedStekManager, StekManager, TicketFormat};
use ts_x509::{Blacklist, Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

const DAY: u64 = 86_400;
const HOUR: u64 = 3_600;

/// Configuration for population generation.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Ranked-list size (the scaled "Top Million").
    pub size: usize,
    /// RSA modulus size for all certificates (512 = fast simulation).
    pub rsa_bits: usize,
    /// Number of distinct RSA keys shared across the population
    /// (key *identity* does not affect any measurement; generating one
    /// key per domain would only burn time).
    pub key_pool: usize,
    /// Default transient-connection-failure probability.
    pub flakiness: f64,
    /// Long-tail probability of supporting HTTPS at all.
    pub https_rate: f64,
    /// Long-tail probability a HTTPS site presents a trusted chain.
    pub trusted_rate_given_https: f64,
    /// Fraction of domains on the institutional blacklist.
    pub blacklist_rate: f64,
    /// Transient (churning) domains as a fraction of `size`.
    pub transient_frac: f64,
    /// Study length in days.
    pub study_days: u64,
    /// Fraction of the long tail on shared hosting.
    pub shared_hosting_frac: f64,
}

impl PopulationConfig {
    /// Standard configuration at the given scale.
    pub fn new(seed: u64, size: usize) -> Self {
        PopulationConfig {
            seed,
            size,
            rsa_bits: 512,
            key_pool: 48,
            flakiness: 0.01,
            https_rate: 0.64,
            trusted_rate_given_https: 0.62,
            blacklist_rate: 0.004,
            transient_frac: 0.45,
            study_days: 63,
            shared_hosting_frac: 0.5,
        }
    }
}

/// The built world.
pub struct Population {
    /// Configuration it was built from.
    pub config: PopulationConfig,
    /// The network hosting every HTTPS endpoint.
    pub net: SimNet,
    /// DNS zone (A + MX records).
    pub dns: Dns,
    /// Browser ("NSS-sim") trust anchors.
    pub root_store: Arc<RootStore>,
    /// The institutional blacklist.
    pub blacklist: Blacklist,
    /// Churn model: the ranked list per day.
    pub churn: ChurnModel,
    /// What was actually configured (for estimator validation).
    pub truth: GroundTruth,
    /// Address plan (AS ↔ IP mapping, for the §5.1 sampling).
    pub as_plan: AsPlan,
    /// Every terminator, for white-box experiments (attack simulations).
    pub terminators: Vec<Arc<Terminator>>,
    /// The mail host the Google-analogue serves (for the §7.2 census).
    pub goggle_smtp_host: String,
}

/// Internal builder state.
struct Builder {
    cfg: PopulationConfig,
    rng: HmacDrbg,
    net: SimNet,
    dns: Dns,
    as_plan: AsPlan,
    truth: GroundTruth,
    blacklist: Blacklist,
    terminators: Vec<Arc<Terminator>>,
    keys: Vec<Arc<RsaPrivateKey>>,
    inter_key: RsaPrivateKey,
    inter_name: DistinguishedName,
    inter_cert: Certificate,
    rogue_key: RsaPrivateKey,
    rogue_name: DistinguishedName,
    next_serial: u64,
    next_unit: usize,
    // Lookup-only hash map (get/insert, never iterated): purely a
    // memoization cache, so its hash order cannot reach any output.
    identity_cache: HashMap<(usize, String, bool), Arc<ServerIdentity>>,
}

impl Builder {
    fn next_unit(&mut self) -> usize {
        let u = self.next_unit;
        self.next_unit += 1;
        u
    }

    /// Issue (and cache) an identity for `domain`.
    fn identity(&mut self, domain: &str, trusted: bool) -> Arc<ServerIdentity> {
        let key_idx = self.rng.gen_range(self.keys.len() as u64) as usize;
        let cache_key = (key_idx, domain.to_string(), trusted);
        if let Some(id) = self.identity_cache.get(&cache_key) {
            return id.clone();
        }
        self.next_serial += 1;
        let key = self.keys[key_idx].clone();
        let params = CertificateParams {
            serial: self.next_serial,
            subject: DistinguishedName::cn(domain),
            validity: Validity {
                not_before: 0,
                not_after: 10 * 360 * DAY,
            },
            dns_names: vec![domain.to_string()],
            is_ca: false,
        };
        let cert = if trusted {
            Certificate::issue(&params, &key.public, &self.inter_name, &self.inter_key)
        } else {
            Certificate::issue(&params, &key.public, &self.rogue_name, &self.rogue_key)
        };
        let chain = if trusted {
            vec![cert, self.inter_cert.clone()]
        } else {
            vec![cert]
        };
        let id = Arc::new(ServerIdentity {
            chain,
            key: (*key).clone(),
        });
        self.identity_cache.insert(cache_key, id.clone());
        id
    }

    /// Create a pod (terminator) with the given shared state, register it
    /// on `ips`, and return its index.
    fn add_pod(
        &mut self,
        cache: Option<SharedSessionCache>,
        stek: Option<SharedStekManager>,
        ephemeral: EphemeralCache,
        ips: &[Ip],
    ) -> usize {
        let pod = Arc::new(Terminator::new(cache, stek, ephemeral));
        let idx = self.terminators.len();
        self.terminators.push(pod.clone());
        for &ip in ips {
            self.net.bind(ip, pod.clone());
        }
        idx
    }

    fn fresh_ephemeral(&mut self, label: &str) -> EphemeralCache {
        EphemeralCache::new(
            EphemeralPolicy::FreshPerHandshake,
            DhGroup::Sim256,
            self.rng.fork(label),
        )
    }

    fn ephemeral_with(
        &mut self,
        dhe_policy: EphemeralPolicy,
        ecdhe_policy: EphemeralPolicy,
        label: &str,
    ) -> EphemeralCache {
        EphemeralCache::with_policies(
            dhe_policy,
            ecdhe_policy,
            DhGroup::Sim256,
            self.rng.fork(label),
        )
    }

    fn stek_manager(
        &mut self,
        rotation: RotationPolicy,
        format: TicketFormat,
    ) -> SharedStekManager {
        let rng = self.rng.fork("stek");
        SharedStekManager::new(StekManager::new(rotation, format, rng, 0))
    }
}

fn rotation_from_spec(spec: RotationSpec, accept_window: u64) -> RotationPolicy {
    match spec {
        RotationSpec::Daily => RotationPolicy::Periodic {
            period: 12 * HOUR,
            overlap: accept_window.max(HOUR),
        },
        RotationSpec::Periodic { period, overlap } => RotationPolicy::Periodic { period, overlap },
        RotationSpec::RestartDays(d) => RotationPolicy::OnRestart {
            restart_interval: d * DAY,
        },
        RotationSpec::Never => RotationPolicy::Static,
    }
}

fn stek_period_secs(spec: RotationSpec) -> u64 {
    match spec {
        RotationSpec::Daily => 12 * HOUR,
        RotationSpec::Periodic { period, .. } => period,
        RotationSpec::RestartDays(d) => d * DAY,
        RotationSpec::Never => u64::MAX,
    }
}

fn span_to_policy(span_days: u64) -> EphemeralPolicy {
    if span_days >= 63 {
        EphemeralPolicy::ReuseForever
    } else {
        EphemeralPolicy::ReuseFor {
            secs: span_days * DAY,
        }
    }
}

fn policy_secs(policy: EphemeralPolicy) -> u64 {
    match policy {
        EphemeralPolicy::FreshPerHandshake => 0,
        EphemeralPolicy::ReuseFor { secs } => secs,
        EphemeralPolicy::ReuseForever => u64::MAX,
    }
}

impl Population {
    /// Build the world from a configuration.
    pub fn build(cfg: PopulationConfig) -> Population {
        let mut rng = HmacDrbg::from_seed_label(cfg.seed, "population");

        // --- PKI ---
        let mut pki_rng = rng.fork("pki");
        let root_key = RsaPrivateKey::generate(cfg.rsa_bits, &mut pki_rng).expect("root keygen");
        let root_name = DistinguishedName::cn("NSS-sim Root CA");
        let root_cert = Certificate::issue(
            &CertificateParams {
                serial: 1,
                subject: root_name.clone(),
                validity: Validity {
                    not_before: 0,
                    not_after: 20 * 360 * DAY,
                },
                dns_names: vec![],
                is_ca: true,
            },
            &root_key.public,
            &root_name,
            &root_key,
        );
        let inter_key = RsaPrivateKey::generate(cfg.rsa_bits, &mut pki_rng).expect("inter keygen");
        let inter_name = DistinguishedName::cn("NSS-sim Issuing CA");
        let inter_cert = Certificate::issue(
            &CertificateParams {
                serial: 2,
                subject: inter_name.clone(),
                validity: Validity {
                    not_before: 0,
                    not_after: 20 * 360 * DAY,
                },
                dns_names: vec![],
                is_ca: true,
            },
            &inter_key.public,
            &root_name,
            &root_key,
        );
        let rogue_key = RsaPrivateKey::generate(cfg.rsa_bits, &mut pki_rng).expect("rogue keygen");
        let rogue_name = DistinguishedName::cn("Untrusted Self-Sign CA");
        let mut store = RootStore::new();
        store.add_root(root_cert);

        // --- Key pool ---
        let mut key_rng = rng.fork("key-pool");
        let keys: Vec<Arc<RsaPrivateKey>> = (0..cfg.key_pool)
            .map(|_| Arc::new(RsaPrivateKey::generate(cfg.rsa_bits, &mut key_rng).expect("keygen")))
            .collect();

        let mut b = Builder {
            cfg: cfg.clone(),
            rng: rng.fork("builder"),
            net: SimNet::new(),
            dns: Dns::new(),
            as_plan: AsPlan::new(),
            truth: GroundTruth::new(),
            blacklist: Blacklist::new(),
            terminators: Vec::new(),
            keys,
            inter_key,
            inter_name,
            inter_cert,
            rogue_key,
            rogue_name,
            next_serial: 100,
            next_unit: 0,
            identity_cache: HashMap::new(),
        };
        b.net.set_default_flakiness(cfg.flakiness);

        let scale = |ppm: u32| -> usize {
            (((ppm as u64) * (cfg.size as u64)) / 1_000_000).max(1) as usize
        };

        // --- Rank allocation ---
        // Notables pin their paper ranks (clamped to the list); everyone
        // else draws from the shuffled remainder.
        let notable_list = notables(cfg.size as f64 / 1_000_000.0);
        let mut taken: Vec<bool> = vec![false; cfg.size + 1];
        // Lookup-only hash map: rank assignment below walks `notable_list`
        // (a fixed slice), never this map, so hash order cannot leak.
        let mut notable_ranks: HashMap<&str, usize> = HashMap::new();
        for n in &notable_list {
            let mut r = n.rank.min(cfg.size).max(1);
            while taken[r] {
                r = (r % cfg.size) + 1;
            }
            taken[r] = true;
            notable_ranks.insert(n.name, r);
        }
        let mut free_ranks: Vec<usize> = (1..=cfg.size).filter(|&r| !taken[r]).collect();
        // Fisher-Yates with the DRBG.
        let mut shuffle_rng = rng.fork("ranks");
        for i in (1..free_ranks.len()).rev() {
            let j = shuffle_rng.gen_range((i + 1) as u64) as usize;
            free_ranks.swap(i, j);
        }

        let mut core_domains: Vec<String> = Vec::with_capacity(cfg.size);
        let goggle_smtp_host = "smtp.goggle.sim".to_string();

        // --- Notable single domains ---
        let misc_as = b.as_plan.new_as();
        for n in &notable_list {
            let rank = notable_ranks[n.name];
            build_notable(&mut b, n, rank, misc_as);
            core_domains.push(n.name.to_string());
        }

        // --- Named operators ---
        let mut rank_cursor = 0usize;
        let take_rank = |free: &[usize], cursor: &mut usize| -> usize {
            let r = free[*cursor % free.len()];
            *cursor += 1;
            r
        };
        for op in operators() {
            let n = scale(op.ppm);
            let names = build_operator(&mut b, &op, n, &scale);
            for name in names {
                let rank = take_rank(&free_ranks, &mut rank_cursor);
                if let Some(t) = b.truth.by_name_mut(&name) {
                    t.rank = rank;
                }
                core_domains.push(name);
            }
        }

        // --- Long tail (stable core) ---
        let remaining = cfg.size.saturating_sub(core_domains.len());
        let tail_names: Vec<String> = (0..remaining).map(|i| format!("site-{i:06}.sim")).collect();
        build_long_tail(&mut b, &tail_names, true);
        for name in &tail_names {
            let rank = take_rank(&free_ranks, &mut rank_cursor);
            if let Some(t) = b.truth.by_name_mut(name) {
                t.rank = rank;
            }
            core_domains.push(name.clone());
        }

        // --- Transients ---
        let transient_count = (cfg.size as f64 * cfg.transient_frac) as usize;
        let transient_names: Vec<String> = (0..transient_count)
            .map(|i| format!("churn-{i:06}.sim"))
            .collect();
        build_long_tail(&mut b, &transient_names, false);
        for name in &transient_names {
            if let Some(t) = b.truth.by_name_mut(name) {
                // Transients sit in the lower ranks.
                t.rank = cfg.size;
            }
        }

        // --- Blacklist ---
        let mut bl_rng = rng.fork("blacklist");
        for name in &core_domains {
            if bl_rng.gen_bool(cfg.blacklist_rate) {
                b.blacklist.add(name);
                if let Some(t) = b.truth.by_name_mut(name) {
                    t.blacklisted = true;
                }
            }
        }

        // --- MX records (§7.2: 9.1% of domains point at the big
        // provider's SMTP) ---
        let mut mx_rng = rng.fork("mx");
        for name in core_domains.iter().chain(transient_names.iter()) {
            if mx_rng.gen_bool(0.091) {
                b.dns.set_mx(name, &goggle_smtp_host);
            } else if mx_rng.gen_bool(0.5) {
                b.dns.set_mx(name, &format!("mail.{name}"));
            }
        }

        // --- Churn model ---
        let mut churn_rng = rng.fork("churn");
        let churn = ChurnModel::build(
            core_domains,
            transient_names,
            cfg.study_days,
            &mut churn_rng,
        );

        Population {
            config: cfg,
            net: b.net,
            dns: b.dns,
            root_store: Arc::new(store),
            blacklist: b.blacklist,
            churn,
            truth: b.truth,
            as_plan: b.as_plan,
            terminators: b.terminators,
            goggle_smtp_host,
        }
    }

    /// Stable-core domains that are HTTPS + trusted + unblacklisted — the
    /// denominator of every multi-day analysis in the paper.
    pub fn core_trusted(&self) -> Vec<String> {
        self.churn
            .core()
            .iter()
            .filter(|d| {
                self.truth
                    .get(d)
                    .map(|t| t.https && t.trusted && !t.blacklisted)
                    .unwrap_or(false)
            })
            .cloned()
            .collect()
    }
}

/// Build one notable single domain on its own terminator.
fn build_notable(b: &mut Builder, n: &NotableDomain, rank: usize, as_id: AsId) {
    let ip = b.as_plan.new_ip(as_id);
    let trusted = true;
    let identity = b.identity(n.name, trusted);

    let has_tickets = true;
    let hint = n.ticket_hint.unwrap_or(HOUR as u32);
    let accept = (hint as u64).min(24 * HOUR);
    let rotation = match n.stek_span_days {
        Some(d) if d >= 63 => RotationPolicy::Static,
        Some(d) => RotationPolicy::OnRestart {
            restart_interval: d * DAY,
        },
        None => RotationPolicy::Periodic {
            period: 12 * HOUR,
            overlap: accept.max(HOUR),
        },
    };
    let dhe_policy = n
        .dhe_span_days
        .map(span_to_policy)
        .unwrap_or(EphemeralPolicy::FreshPerHandshake);
    let ecdhe_policy = n
        .ecdhe_span_days
        .map(span_to_policy)
        .unwrap_or(EphemeralPolicy::FreshPerHandshake);

    let mut suites: Vec<CipherSuite> = Vec::new();
    suites.extend(CipherSuite::ecdhe_only());
    if n.dhe_span_days.is_some() || b.rng.gen_bool(0.6) {
        suites.extend(CipherSuite::dhe_only());
    }
    suites.push(CipherSuite::RsaAes128CbcSha256);
    let supports_dhe = suites
        .iter()
        .any(|s| s.key_exchange() == ts_tls::suites::KeyExchange::Dhe);

    let cache_lifetime = 5 * 60;
    let cache_unit = b.next_unit();
    let stek_unit = b.next_unit();
    let dh_unit = b.next_unit();
    let cache = SharedSessionCache::new(cache_lifetime, 10_000);
    let stek = b.stek_manager(rotation, TicketFormat::Rfc5077);
    let eph = b.ephemeral_with(dhe_policy, ecdhe_policy, "notable-eph");
    let pod = b.add_pod(Some(cache), Some(stek), eph, &[ip]);

    let behavior = DomainBehavior {
        software: Software::Custom,
        suites,
        cache: profile::CachePolicy {
            issue_ids: true,
            resume: true,
            lifetime: cache_lifetime,
        },
        tickets: profile::TicketPolicy {
            enabled: has_tickets,
            lifetime_hint: hint,
            accept_window: accept,
            rotation,
            reissue: true,
        },
        dhe_policy,
        ecdhe_policy,
    };
    b.terminators[pod].add_vhost(n.name, VHost { identity, behavior });
    b.dns.set_a(n.name, vec![ip]);

    b.truth.insert(DomainTruth {
        name: n.name.to_string(),
        rank,
        operator: None,
        https: true,
        trusted,
        blacklisted: false,
        stable: true,
        stek_period: Some(stek_period_secs(match n.stek_span_days {
            Some(d) if d >= 63 => RotationSpec::Never,
            Some(d) => RotationSpec::RestartDays(d),
            None => RotationSpec::Daily,
        })),
        cache_lifetime: Some(cache_lifetime),
        dhe_reuse: supports_dhe.then(|| policy_secs(dhe_policy)),
        ecdhe_reuse: Some(policy_secs(ecdhe_policy)),
        cache_unit: Some(cache_unit),
        stek_unit: Some(stek_unit),
        dh_unit: Some(dh_unit),
        pod,
    });
}

/// Build one named operator: shared units, pods, domains. Returns names.
fn build_operator(
    b: &mut Builder,
    op: &OperatorSpec,
    n: usize,
    scale: impl Fn(u32) -> usize,
) -> Vec<String> {
    let as_id = b.as_plan.new_as();
    let accept = op.ticket_accept;
    let rotation = rotation_from_spec(op.stek_rotation, accept);

    // Shared units (contiguous assignment).
    let cache_bounds: Vec<usize> = op.cache_groups_ppm.iter().map(|&ppm| scale(ppm)).collect();
    let stek_bounds: Vec<usize> = op.stek_groups_ppm.iter().map(|&ppm| scale(ppm)).collect();
    let dh_bounds: Vec<usize> = op.dh_groups_ppm.iter().map(|&ppm| scale(ppm)).collect();

    let shared_caches: Vec<(usize, SharedSessionCache)> = cache_bounds
        .iter()
        .map(|_| {
            (
                b.next_unit(),
                SharedSessionCache::new(op.cache_lifetime.max(1), 200_000),
            )
        })
        .collect();
    let shared_steks: Vec<(usize, SharedStekManager)> = stek_bounds
        .iter()
        .map(|_| {
            let unit = b.next_unit();
            let m = b.stek_manager(rotation, TicketFormat::Rfc5077);
            (unit, m)
        })
        .collect();
    let dh_policy = span_to_policy(op.dh_span_days.max(1));
    let (op_dhe_policy, op_ecdhe_policy) = match op.dh_kex {
        DhKexKind::Dhe => (dh_policy, EphemeralPolicy::FreshPerHandshake),
        DhKexKind::Ecdhe => (EphemeralPolicy::FreshPerHandshake, dh_policy),
    };
    let shared_dhs: Vec<(usize, EphemeralCache)> = dh_bounds
        .iter()
        .map(|_| {
            let unit = b.next_unit();
            let e = b.ephemeral_with(op_dhe_policy, op_ecdhe_policy, "op-dh");
            (unit, e)
        })
        .collect();

    let assign = |bounds: &[usize], idx: usize| -> Option<usize> {
        let mut cum = 0;
        for (g, &len) in bounds.iter().enumerate() {
            cum += len;
            if idx < cum {
                return Some(g);
            }
        }
        None
    };

    let mut suites: Vec<CipherSuite> = Vec::new();
    suites.extend(CipherSuite::ecdhe_only());
    if op.dh_kex == DhKexKind::Dhe {
        suites.extend(CipherSuite::dhe_only());
    }
    suites.push(CipherSuite::RsaAes128CbcSha256);
    let supports_dhe = op.dh_kex == DhKexKind::Dhe;

    let pod_size = 40usize;
    let mut names = Vec::with_capacity(n);
    let mut pod_state: Option<(
        usize,
        (Option<usize>, Option<usize>, Option<usize>),
        Vec<Ip>,
        usize,
    )> = None;

    for i in 0..n {
        let name = format!("{}-c{:05}.sim", op.name, i);
        let key = (
            assign(&cache_bounds, i),
            assign(&stek_bounds, i),
            assign(&dh_bounds, i),
        );
        // Start a new pod at boundaries or when the pod is full.
        let need_new = match &pod_state {
            Some((_, k, _, count)) => *k != key || *count >= pod_size,
            None => true,
        };
        if need_new {
            // Resolve shared state for this segment.
            let (cache_unit, cache) = match key.0 {
                Some(g) => {
                    let (u, c) = &shared_caches[g];
                    (*u, c.clone())
                }
                None => (
                    b.next_unit(),
                    SharedSessionCache::new(op.cache_lifetime.max(1), 50_000),
                ),
            };
            let (stek_unit, stek) = match key.1 {
                Some(g) => {
                    let (u, s) = &shared_steks[g];
                    (Some(*u), Some(s.clone()))
                }
                None => {
                    if op.stek_groups_ppm.is_empty() {
                        (None, None)
                    } else {
                        let u = b.next_unit();
                        let m = b.stek_manager(rotation, TicketFormat::Rfc5077);
                        (Some(u), Some(m))
                    }
                }
            };
            let (dh_unit, eph) = match key.2 {
                Some(g) => {
                    let (u, e) = &shared_dhs[g];
                    (*u, e.clone())
                }
                None => {
                    let u = b.next_unit();
                    let e = b.fresh_ephemeral("op-pod-eph");
                    (u, e)
                }
            };
            let ip_count = 1 + b.rng.gen_range(2) as usize;
            let ips: Vec<Ip> = (0..ip_count).map(|_| b.as_plan.new_ip(as_id)).collect();
            let pod = b.add_pod(Some(cache), stek, eph, &ips);
            pod_state = Some((pod, key, ips, 0));
            // Stash units for the truth below via closures: store in pod_state
            // encoded? Keep simple: recompute per-domain.
            let _ = (cache_unit, stek_unit, dh_unit);
        }
        let (pod, _, ips, count) = pod_state.as_mut().expect("just set");
        *count += 1;
        let pod = *pod;
        let dns_ips = ips.clone();

        let identity = b.identity(&name, true);
        let tickets_enabled = key.1.is_some() || !op.stek_groups_ppm.is_empty();
        let behavior = DomainBehavior {
            software: Software::Custom,
            suites: suites.clone(),
            cache: profile::CachePolicy {
                issue_ids: true,
                resume: op.cache_lifetime > 0,
                lifetime: op.cache_lifetime,
            },
            tickets: profile::TicketPolicy {
                enabled: tickets_enabled,
                lifetime_hint: op.ticket_hint,
                accept_window: op.ticket_accept,
                rotation,
                reissue: true,
            },
            dhe_policy: if key.2.is_some() {
                op_dhe_policy
            } else {
                EphemeralPolicy::FreshPerHandshake
            },
            ecdhe_policy: if key.2.is_some() {
                op_ecdhe_policy
            } else {
                EphemeralPolicy::FreshPerHandshake
            },
        };
        b.terminators[pod].add_vhost(&name, VHost { identity, behavior });
        b.dns.set_a(&name, dns_ips);

        // Truth units: recompute the ids the pod creation used.
        let cache_unit = key.0.map(|g| shared_caches[g].0);
        let stek_unit = key.1.map(|g| shared_steks[g].0);
        let dh_unit = key.2.map(|g| shared_dhs[g].0);
        b.truth.insert(DomainTruth {
            name: name.clone(),
            rank: 0, // assigned by the caller
            operator: Some(op.name.to_string()),
            https: true,
            trusted: true,
            blacklisted: false,
            stable: true,
            stek_period: tickets_enabled.then(|| stek_period_secs(op.stek_rotation)),
            cache_lifetime: (op.cache_lifetime > 0).then_some(op.cache_lifetime),
            dhe_reuse: supports_dhe.then(|| {
                if key.2.is_some() {
                    policy_secs(op_dhe_policy)
                } else {
                    0
                }
            }),
            ecdhe_reuse: Some(if key.2.is_some() && op.dh_kex == DhKexKind::Ecdhe {
                policy_secs(dh_policy)
            } else {
                0
            }),
            cache_unit,
            stek_unit,
            dh_unit,
            pod,
        });
        names.push(name);
    }

    // The Google-analogue also answers SMTP with the same STEK (§7.2).
    if op.name == "goggle" && !shared_steks.is_empty() {
        let smtp_name = "smtp.goggle.sim";
        let ip = b.as_plan.new_ip(as_id);
        let identity = b.identity(smtp_name, true);
        let stek = shared_steks[0].1.clone();
        let eph = b.fresh_ephemeral("goggle-smtp");
        let cache = SharedSessionCache::new(op.cache_lifetime.max(1), 10_000);
        let pod = b.add_pod(Some(cache), Some(stek), eph, &[ip]);
        let behavior = DomainBehavior {
            software: Software::Custom,
            suites: suites.clone(),
            cache: profile::CachePolicy {
                issue_ids: true,
                resume: true,
                lifetime: op.cache_lifetime,
            },
            tickets: profile::TicketPolicy {
                enabled: true,
                lifetime_hint: op.ticket_hint,
                accept_window: op.ticket_accept,
                rotation,
                reissue: true,
            },
            dhe_policy: EphemeralPolicy::FreshPerHandshake,
            ecdhe_policy: EphemeralPolicy::FreshPerHandshake,
        };
        b.terminators[pod].add_vhost(smtp_name, VHost { identity, behavior });
        b.dns.set_a(smtp_name, vec![ip]);
    }

    names
}

/// Build long-tail domains (`stable` marks core vs transient).
fn build_long_tail(b: &mut Builder, names: &[String], stable: bool) {
    let mut i = 0usize;
    let mut as_budget = 0usize;
    let mut current_as = b.as_plan.new_as();
    while i < names.len() {
        if as_budget > 150 {
            current_as = b.as_plan.new_as();
            as_budget = 0;
        }
        // `shared_hosting_frac` is the fraction of *domains* on shared
        // hosting. Each loop iteration creates one pod, so flipping the
        // coin at `shared_hosting_frac` directly would size-bias the
        // outcome (a shared pod consumes ~11.5 domains per flip, a single
        // only 1, putting >90% of domains on shared hosting). Convert to
        // the per-pod probability that yields the per-domain fraction.
        let f = b.cfg.shared_hosting_frac;
        let mean_pod = 11.5;
        let q = f / (mean_pod * (1.0 - f) + f);
        let shared = b.rng.gen_bool(q);
        let pod_n = if shared {
            (2 + b.rng.gen_range(19) as usize).min(names.len() - i)
        } else {
            1
        };
        let behavior = profile::sample_long_tail(&mut b.rng);
        let format = behavior.software.ticket_format();
        // §4.3's jitter source: ~10% of single-domain deployments run two
        // or three *unsynchronized* servers behind round-robin DNS — same
        // configuration, independent random STEKs, caches and ephemeral
        // values. Daily scans then flap between STEK identifiers, which is
        // exactly what the paper's first/last-seen span estimator must
        // bridge (and why within-burst "≥2x same value" exceeds "all
        // same" in Table 1).
        let replicas = if !shared && b.rng.gen_bool(0.10) {
            2 + b.rng.gen_range(2) as usize
        } else {
            1
        };
        let mut pod = 0;
        let mut ips = Vec::with_capacity(replicas);
        let mut cache_unit = None;
        let mut stek_unit = None;
        let mut dh_unit = 0;
        for r in 0..replicas {
            let cache = behavior
                .cache
                .resume
                .then(|| SharedSessionCache::new(behavior.cache.lifetime, 10_000));
            let stek = behavior
                .tickets
                .enabled
                .then(|| b.stek_manager(behavior.tickets.rotation, format));
            let eph = b.ephemeral_with(behavior.dhe_policy, behavior.ecdhe_policy, "tail-eph");
            let ip = b.as_plan.new_ip(current_as);
            let cu = cache.is_some().then(|| b.next_unit());
            let su = stek.is_some().then(|| b.next_unit());
            let du = b.next_unit();
            let p = b.add_pod(cache, stek, eph, &[ip]);
            ips.push(ip);
            if r == 0 {
                pod = p;
                cache_unit = cu;
                stek_unit = su;
                dh_unit = du;
            }
        }
        as_budget += 1;

        for k in 0..pod_n {
            let name = &names[i + k];
            let https = b.rng.gen_bool(b.cfg.https_rate);
            let trusted = https && b.rng.gen_bool(b.cfg.trusted_rate_given_https);
            if https {
                let identity = b.identity(name, trusted);
                for r in 0..replicas {
                    let t = &b.terminators[pod + r];
                    t.add_vhost(
                        name,
                        VHost {
                            identity: identity.clone(),
                            behavior: behavior.clone(),
                        },
                    );
                }
                b.dns.set_a(name, ips.clone());
            } else {
                // Domain resolves but nothing listens on 443.
                let dead_ip = b.as_plan.new_ip(current_as);
                b.dns.set_a(name, vec![dead_ip]);
            }
            b.truth.insert(DomainTruth {
                name: name.clone(),
                rank: 0,
                operator: None,
                https,
                trusted,
                blacklisted: false,
                stable,
                stek_period: (https && behavior.tickets.enabled).then(|| {
                    match behavior.tickets.rotation {
                        RotationPolicy::Static => u64::MAX,
                        RotationPolicy::OnRestart { restart_interval } => restart_interval,
                        RotationPolicy::Periodic { period, .. } => period,
                    }
                }),
                cache_lifetime: (https && behavior.cache.resume).then_some(behavior.cache.lifetime),
                dhe_reuse: (https && behavior.supports_dhe())
                    .then(|| policy_secs(behavior.dhe_policy)),
                ecdhe_reuse: (https && behavior.supports_ecdhe())
                    .then(|| policy_secs(behavior.ecdhe_policy)),
                cache_unit: if https { cache_unit } else { None },
                stek_unit: if https { stek_unit } else { None },
                dh_unit: https.then_some(dh_unit),
                pod,
            });
        }
        i += pod_n;
    }
}

impl GroundTruth {
    /// Mutable access for the builder's rank back-fill.
    fn by_name_mut(&mut self, name: &str) -> Option<&mut DomainTruth> {
        self.get_mut(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> &'static Population {
        use std::sync::OnceLock;
        static POP: OnceLock<Population> = OnceLock::new();
        POP.get_or_init(|| Population::build(PopulationConfig::new(42, 800)))
    }

    #[test]
    fn builds_and_is_deterministic() {
        let a = small();
        let b = Population::build(PopulationConfig::new(42, 800));
        let b = &b;
        assert_eq!(a.churn.core().len(), b.churn.core().len());
        assert_eq!(a.truth.len(), b.truth.len());
        let names_a: Vec<&str> = {
            let mut v: Vec<&str> = a.truth.iter().map(|t| t.name.as_str()).collect();
            v.sort_unstable();
            v
        };
        let names_b: Vec<&str> = {
            let mut v: Vec<&str> = b.truth.iter().map(|t| t.name.as_str()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn core_size_matches_config() {
        let p = small();
        assert_eq!(p.churn.core().len(), p.config.size);
    }

    #[test]
    fn https_and_trust_rates_plausible() {
        let p = small();
        let core = p.churn.core();
        let https = core
            .iter()
            .filter(|d| p.truth.get(d).map(|t| t.https).unwrap_or(false))
            .count() as f64
            / core.len() as f64;
        let trusted = core
            .iter()
            .filter(|d| p.truth.get(d).map(|t| t.trusted).unwrap_or(false))
            .count() as f64
            / core.len() as f64;
        // Operators + notables are all HTTPS; long tail ~64%.
        assert!(https > 0.6 && https < 0.85, "https rate {https}");
        assert!(trusted > 0.35 && trusted < 0.65, "trusted rate {trusted}");
    }

    #[test]
    fn operator_domains_share_units() {
        let p = small();
        let cirrus: Vec<&DomainTruth> = p
            .truth
            .iter()
            .filter(|t| t.operator.as_deref() == Some("cirrusflare"))
            .collect();
        assert!(!cirrus.is_empty());
        // All cirrusflare domains share one STEK unit.
        let units: std::collections::HashSet<Option<usize>> =
            cirrus.iter().map(|t| t.stek_unit).collect();
        assert_eq!(units.len(), 1, "single STEK unit: {units:?}");
        assert!(units.iter().next().unwrap().is_some());
    }

    #[test]
    fn notables_present_with_expected_truth() {
        let p = small();
        let yahoo = p.truth.get("yahoo.sim").expect("yahoo exists");
        assert_eq!(yahoo.stek_period, Some(u64::MAX), "static STEK");
        assert!(yahoo.trusted);
        let netflix = p.truth.get("netflix.sim").expect("netflix exists");
        assert_eq!(netflix.stek_period, Some(54 * DAY));
        assert_eq!(netflix.dhe_reuse, Some(59 * DAY));
        let whatsapp = p.truth.get("whatsapp.sim").expect("whatsapp exists");
        assert_eq!(whatsapp.ecdhe_reuse, Some(62 * DAY));
    }

    #[test]
    fn a_trusted_domain_actually_handshakes() {
        let p = small();
        let mut rng = HmacDrbg::new(b"probe");
        let domain = "yahoo.sim";
        let ip = p.dns.resolve(domain, &mut rng).expect("resolves");
        let cfg = ts_tls::config::ClientConfig::new(p.root_store.clone(), domain, 1000);
        let conn = p.net.connect(ip, cfg, 1000, &mut rng);
        // Default flakiness is 1%; retry a few times.
        let mut conn = conn;
        for _ in 0..5 {
            if conn.is_ok() {
                break;
            }
            let cfg = ts_tls::config::ClientConfig::new(p.root_store.clone(), domain, 1000);
            conn = p.net.connect(ip, cfg, 1000, &mut rng);
        }
        let conn = conn.expect("handshake succeeds");
        let s = conn.client.summary().unwrap();
        assert_eq!(s.trust, Some(Ok(())));
        assert!(s.new_ticket.is_some(), "notables issue tickets");
    }

    #[test]
    fn non_https_domain_refuses() {
        let p = small();
        let mut rng = HmacDrbg::new(b"refuse");
        let dead = p
            .truth
            .iter()
            .find(|t| !t.https && t.stable)
            .expect("some non-HTTPS domain");
        let ip = p.dns.resolve(&dead.name, &mut rng).expect("resolves");
        let cfg = ts_tls::config::ClientConfig::new(p.root_store.clone(), &dead.name, 1000);
        assert!(matches!(
            p.net.connect(ip, cfg, 1000, &mut rng),
            Err(ts_simnet::ConnectError::Refused)
        ));
    }

    #[test]
    fn untrusted_https_domain_fails_trust() {
        let p = small();
        let mut rng = HmacDrbg::new(b"untrusted");
        let ut = p
            .truth
            .iter()
            .find(|t| t.https && !t.trusted && t.stable)
            .expect("some untrusted domain");
        let ip = p.dns.resolve(&ut.name, &mut rng).expect("resolves");
        let mut cfg = ts_tls::config::ClientConfig::new(p.root_store.clone(), &ut.name, 1000);
        cfg.verify_certs = false;
        let mut attempt = p.net.connect(ip, cfg, 1000, &mut rng);
        for _ in 0..5 {
            if attempt.is_ok() {
                break;
            }
            let mut cfg = ts_tls::config::ClientConfig::new(p.root_store.clone(), &ut.name, 1000);
            cfg.verify_certs = false;
            attempt = p.net.connect(ip, cfg, 1000, &mut rng);
        }
        let conn = attempt.expect("permissive handshake succeeds");
        assert!(matches!(conn.client.summary().unwrap().trust, Some(Err(_))));
    }

    #[test]
    fn mx_census_close_to_nine_percent() {
        let p = small();
        let with_goggle = p.dns.domains_with_mx(&p.goggle_smtp_host).len() as f64;
        let total = p.churn.unique_domains() as f64;
        let rate = with_goggle / total;
        assert!((rate - 0.091).abs() < 0.03, "goggle MX rate {rate}");
    }

    #[test]
    fn smtp_host_shares_goggle_stek() {
        let p = small();
        let mut rng = HmacDrbg::new(b"smtp");
        let ip = p
            .dns
            .resolve(&p.goggle_smtp_host, &mut rng)
            .expect("smtp resolves");
        let cfg = ts_tls::config::ClientConfig::new(p.root_store.clone(), &p.goggle_smtp_host, 500);
        let mut attempt = p.net.connect(ip, cfg, 500, &mut rng);
        for _ in 0..5 {
            if attempt.is_ok() {
                break;
            }
            let cfg =
                ts_tls::config::ClientConfig::new(p.root_store.clone(), &p.goggle_smtp_host, 500);
            attempt = p.net.connect(ip, cfg, 500, &mut rng);
        }
        let conn = attempt.expect("smtp handshake");
        let smtp_ticket = conn.client.summary().unwrap().new_ticket.expect("ticket");
        let smtp_stek =
            ts_tls::ticket::extract_stek_id(&smtp_ticket.ticket, TicketFormat::Rfc5077).unwrap();
        // Compare with a goggle web domain's STEK id.
        let web = p
            .truth
            .iter()
            .find(|t| t.operator.as_deref() == Some("goggle"))
            .expect("goggle domain");
        let ip = p.dns.resolve(&web.name, &mut rng).expect("resolves");
        let cfg = ts_tls::config::ClientConfig::new(p.root_store.clone(), &web.name, 500);
        let mut attempt = p.net.connect(ip, cfg, 500, &mut rng);
        for _ in 0..5 {
            if attempt.is_ok() {
                break;
            }
            let cfg = ts_tls::config::ClientConfig::new(p.root_store.clone(), &web.name, 500);
            attempt = p.net.connect(ip, cfg, 500, &mut rng);
        }
        let conn = attempt.expect("web handshake");
        let web_ticket = conn.client.summary().unwrap().new_ticket.expect("ticket");
        let web_stek =
            ts_tls::ticket::extract_stek_id(&web_ticket.ticket, TicketFormat::Rfc5077).unwrap();
        assert_eq!(smtp_stek, web_stek, "SMTP and web share the STEK");
    }

    #[test]
    fn shared_hosting_pods_exist() {
        let p = small();
        let mut pod_counts: HashMap<usize, usize> = HashMap::new();
        for t in p.truth.iter() {
            if t.https && t.operator.is_none() {
                *pod_counts.entry(t.pod).or_default() += 1;
            }
        }
        let multi = pod_counts.values().filter(|&&c| c > 1).count();
        assert!(multi > 5, "shared-hosting pods exist ({multi})");
    }
}
