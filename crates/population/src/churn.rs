//! Daily top-list churn (§3).
//!
//! The paper saw heavy churn: 1.53 M unique domains appeared in the Top
//! Million over nine weeks, only 54% stayed the whole time, and 155 K
//! appeared in ≤7 daily polls. We model a *stable core* present every day
//! plus *transient* domains active for contiguous day-windows; multi-day
//! analyses restrict to the core, exactly as the paper restricts to
//! domains "in the list for the entire period".

use ts_crypto::drbg::HmacDrbg;

/// One transient domain's visibility window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransientWindow {
    /// Domain name.
    pub name: String,
    /// First day (inclusive).
    pub start_day: u64,
    /// Last day (inclusive).
    pub end_day: u64,
}

/// The churn model: which domains are in the list on each day.
#[derive(Debug, Default)]
pub struct ChurnModel {
    core: Vec<String>,
    transients: Vec<TransientWindow>,
    study_days: u64,
}

impl ChurnModel {
    /// Build a model: `core` domains always present; `transient_names`
    /// get random contiguous windows within `study_days`.
    pub fn build(
        core: Vec<String>,
        transient_names: Vec<String>,
        study_days: u64,
        rng: &mut HmacDrbg,
    ) -> Self {
        let transients = transient_names
            .into_iter()
            .map(|name| {
                // Window length skews short (the paper's 155 K domains in
                // ≤7 polls): mixture of short and medium windows.
                let len = if rng.gen_bool(0.45) {
                    1 + rng.gen_range(7)
                } else {
                    8 + rng.gen_range(study_days.saturating_sub(8).max(1))
                };
                let latest_start = study_days.saturating_sub(1);
                let start_day = rng.gen_range(latest_start + 1);
                let end_day = (start_day + len - 1).min(study_days - 1);
                TransientWindow {
                    name,
                    start_day,
                    end_day,
                }
            })
            .collect();
        ChurnModel {
            core,
            transients,
            study_days,
        }
    }

    /// Domains in the list on `day` (core first, then active transients).
    pub fn list_for_day(&self, day: u64) -> Vec<String> {
        let mut out = self.core.clone();
        for t in &self.transients {
            if t.start_day <= day && day <= t.end_day {
                out.push(t.name.clone());
            }
        }
        out
    }

    /// The stable core (what multi-day analyses use).
    pub fn core(&self) -> &[String] {
        &self.core
    }

    /// All transient windows.
    pub fn transients(&self) -> &[TransientWindow] {
        &self.transients
    }

    /// Total unique domains ever listed.
    pub fn unique_domains(&self) -> usize {
        self.core.len() + self.transients.len()
    }

    /// Study length in days.
    pub fn study_days(&self) -> u64 {
        self.study_days
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(core_n: usize, trans_n: usize) -> ChurnModel {
        let core = (0..core_n).map(|i| format!("core{i}.sim")).collect();
        let trans = (0..trans_n).map(|i| format!("tr{i}.sim")).collect();
        let mut rng = HmacDrbg::new(b"churn");
        ChurnModel::build(core, trans, 63, &mut rng)
    }

    #[test]
    fn core_always_present() {
        let m = model(10, 50);
        for day in [0u64, 1, 30, 62] {
            let list = m.list_for_day(day);
            for i in 0..10 {
                assert!(list.contains(&format!("core{i}.sim")), "day {day}");
            }
        }
    }

    #[test]
    fn transients_respect_windows() {
        let m = model(0, 200);
        for t in m.transients() {
            assert!(t.start_day <= t.end_day);
            assert!(t.end_day < 63);
            let before = t.start_day.checked_sub(1);
            if let Some(d) = before {
                assert!(!m.list_for_day(d).contains(&t.name));
            }
            assert!(m.list_for_day(t.start_day).contains(&t.name));
            assert!(m.list_for_day(t.end_day).contains(&t.name));
            if t.end_day + 1 < 63 {
                assert!(!m.list_for_day(t.end_day + 1).contains(&t.name));
            }
        }
    }

    #[test]
    fn short_windows_common() {
        let m = model(0, 1000);
        let short = m
            .transients()
            .iter()
            .filter(|t| t.end_day - t.start_day + 1 <= 7)
            .count();
        // ≥45% sampled short, plus truncation at the study end.
        assert!(short as f64 / 1000.0 > 0.40, "short fraction {short}");
    }

    #[test]
    fn unique_count_and_daily_size() {
        let m = model(100, 300);
        assert_eq!(m.unique_domains(), 400);
        let day0 = m.list_for_day(0).len();
        assert!(day0 >= 100);
        assert!(day0 <= 400);
    }

    #[test]
    fn deterministic() {
        let a = model(10, 100);
        let b = model(10, 100);
        assert_eq!(a.transients(), b.transients());
    }
}
