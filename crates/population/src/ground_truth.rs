//! Ground truth: what the population generator actually configured.
//!
//! The scanner must *infer* lifetimes and sharing from the outside; the
//! ground truth records what was configured so tests can validate the
//! estimators (e.g. the first/last-seen STEK-span estimator against the
//! real rotation period).

use std::collections::BTreeMap;

/// The configured truth for one domain.
#[derive(Debug, Clone)]
pub struct DomainTruth {
    /// Domain name.
    pub name: String,
    /// Rank in the list (1-based).
    pub rank: usize,
    /// Operator name (None = long tail).
    pub operator: Option<String>,
    /// Supports HTTPS at all.
    pub https: bool,
    /// Presents a browser-trusted certificate.
    pub trusted: bool,
    /// On the institutional blacklist.
    pub blacklisted: bool,
    /// Part of the stable core (in the list every day)?
    pub stable: bool,
    /// STEK rotation period in seconds (None = no tickets; `u64::MAX` =
    /// never rotates).
    pub stek_period: Option<u64>,
    /// Session-cache lifetime in seconds (None = no session-ID resumption).
    pub cache_lifetime: Option<u64>,
    /// DHE reuse span in seconds (None = no DHE support; 0 = fresh).
    pub dhe_reuse: Option<u64>,
    /// ECDHE reuse span in seconds (None = no ECDHE support; 0 = fresh).
    pub ecdhe_reuse: Option<u64>,
    /// Shared session-cache unit id (same id ⇒ same cache object).
    pub cache_unit: Option<usize>,
    /// Shared STEK unit id.
    pub stek_unit: Option<usize>,
    /// Shared ephemeral-cache unit id.
    pub dh_unit: Option<usize>,
    /// Terminator (pod) id.
    pub pod: usize,
}

/// Ground truth for the whole population.
#[derive(Debug, Default)]
pub struct GroundTruth {
    // Ordered: `iter()` escapes to validation sweeps and report tables, so
    // the walk must be name-ordered rather than hash-seed-ordered.
    by_name: BTreeMap<String, DomainTruth>,
}

impl GroundTruth {
    /// Empty truth table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a domain.
    pub fn insert(&mut self, truth: DomainTruth) {
        self.by_name.insert(truth.name.clone(), truth);
    }

    /// Look up a domain.
    pub fn get(&self, name: &str) -> Option<&DomainTruth> {
        self.by_name.get(name)
    }

    /// Mutable lookup (the builder back-fills ranks).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut DomainTruth> {
        self.by_name.get_mut(name)
    }

    /// Iterate all domains.
    pub fn iter(&self) -> impl Iterator<Item = &DomainTruth> {
        self.by_name.values()
    }

    /// Number of recorded domains.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// All domains configured with a given shared-unit id, for validating
    /// service-group inference. `select` picks which unit field to match.
    pub fn unit_members(
        &self,
        unit: usize,
        select: impl Fn(&DomainTruth) -> Option<usize>,
    ) -> Vec<&DomainTruth> {
        let mut v: Vec<&DomainTruth> = self.iter().filter(|t| select(t) == Some(unit)).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(name: &str, cache_unit: Option<usize>) -> DomainTruth {
        DomainTruth {
            name: name.into(),
            rank: 1,
            operator: None,
            https: true,
            trusted: true,
            blacklisted: false,
            stable: true,
            stek_period: None,
            cache_lifetime: Some(300),
            dhe_reuse: None,
            ecdhe_reuse: None,
            cache_unit,
            stek_unit: None,
            dh_unit: None,
            pod: 0,
        }
    }

    #[test]
    fn insert_get_iterate() {
        let mut gt = GroundTruth::new();
        assert!(gt.is_empty());
        gt.insert(truth("a.sim", Some(1)));
        gt.insert(truth("b.sim", Some(1)));
        gt.insert(truth("c.sim", Some(2)));
        assert_eq!(gt.len(), 3);
        assert_eq!(gt.get("a.sim").unwrap().cache_unit, Some(1));
        assert!(gt.get("zzz.sim").is_none());
    }

    #[test]
    fn unit_members_filters_and_sorts() {
        let mut gt = GroundTruth::new();
        gt.insert(truth("b.sim", Some(1)));
        gt.insert(truth("a.sim", Some(1)));
        gt.insert(truth("c.sim", Some(2)));
        gt.insert(truth("d.sim", None));
        let members = gt.unit_members(1, |t| t.cache_unit);
        let names: Vec<&str> = members.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["a.sim", "b.sim"]);
    }
}
