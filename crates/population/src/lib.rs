//! # ts-population — a synthetic Alexa-like HTTPS ecosystem
//!
//! Builds the world the scanner measures: a ranked list of domains hosted
//! on SSL terminators whose behaviour profiles are calibrated to what the
//! paper observed in the real Top Million —
//!
//! * HTTPS / browser-trust rates and daily list churn (§3)
//! * per-software session-cache and ticket defaults (Apache 5 min,
//!   Nginx 3 min tickets, IIS 10 h caches — §4.1/§4.2)
//! * STEK rotation behaviour spanning daily rotation to never (§4.3)
//! * DHE/ECDHE ephemeral-value reuse populations (§4.4)
//! * named "operators" mirroring the paper's service groups: a large CDN
//!   (CloudFlare-like), a big tech company with 14 h STEK rotation
//!   (Google-like), a never-rotating CDN (Fastly-like), shared hosters,
//!   and the individual notable domains of Tables 2–4 (§5, §7)
//!
//! Counts are expressed in parts-per-million of the paper's Top Million
//! and scaled to the configured population size, so proportions — the
//! quantities the reproduction must preserve — are size-invariant.
//!
//! Everything derives deterministically from the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod churn;
pub mod ground_truth;
pub mod operators;
pub mod profile;
pub mod shard;
pub mod terminator;

pub use build::{Population, PopulationConfig};
pub use ground_truth::GroundTruth;
pub use profile::{CachePolicy, DomainBehavior, Software, TicketPolicy};
pub use shard::PopulationShards;
pub use terminator::Terminator;
