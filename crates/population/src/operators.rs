//! Named operators and notable domains.
//!
//! The paper's service-group tables (5, 6, 7) and prolonged-reuse tables
//! (2, 3, 4) name specific providers. We mirror each with a `.sim`
//! counterpart whose *structure* — group sizes in parts-per-million of the
//! ranked list, rotation cadence, sharing topology — matches the paper's
//! observation. Group sizes scale with the configured population; notable
//! single domains keep their paper ranks.

use crate::profile::{DAY, HOUR, MINUTE};

/// Which key exchange a shared Diffie-Hellman group reuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhKexKind {
    /// Finite-field DHE.
    Dhe,
    /// X25519 ECDHE.
    Ecdhe,
}

/// STEK rotation cadence, in spec form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationSpec {
    /// Fresh key at least daily.
    Daily,
    /// Custom infrastructure: rotate every `period`, accept old keys for
    /// `overlap` (the Google §7.2 pattern).
    Periodic {
        /// Rotation period (seconds).
        period: u64,
        /// Retired-key acceptance overlap (seconds).
        overlap: u64,
    },
    /// New key only on (rare) restarts every N days.
    RestartDays(u64),
    /// Never rotates (synced key file — Fastly/Yandex pattern).
    Never,
}

/// A named multi-domain operator.
#[derive(Debug, Clone)]
pub struct OperatorSpec {
    /// Operator label (appears in service-group reports).
    pub name: &'static str,
    /// Total domains, in parts-per-million of the ranked list.
    pub ppm: u32,
    /// Shared session-cache group sizes (ppm). Domains beyond the listed
    /// groups resume from per-terminator caches.
    pub cache_groups_ppm: &'static [u32],
    /// Session-cache entry lifetime (0 = no session-ID resumption).
    pub cache_lifetime: u64,
    /// Shared STEK group sizes (ppm). Empty = tickets disabled.
    pub stek_groups_ppm: &'static [u32],
    /// STEK rotation cadence.
    pub stek_rotation: RotationSpec,
    /// Ticket lifetime hint (seconds, 0 = unspecified).
    pub ticket_hint: u32,
    /// Ticket acceptance window (seconds).
    pub ticket_accept: u64,
    /// Shared Diffie-Hellman value group sizes (ppm). Empty = fresh values.
    pub dh_groups_ppm: &'static [u32],
    /// Reuse span of the shared DH value, in days (63 = whole study).
    pub dh_span_days: u64,
    /// Which key exchange the shared value belongs to.
    pub dh_kex: DhKexKind,
}

/// The operator table. ppm values follow the paper's Tables 5–7 counts.
pub fn operators() -> Vec<OperatorSpec> {
    vec![
        OperatorSpec {
            // The CloudFlare analogue: the largest STEK group (62,176
            // domains), two session-cache groups (30,163 + 15,241),
            // daily STEK rotation, 18-hour ticket acceptance (Fig. 2's
            // 18 h step), fresh ECDHE values.
            name: "cirrusflare",
            ppm: 62_176,
            cache_groups_ppm: &[30_163, 15_241],
            // 18 hours for both the session caches and the ticket window:
            // with the CDN at ~14% of resuming domains this reproduces both
            // Fig. 1's >1h tail (~18%) and Fig. 2's 18-hour step.
            cache_lifetime: 18 * HOUR,
            stek_groups_ppm: &[62_176],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: (18 * HOUR) as u32,
            ticket_accept: 18 * HOUR,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // The Google analogue: one STEK for every property (8,973),
            // 14-hour rotation with 28-hour acceptance, ≥24 h session
            // caches, five Blogspot-like cache sub-groups.
            name: "goggle",
            ppm: 8_973,
            cache_groups_ppm: &[1_000, 849, 743, 732, 648, 561],
            cache_lifetime: 24 * HOUR,
            stek_groups_ppm: &[8_973],
            stek_rotation: RotationSpec::Periodic {
                period: 14 * HOUR,
                overlap: 14 * HOUR,
            },
            ticket_hint: (28 * HOUR) as u32,
            ticket_accept: 28 * HOUR,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // Automattic analogue (wordpress-style hosting).
            name: "automaton",
            ppm: 4_182,
            cache_groups_ppm: &[2_247, 1_552],
            cache_lifetime: HOUR,
            stek_groups_ppm: &[4_182],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: HOUR as u32,
            ticket_accept: HOUR,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // TMall analogue: large retail platform, never-rotating STEK
            // (one of Fig. 6's big red blocks).
            name: "teemall",
            ppm: 3_305,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[3_305],
            stek_rotation: RotationSpec::Never,
            ticket_hint: (10 * HOUR) as u32,
            ticket_accept: 10 * HOUR,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // Shopify analogue.
            name: "shopling",
            ppm: 3_247,
            cache_groups_ppm: &[593],
            cache_lifetime: 30 * MINUTE,
            stek_groups_ppm: &[3_247],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: (30 * MINUTE) as u32,
            ticket_accept: 30 * MINUTE,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // GoDaddy analogue (shared hosting).
            name: "gopappy",
            ppm: 1_875,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[1_875],
            stek_rotation: RotationSpec::RestartDays(2),
            ticket_hint: (5 * MINUTE) as u32,
            ticket_accept: 5 * MINUTE,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // Amazon analogue.
            name: "amazonia",
            ppm: 1_495,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[1_495],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: (5 * MINUTE) as u32,
            ticket_accept: 5 * MINUTE,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // Tumblr analogue: three sibling STEK groups.
            name: "tumblrr",
            ppm: 2_890,
            cache_groups_ppm: &[],
            cache_lifetime: 10 * MINUTE,
            stek_groups_ppm: &[975, 959, 956],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: (10 * MINUTE) as u32,
            ticket_accept: 10 * MINUTE,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // Fastly analogue: a CDN whose synchronized STEK never changed
            // for the whole study (§6.1) — fronting civic domains.
            name: "fastlane",
            ppm: 1_000,
            cache_groups_ppm: &[1_000],
            cache_lifetime: HOUR,
            stek_groups_ppm: &[1_000],
            stek_rotation: RotationSpec::Never,
            ticket_hint: HOUR as u32,
            ticket_accept: HOUR,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // SquareSpace analogue: the largest Diffie-Hellman service
            // group (1,627 domains sharing ECDHE values).
            name: "rhombusspace",
            ppm: 1_627,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[1_627],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: (5 * MINUTE) as u32,
            ticket_accept: 5 * MINUTE,
            dh_groups_ppm: &[1_627],
            dh_span_days: 3,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // LiveJournal analogue: second-largest DH group.
            name: "livepaper",
            ppm: 1_330,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: 0,
            ticket_accept: 0,
            dh_groups_ppm: &[1_330],
            dh_span_days: 2,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // Jimdo analogue: two shared-ECDHE hosting servers (19- and
            // 17-day value reuse on single IPs).
            name: "jimbo",
            ppm: 357,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: (3 * MINUTE) as u32,
            ticket_accept: 3 * MINUTE,
            dh_groups_ppm: &[179, 178],
            dh_span_days: 19,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // Hostway analogue: the most-shared finite-field DHE value
            // (137 domains across 119 IPs in one AS).
            name: "hostroad",
            ppm: 137,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: (3 * MINUTE) as u32,
            ticket_accept: 3 * MINUTE,
            dh_groups_ppm: &[137],
            dh_span_days: 10,
            dh_kex: DhKexKind::Dhe,
        },
        OperatorSpec {
            // Affinity Internet analogue: one DHE value across ~91 domains
            // for 62 days.
            name: "kinship",
            ppm: 146,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: 0,
            ticket_accept: 0,
            dh_groups_ppm: &[146],
            dh_span_days: 62,
            dh_kex: DhKexKind::Dhe,
        },
        OperatorSpec {
            // Jack Henry & Associates analogue: 79 bank/credit-union
            // domains on one STEK for 59 days, then a second shared STEK.
            name: "jackhenrietta",
            ppm: 79,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[79],
            stek_rotation: RotationSpec::RestartDays(59),
            ticket_hint: (10 * HOUR) as u32,
            ticket_accept: 10 * HOUR,
            dh_groups_ppm: &[],
            dh_span_days: 0,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            // SquareSpace-tier DH sharers from Table 7.
            name: "distilled",
            ppm: 174,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: 0,
            ticket_accept: 0,
            dh_groups_ppm: &[174],
            dh_span_days: 4,
            dh_kex: DhKexKind::Ecdhe,
        },
        OperatorSpec {
            name: "atypical",
            ppm: 167,
            cache_groups_ppm: &[],
            cache_lifetime: 5 * MINUTE,
            stek_groups_ppm: &[],
            stek_rotation: RotationSpec::Daily,
            ticket_hint: 0,
            ticket_accept: 0,
            dh_groups_ppm: &[167],
            dh_span_days: 5,
            dh_kex: DhKexKind::Ecdhe,
        },
    ]
}

/// A notable single domain (Tables 2–4 and §7's named sites).
#[derive(Debug, Clone)]
pub struct NotableDomain {
    /// Domain name (".sim" analogue of the paper's site).
    pub name: &'static str,
    /// Average Alexa rank in the paper.
    pub rank: usize,
    /// STEK reuse span in days (None = rotates daily).
    pub stek_span_days: Option<u64>,
    /// DHE value reuse span in days (None = fresh).
    pub dhe_span_days: Option<u64>,
    /// ECDHE value reuse span in days (None = fresh).
    pub ecdhe_span_days: Option<u64>,
    /// Ticket lifetime hint override (seconds; None = 1 hour default).
    pub ticket_hint: Option<u32>,
}

const fn notable(
    name: &'static str,
    rank: usize,
    stek: Option<u64>,
    dhe: Option<u64>,
    ecdhe: Option<u64>,
) -> NotableDomain {
    NotableDomain {
        name,
        rank,
        stek_span_days: stek,
        dhe_span_days: dhe,
        ecdhe_span_days: ecdhe,
        ticket_hint: None,
    }
}

/// Secondary notable reusers, rank-ascending. These are real Tables 2–4
/// entries, but pinning all of them regardless of population size
/// overweights prolonged reuse in small worlds: at 1,500 domains the
/// fixed block alone pushed DHE burst reuse to ~14.6% of supporters vs
/// the paper's 7.2%. They thin with `scale` exactly like the yandex and
/// kayak bulk families, keeping reuse *rates* stable across `--size`.
const SECONDARY_NOTABLES: &[NotableDomain] = &[
    notable("slack.sim", 120, Some(18), None, None),
    notable("vice.sim", 158, None, None, Some(26)),
    notable("9gag.sim", 221, None, None, Some(31)),
    notable("liputan6.sim", 322, None, None, Some(28)),
    notable("paytm.sim", 353, None, None, Some(27)),
    notable("ebay-in.sim", 392, None, Some(7), None),
    notable("ebay-it.sim", 456, None, Some(8), None),
    notable("playstation.sim", 464, None, None, Some(11)),
    notable("woot.sim", 527, None, None, Some(62)),
    notable("bleacherreport.sim", 528, Some(7), Some(24), Some(24)),
    notable("cbssports.sim", 592, None, Some(60), None),
    notable("leagueoflegends.sim", 615, None, None, Some(27)),
    notable("gamefaqs.sim", 626, None, Some(12), None),
    notable("overstock.sim", 633, None, Some(17), None),
    notable("symantec.sim", 900, None, None, Some(41)),
    notable("norton.sim", 1_200, None, None, Some(19)),
    notable("mint.sim", 1_500, None, None, Some(62)),
    notable("commsec.sim", 2_100, None, Some(36), None),
    notable("betterment.sim", 3_000, None, None, Some(62)),
    notable("symanteccloud.sim", 4_000, None, None, Some(16)),
];

/// The notable-domain table. Spans follow the paper's Tables 2–4; 63 days
/// means "in use the entire study" (and likely beyond).
///
/// `scale` is population_size / 1,000,000. The named headline domains are
/// always present (they make the reproduced tables recognizable), but
/// everything bulk — the 8 yandex.[tld] mirrors, the 32 kayak.[tld]
/// mirrors, and the [`SECONDARY_NOTABLES`] block — scales with the
/// population, so small simulations are not overweighted with long-reuse
/// domains relative to the paper's proportions.
pub fn notables(scale: f64) -> Vec<NotableDomain> {
    let mut v = vec![
        // Table 2 headliners: prolonged STEK reuse.
        notable("yahoo.sim", 5, Some(63), None, None),
        notable("qq.sim", 19, Some(56), None, None),
        notable("taobao.sim", 20, Some(63), None, None),
        notable("pinterest.sim", 21, Some(63), None, None),
        notable("mail-ru.sim", 25, Some(63), None, None),
        notable("yandex.sim", 28, Some(63), None, None),
        notable("netflix.sim", 31, Some(54), Some(59), Some(59)),
        notable("imgur.sim", 35, Some(63), None, None),
        notable("tmall-home.sim", 41, Some(63), None, None),
        notable("fc2.sim", 53, Some(18), Some(18), None),
        notable("pornhub.sim", 55, Some(29), None, None),
        // Table 3/4 headliners: prolonged key-exchange reuse.
        notable("whatsapp.sim", 74, None, None, Some(62)),
        notable("kayak.sim", 580, None, Some(13), None),
        notable("cookpad.sim", 730, None, Some(63), None),
    ];
    let keep = ((SECONDARY_NOTABLES.len() as f64 * scale * 50.0).round() as usize)
        .min(SECONDARY_NOTABLES.len());
    v.extend(SECONDARY_NOTABLES.iter().take(keep).cloned());
    // The eight yandex.[tld] siblings (each 63 days of STEK reuse),
    // thinned proportionally at small scales.
    let yandex_n = ((7.0 * scale * 50.0).round() as usize).clamp(1, 7);
    for (i, tld) in ["ua", "by", "kz", "com", "net", "tr", "uz"]
        .iter()
        .take(yandex_n)
        .enumerate()
    {
        v.push(notable(
            Box::leak(format!("yandex-{tld}.sim").into_boxed_str()),
            500 + i * 700,
            Some(63),
            None,
            None,
        ));
    }
    // 32 kayak.[tld] domains with 6–18 days of DHE reuse, thinned likewise.
    let kayak_n = ((31.0 * scale * 50.0).round() as usize).clamp(1, 31);
    for i in 0..kayak_n {
        v.push(notable(
            Box::leak(format!("kayak-{i:02}.sim").into_boxed_str()),
            5_000 + i * 250,
            None,
            Some(6 + (i as u64) % 13),
            None,
        ));
    }
    // The two 90-day-lifetime-hint curiosities.
    for name in ["fantabobworld.sim", "fantabobshow.sim"] {
        v.push(NotableDomain {
            name,
            rank: 450_000,
            stek_span_days: Some(63),
            dhe_span_days: None,
            ecdhe_span_days: None,
            ticket_hint: Some((90 * DAY) as u32),
        });
    }
    // Fastly-fronted civic domains get their names via the fastlane
    // operator; Google-style giants that rotate well:
    v.push(notable("twitter.sim", 8, None, None, None));
    v.push(notable("baidu.sim", 4, None, None, None));
    v
}

/// Total ppm consumed by named operators (sanity bound for the builder).
pub fn total_operator_ppm() -> u64 {
    operators().iter().map(|o| o.ppm as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_table_is_sane() {
        let ops = operators();
        assert!(ops.len() >= 15);
        for op in &ops {
            assert!(op.ppm > 0, "{}", op.name);
            let cache_sum: u32 = op.cache_groups_ppm.iter().sum();
            assert!(cache_sum <= op.ppm, "{} cache groups exceed size", op.name);
            let stek_sum: u32 = op.stek_groups_ppm.iter().sum();
            assert!(stek_sum <= op.ppm, "{} stek groups exceed size", op.name);
            let dh_sum: u32 = op.dh_groups_ppm.iter().sum();
            assert!(dh_sum <= op.ppm, "{} dh groups exceed size", op.name);
        }
        // Totals stay well under a million, leaving room for the long tail.
        assert!(total_operator_ppm() < 200_000);
    }

    #[test]
    fn largest_groups_match_paper_ordering() {
        let ops = operators();
        let cirrus = ops.iter().find(|o| o.name == "cirrusflare").unwrap();
        let goggle = ops.iter().find(|o| o.name == "goggle").unwrap();
        assert!(cirrus.stek_groups_ppm[0] > goggle.stek_groups_ppm[0]);
        assert_eq!(cirrus.cache_groups_ppm[0], 30_163);
        assert_eq!(cirrus.stek_groups_ppm[0], 62_176);
    }

    #[test]
    fn notables_unique_names() {
        let n = notables(1.0);
        let mut names: Vec<&str> = n.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate notable names");
        assert!(before >= 70, "rich notable table ({before})");
        // Small scales thin the bulk families.
        let small = notables(0.003); // a 3,000-domain world
        assert!(small.len() < n.len());
        assert!(
            small.iter().any(|d| d.name == "yahoo.sim"),
            "headliners stay"
        );
    }

    #[test]
    fn notable_spans_in_study_range() {
        for d in notables(1.0) {
            for span in [d.stek_span_days, d.dhe_span_days, d.ecdhe_span_days]
                .into_iter()
                .flatten()
            {
                assert!(span >= 1 && span <= 63, "{}: span {span}", d.name);
            }
        }
    }
}
