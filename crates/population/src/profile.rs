//! Behaviour profiles and the distributions they are sampled from.
//!
//! Each domain ends up with a [`DomainBehavior`]: which key exchanges it
//! supports, how its session cache and tickets behave, and how long it
//! reuses ephemeral values. The sampling distributions are calibrated to
//! the paper's §4 measurements (see the module-level constants).

use ts_crypto::drbg::HmacDrbg;
use ts_tls::ephemeral::EphemeralPolicy;
use ts_tls::suites::CipherSuite;
use ts_tls::ticket::{RotationPolicy, TicketFormat};

/// Seconds helpers.
pub const MINUTE: u64 = 60;
/// One hour.
pub const HOUR: u64 = 3_600;
/// One day.
pub const DAY: u64 = 86_400;

/// Server software, which fixes defaults and the ticket wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Software {
    /// Apache httpd: 5-minute session cache, tickets on by default,
    /// random STEK at startup.
    Apache,
    /// Nginx: issues session IDs; cache only when configured (5 min);
    /// tickets on by default, random STEK at startup.
    Nginx,
    /// Microsoft IIS / SChannel: 10-hour session cache, SChannel-format
    /// tickets, DPAPI-style key rotation.
    Iis,
    /// CDN or large-operator custom stack.
    Custom,
}

impl Software {
    /// Ticket format this software emits.
    pub fn ticket_format(self) -> TicketFormat {
        match self {
            Software::Iis => TicketFormat::SChannel,
            _ => TicketFormat::Rfc5077,
        }
    }
}

/// Session-ID cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Issue session IDs in ServerHello at all?
    pub issue_ids: bool,
    /// Resume from the cache? (Nginx issues but may not resume.)
    pub resume: bool,
    /// Cache entry lifetime in seconds.
    pub lifetime: u64,
}

/// Session-ticket behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TicketPolicy {
    /// Issue tickets at all?
    pub enabled: bool,
    /// Lifetime hint sent in NewSessionTicket (0 = unspecified).
    pub lifetime_hint: u32,
    /// How long tickets are honoured after original establishment.
    pub accept_window: u64,
    /// STEK rotation behaviour.
    pub rotation: RotationPolicy,
    /// Reissue a fresh ticket on resumption?
    pub reissue: bool,
}

/// A domain's complete server-side behaviour.
#[derive(Debug, Clone)]
pub struct DomainBehavior {
    /// Software family.
    pub software: Software,
    /// Suites in server preference order.
    pub suites: Vec<CipherSuite>,
    /// Session-ID behaviour.
    pub cache: CachePolicy,
    /// Ticket behaviour.
    pub tickets: TicketPolicy,
    /// DHE value reuse.
    pub dhe_policy: EphemeralPolicy,
    /// ECDHE value reuse.
    pub ecdhe_policy: EphemeralPolicy,
}

/// Which key exchanges a behaviour's suite list supports.
impl DomainBehavior {
    /// Supports any DHE suite?
    pub fn supports_dhe(&self) -> bool {
        self.suites
            .iter()
            .any(|s| s.key_exchange() == ts_tls::suites::KeyExchange::Dhe)
    }

    /// Supports any ECDHE suite?
    pub fn supports_ecdhe(&self) -> bool {
        self.suites
            .iter()
            .any(|s| s.key_exchange() == ts_tls::suites::KeyExchange::Ecdhe)
    }
}

/// Sample a value from `(probability, value)` buckets; the last bucket is
/// the fallback. Probabilities are cumulative-ized internally.
fn sample_buckets<T: Copy>(rng: &mut HmacDrbg, buckets: &[(f64, T)]) -> T {
    let roll = rng.gen_f64();
    let mut acc = 0.0;
    for &(p, v) in buckets {
        acc += p;
        if roll < acc {
            return v;
        }
    }
    buckets.last().expect("non-empty buckets").1
}

/// Long-tail software mix among trusted HTTPS sites (approximating 2016
/// web-server market structure plus the paper's lifetime spikes: Apache
/// and Nginx at 5 minutes, IIS at 10 hours).
pub fn sample_software(rng: &mut HmacDrbg) -> Software {
    sample_buckets(
        rng,
        &[
            (0.42, Software::Apache),
            (0.34, Software::Nginx),
            (0.12, Software::Iis),
            (0.12, Software::Custom),
        ],
    )
}

/// Long-tail suite support. Ecosystem-wide the paper measures 89% ECDHE
/// and 59% DHE among trusted sites (Table 1); CDN-class operators are
/// ECDHE-only, so the *long tail* must run above the ecosystem DHE rate
/// for the blend to land at 59%.
pub fn sample_suites(rng: &mut HmacDrbg) -> Vec<CipherSuite> {
    let ecdhe = rng.gen_bool(0.89);
    let dhe = rng.gen_bool(0.72);
    let mut suites = Vec::new();
    if ecdhe {
        suites.extend(CipherSuite::ecdhe_only());
    }
    if dhe {
        suites.extend(CipherSuite::dhe_only());
    }
    // RSA key exchange is near-universally retained as a fallback.
    suites.push(CipherSuite::RsaAes128CbcSha256);
    suites
}

/// Long-tail session-cache behaviour, producing Figure 1's shape:
/// ~61% ≤5 min, ~82% ≤1 h, an IIS step at 10 h, and a sliver ≥24 h.
pub fn sample_cache_policy(rng: &mut HmacDrbg, software: Software) -> CachePolicy {
    match software {
        Software::Apache => {
            // Default is 5 minutes; a minority of admins raise it.
            let lifetime = sample_buckets(
                rng,
                &[
                    (0.70, 5 * MINUTE),
                    (0.15, 30 * MINUTE),
                    (0.10, HOUR),
                    (0.05, 10 * HOUR),
                ],
            );
            CachePolicy {
                issue_ids: true,
                resume: true,
                lifetime,
            }
        }
        Software::Iis => CachePolicy {
            issue_ids: true,
            resume: true,
            lifetime: 10 * HOUR,
        },
        Software::Nginx => {
            // Nginx resumes only when the admin configured a cache; most
            // deployments do, at the 5-minute default.
            if rng.gen_bool(0.82) {
                let lifetime = sample_buckets(
                    rng,
                    &[
                        (0.80, 5 * MINUTE),
                        (0.08, 20 * MINUTE),
                        (0.07, HOUR),
                        (0.05, 4 * HOUR),
                    ],
                );
                CachePolicy {
                    issue_ids: true,
                    resume: true,
                    lifetime,
                }
            } else {
                CachePolicy {
                    issue_ids: true,
                    resume: false,
                    lifetime: 0,
                }
            }
        }
        Software::Custom => {
            if rng.gen_bool(0.90) {
                let lifetime = sample_buckets(
                    rng,
                    &[
                        (0.40, 5 * MINUTE),
                        (0.20, 30 * MINUTE),
                        (0.20, HOUR),
                        (0.12, 4 * HOUR),
                        (0.05, 12 * HOUR),
                        (0.03, 24 * HOUR),
                    ],
                );
                CachePolicy {
                    issue_ids: true,
                    resume: true,
                    lifetime,
                }
            } else {
                CachePolicy {
                    issue_ids: rng.gen_bool(0.5),
                    resume: false,
                    lifetime: 0,
                }
            }
        }
    }
}

/// Long-tail STEK rotation, producing Figure 3's shape among ticket
/// issuers: ~53% fresh each day, ~28% spanning ≥7 days, ~13% ≥30 days.
pub fn sample_stek_rotation(rng: &mut HmacDrbg) -> RotationPolicy {
    #[derive(Clone, Copy)]
    enum Bucket {
        SubDaily,
        Days2to6,
        Days7to29,
        Days30to62,
        Never,
    }
    let bucket = sample_buckets(
        rng,
        &[
            (0.53, Bucket::SubDaily),
            (0.18, Bucket::Days2to6),
            (0.16, Bucket::Days7to29),
            (0.05, Bucket::Days30to62),
            (0.08, Bucket::Never),
        ],
    );
    match bucket {
        Bucket::SubDaily => RotationPolicy::OnRestart {
            restart_interval: 6 * HOUR + rng.gen_range(18 * HOUR),
        },
        Bucket::Days2to6 => RotationPolicy::OnRestart {
            restart_interval: (2 + rng.gen_range(5)) * DAY,
        },
        Bucket::Days7to29 => RotationPolicy::OnRestart {
            restart_interval: (7 + rng.gen_range(23)) * DAY,
        },
        Bucket::Days30to62 => RotationPolicy::OnRestart {
            restart_interval: (30 + rng.gen_range(33)) * DAY,
        },
        Bucket::Never => RotationPolicy::Static,
    }
}

/// Long-tail ticket policy: ~81.5% of trusted sites issue tickets
/// (Table 1); honoured lifetimes give Figure 2's shape (67% <5 min,
/// 76% ≤1 h), and ~4% leave the hint unspecified.
pub fn sample_ticket_policy(rng: &mut HmacDrbg, software: Software) -> TicketPolicy {
    let enabled = match software {
        Software::Apache | Software::Nginx => rng.gen_bool(0.88),
        Software::Iis => rng.gen_bool(0.35),
        Software::Custom => rng.gen_bool(0.75),
    };
    if !enabled {
        return TicketPolicy {
            enabled: false,
            lifetime_hint: 0,
            accept_window: 0,
            rotation: RotationPolicy::Static,
            reissue: false,
        };
    }
    // Apache/Nginx default: 3-minute ticket lifetime.
    let accept_window = match software {
        Software::Apache | Software::Nginx => sample_buckets(
            rng,
            &[
                (0.75, 3 * MINUTE),
                (0.08, 30 * MINUTE),
                (0.06, HOUR),
                (0.07, 10 * HOUR),
                (0.04, 18 * HOUR),
            ],
        ),
        Software::Iis => 10 * HOUR,
        Software::Custom => sample_buckets(
            rng,
            &[
                (0.50, 3 * MINUTE),
                (0.14, 30 * MINUTE),
                (0.10, HOUR),
                (0.12, 10 * HOUR),
                (0.10, 18 * HOUR),
                (0.04, 24 * HOUR),
            ],
        ),
    };
    let hint_unspecified = rng.gen_bool(0.04);
    TicketPolicy {
        enabled: true,
        lifetime_hint: if hint_unspecified {
            0
        } else {
            accept_window as u32
        },
        accept_window,
        rotation: sample_stek_rotation(rng),
        reissue: rng.gen_bool(0.3),
    }
}

/// Long-tail DHE reuse policy (fractions relative to DHE-supporting
/// domains, calibrated to §4.4: 7.2% show burst reuse; spans ≥1 d for
/// ~2.3%, ≥7 d ~2.0%, ≥30 d ~0.9% of DHE-connecting domains).
pub fn sample_dhe_policy(rng: &mut HmacDrbg) -> EphemeralPolicy {
    #[derive(Clone, Copy)]
    enum B {
        Fresh,
        Hours,
        Days,
        Weeks,
        Forever,
    }
    let b = sample_buckets(
        rng,
        &[
            (0.928, B::Fresh),
            (0.049, B::Hours),
            (0.003, B::Days),
            (0.011, B::Weeks),
            (0.009, B::Forever),
        ],
    );
    match b {
        B::Fresh => EphemeralPolicy::FreshPerHandshake,
        B::Hours => EphemeralPolicy::ReuseFor {
            secs: 10 * MINUTE + rng.gen_range(12 * HOUR),
        },
        B::Days => EphemeralPolicy::ReuseFor {
            secs: (1 + rng.gen_range(6)) * DAY,
        },
        B::Weeks => EphemeralPolicy::ReuseFor {
            secs: (7 + rng.gen_range(23)) * DAY,
        },
        B::Forever => EphemeralPolicy::ReuseForever,
    }
}

/// Long-tail ECDHE reuse policy (§4.4: 15.5% burst reuse; ≥1 d ~4.2%,
/// ≥7 d ~3.7%, ≥30 d ~1.7% of ECDHE-connecting domains).
pub fn sample_ecdhe_policy(rng: &mut HmacDrbg) -> EphemeralPolicy {
    #[derive(Clone, Copy)]
    enum B {
        Fresh,
        Hours,
        Days,
        Weeks,
        Forever,
    }
    let b = sample_buckets(
        rng,
        &[
            (0.845, B::Fresh),
            (0.113, B::Hours),
            (0.005, B::Days),
            (0.020, B::Weeks),
            (0.017, B::Forever),
        ],
    );
    match b {
        B::Fresh => EphemeralPolicy::FreshPerHandshake,
        B::Hours => EphemeralPolicy::ReuseFor {
            secs: 10 * MINUTE + rng.gen_range(12 * HOUR),
        },
        B::Days => EphemeralPolicy::ReuseFor {
            secs: (1 + rng.gen_range(6)) * DAY,
        },
        B::Weeks => EphemeralPolicy::ReuseFor {
            secs: (7 + rng.gen_range(23)) * DAY,
        },
        B::Forever => EphemeralPolicy::ReuseForever,
    }
}

/// Sample a complete long-tail domain behaviour.
pub fn sample_long_tail(rng: &mut HmacDrbg) -> DomainBehavior {
    let software = sample_software(rng);
    let suites = sample_suites(rng);
    let cache = sample_cache_policy(rng, software);
    let tickets = sample_ticket_policy(rng, software);
    let dhe_policy = sample_dhe_policy(rng);
    let ecdhe_policy = sample_ecdhe_policy(rng);
    DomainBehavior {
        software,
        suites,
        cache,
        tickets,
        dhe_policy,
        ecdhe_policy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates<F: FnMut(&mut HmacDrbg) -> bool>(n: usize, mut f: F) -> f64 {
        let mut rng = HmacDrbg::new(b"profile-rates");
        (0..n).filter(|_| f(&mut rng)).count() as f64 / n as f64
    }

    #[test]
    fn software_mix_roughly_calibrated() {
        let apache = rates(4000, |r| sample_software(r) == Software::Apache);
        assert!((apache - 0.42).abs() < 0.04, "apache share {apache}");
        let iis = rates(4000, |r| sample_software(r) == Software::Iis);
        assert!((iis - 0.12).abs() < 0.03, "iis share {iis}");
    }

    #[test]
    fn suite_support_matches_table1_ratios() {
        let mut rng = HmacDrbg::new(b"suites");
        let n = 4000;
        let mut ecdhe = 0;
        let mut dhe = 0;
        for _ in 0..n {
            let b = sample_suites(&mut rng);
            let d = DomainBehavior {
                software: Software::Apache,
                suites: b,
                cache: CachePolicy {
                    issue_ids: true,
                    resume: true,
                    lifetime: 1,
                },
                tickets: TicketPolicy {
                    enabled: false,
                    lifetime_hint: 0,
                    accept_window: 0,
                    rotation: RotationPolicy::Static,
                    reissue: false,
                },
                dhe_policy: EphemeralPolicy::FreshPerHandshake,
                ecdhe_policy: EphemeralPolicy::FreshPerHandshake,
            };
            if d.supports_ecdhe() {
                ecdhe += 1;
            }
            if d.supports_dhe() {
                dhe += 1;
            }
        }
        let e = ecdhe as f64 / n as f64;
        let d = dhe as f64 / n as f64;
        assert!((e - 0.89).abs() < 0.03, "ecdhe {e}");
        assert!((d - 0.72).abs() < 0.03, "dhe {d}");
    }

    #[test]
    fn stek_rotation_distribution_matches_fig3() {
        let mut rng = HmacDrbg::new(b"stek");
        let n = 5000;
        let mut ge7 = 0;
        let mut ge30 = 0;
        let mut daily = 0;
        for _ in 0..n {
            match sample_stek_rotation(&mut rng) {
                RotationPolicy::Static => {
                    ge7 += 1;
                    ge30 += 1;
                }
                RotationPolicy::OnRestart { restart_interval } => {
                    if restart_interval >= 7 * DAY {
                        ge7 += 1;
                    }
                    if restart_interval >= 30 * DAY {
                        ge30 += 1;
                    }
                    if restart_interval < DAY {
                        daily += 1;
                    }
                }
                RotationPolicy::Periodic { .. } => unreachable!("long tail never Periodic"),
            }
        }
        let f7 = ge7 as f64 / n as f64;
        let f30 = ge30 as f64 / n as f64;
        let fd = daily as f64 / n as f64;
        assert!((fd - 0.53).abs() < 0.04, "daily {fd}");
        assert!((f7 - 0.26).abs() < 0.05, "≥7d {f7}");
        assert!((f30 - 0.11).abs() < 0.04, "≥30d {f30}");
    }

    #[test]
    fn cache_lifetimes_produce_fig1_spikes() {
        let mut rng = HmacDrbg::new(b"cache");
        let n = 5000;
        let mut five_min = 0;
        let mut under_hour = 0;
        let mut resuming = 0;
        for _ in 0..n {
            let sw = sample_software(&mut rng);
            let c = sample_cache_policy(&mut rng, sw);
            if c.resume {
                resuming += 1;
                if c.lifetime <= 5 * MINUTE {
                    five_min += 1;
                }
                if c.lifetime <= HOUR {
                    under_hour += 1;
                }
            }
        }
        let f5 = five_min as f64 / resuming as f64;
        let f60 = under_hour as f64 / resuming as f64;
        assert!((f5 - 0.61).abs() < 0.08, "≤5min {f5}");
        assert!((f60 - 0.82).abs() < 0.08, "≤1h {f60}");
    }

    #[test]
    fn ticket_windows_produce_fig2_spikes() {
        let mut rng = HmacDrbg::new(b"tickets");
        let n = 5000;
        let mut enabled = 0;
        let mut five = 0;
        let mut hour = 0;
        for _ in 0..n {
            let sw = sample_software(&mut rng);
            let t = sample_ticket_policy(&mut rng, sw);
            if t.enabled {
                enabled += 1;
                if t.accept_window <= 5 * MINUTE {
                    five += 1;
                }
                if t.accept_window <= HOUR {
                    hour += 1;
                }
            }
        }
        let fe = enabled as f64 / n as f64;
        let f5 = five as f64 / enabled as f64;
        let f60 = hour as f64 / enabled as f64;
        // Long-tail-only targets sit above the paper's ecosystem-wide 67%
        // / 76% because the CDN operators' 10-28h windows are added by
        // the population builder, not sampled here.
        assert!((fe - 0.80).abs() < 0.06, "ticket support {fe}");
        assert!((f5 - 0.70).abs() < 0.08, "≤5min {f5}");
        assert!((f60 - 0.84).abs() < 0.08, "≤1h {f60}");
    }

    #[test]
    fn ephemeral_reuse_rates_match_section_4_4() {
        let mut rng = HmacDrbg::new(b"eph");
        let n = 20_000;
        let mut dhe_reuse = 0;
        let mut dhe_ge1d = 0;
        let mut ecdhe_reuse = 0;
        let mut ecdhe_ge1d = 0;
        for _ in 0..n {
            match sample_dhe_policy(&mut rng) {
                EphemeralPolicy::FreshPerHandshake => {}
                EphemeralPolicy::ReuseFor { secs } => {
                    dhe_reuse += 1;
                    if secs >= DAY {
                        dhe_ge1d += 1;
                    }
                }
                EphemeralPolicy::ReuseForever => {
                    dhe_reuse += 1;
                    dhe_ge1d += 1;
                }
            }
            match sample_ecdhe_policy(&mut rng) {
                EphemeralPolicy::FreshPerHandshake => {}
                EphemeralPolicy::ReuseFor { secs } => {
                    ecdhe_reuse += 1;
                    if secs >= DAY {
                        ecdhe_ge1d += 1;
                    }
                }
                EphemeralPolicy::ReuseForever => {
                    ecdhe_reuse += 1;
                    ecdhe_ge1d += 1;
                }
            }
        }
        let dr = dhe_reuse as f64 / n as f64;
        let d1 = dhe_ge1d as f64 / n as f64;
        let er = ecdhe_reuse as f64 / n as f64;
        let e1 = ecdhe_ge1d as f64 / n as f64;
        assert!((dr - 0.072).abs() < 0.01, "dhe reuse {dr}");
        assert!((d1 - 0.023).abs() < 0.008, "dhe ≥1d {d1}");
        assert!((er - 0.155).abs() < 0.015, "ecdhe reuse {er}");
        assert!((e1 - 0.042).abs() < 0.01, "ecdhe ≥1d {e1}");
    }

    #[test]
    fn iis_uses_schannel_format() {
        assert_eq!(Software::Iis.ticket_format(), TicketFormat::SChannel);
        assert_eq!(Software::Apache.ticket_format(), TicketFormat::Rfc5077);
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = HmacDrbg::new(b"det");
        let mut b = HmacDrbg::new(b"det");
        for _ in 0..50 {
            let x = sample_long_tail(&mut a);
            let y = sample_long_tail(&mut b);
            assert_eq!(x.software, y.software);
            assert_eq!(x.suites, y.suites);
            assert_eq!(x.cache, y.cache);
            assert_eq!(x.tickets, y.tickets);
            assert_eq!(x.dhe_policy, y.dhe_policy);
            assert_eq!(x.ecdhe_policy, y.ecdhe_policy);
        }
    }
}
