//! Count-derived domain shards over a population.
//!
//! Million-domain campaigns split the scan list into the fixed shard
//! layout [`ShardPlan`] derives from the domain count — the same layout
//! `parallel_map` uses for work chunks — so per-shard scanner seeds and
//! per-shard accumulator state line up exactly with the parallel fan-out
//! at any worker count. This module is the population-side view of that
//! partition: each shard knows its domain slice, can extract the DNS
//! subzone covering exactly those domains, and the whole partition can be
//! audited for shared server state (session caches, STEK managers,
//! ephemeral-value caches) that *straddles* a shard boundary.
//!
//! Straddling units are why shard-local analysis alone is not enough:
//! two domains behind one STEK manager may land in different shards, so
//! cross-domain structures (service groups) must be built from merged
//! shard summaries rather than per shard. The [`unit_census`] makes that
//! boundary traffic measurable instead of folklore.
//!
//! [`unit_census`]: PopulationShards::unit_census

use crate::build::Population;
use std::collections::BTreeMap;
use ts_core::par::ShardPlan;
use ts_simnet::dns::Dns;

/// One shard of the partition: its index and its slice of the scan list.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    /// Shard index (also the chunk id `parallel_map` would pass).
    pub shard: usize,
    /// The shard's domains, in scan-list order.
    pub domains: &'a [String],
}

/// How the population's shared server-state units fall across the
/// partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCensus {
    /// Shared units whose member domains all live in one shard.
    pub contained: usize,
    /// Shared units with member domains in two or more shards. These
    /// force cross-shard merges during group analysis.
    pub straddling: usize,
}

impl UnitCensus {
    /// Total shared units observed in the partition.
    pub fn total(&self) -> usize {
        self.contained + self.straddling
    }
}

/// A fixed partition of a scan list over a population.
pub struct PopulationShards<'a> {
    pop: &'a Population,
    domains: &'a [String],
    plan: ShardPlan,
}

impl<'a> PopulationShards<'a> {
    /// Partition `domains` (a scan list over `pop`) into the
    /// count-derived shard layout.
    pub fn new(pop: &'a Population, domains: &'a [String]) -> Self {
        PopulationShards {
            pop,
            domains,
            plan: ShardPlan::for_len(domains.len()),
        }
    }

    /// The underlying layout.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.plan.shard_count()
    }

    /// One shard's view.
    pub fn view(&self, shard: usize) -> ShardView<'a> {
        ShardView {
            shard,
            domains: &self.domains[self.plan.range(shard)],
        }
    }

    /// All shards, in shard order.
    pub fn iter(&self) -> impl Iterator<Item = ShardView<'a>> + '_ {
        (0..self.shard_count()).map(|s| self.view(s))
    }

    /// The DNS subzone covering exactly one shard's domains.
    pub fn subzone(&self, shard: usize) -> Dns {
        self.pop
            .dns
            .subzone(self.view(shard).domains.iter().map(|d| d.as_str()))
    }

    /// Census of shared server-state units (session-cache, STEK, and
    /// ephemeral-value units from ground truth) against the partition:
    /// how many are contained in a single shard vs straddle a boundary.
    pub fn unit_census(&self) -> UnitCensus {
        // Ordered map keyed by (unit kind, unit id); values record the
        // first shard seen and whether a second shard ever appeared.
        let mut units: BTreeMap<(u8, usize), (usize, bool)> = BTreeMap::new();
        for (i, domain) in self.domains.iter().enumerate() {
            let shard = self.plan.shard_of(i);
            let Some(truth) = self.pop.truth.get(domain) else {
                continue;
            };
            for (kind, unit) in [
                (0u8, truth.cache_unit),
                (1u8, truth.stek_unit),
                (2u8, truth.dh_unit),
            ] {
                if let Some(u) = unit {
                    let e = units.entry((kind, u)).or_insert((shard, false));
                    if e.0 != shard {
                        e.1 = true;
                    }
                }
            }
        }
        let mut census = UnitCensus::default();
        for (_, (_, straddles)) in units {
            if straddles {
                census.straddling += 1;
            } else {
                census.contained += 1;
            }
        }
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PopulationConfig;
    use std::sync::OnceLock;

    fn pop() -> &'static Population {
        static POP: OnceLock<Population> = OnceLock::new();
        POP.get_or_init(|| Population::build(PopulationConfig::new(23, 800)))
    }

    fn core_list(p: &Population) -> Vec<String> {
        p.churn.core().to_vec()
    }

    #[test]
    fn shards_partition_the_list_in_order() {
        let p = pop();
        let domains = core_list(p);
        let shards = PopulationShards::new(p, &domains);
        assert!(shards.shard_count() > 1);
        let rejoined: Vec<String> = shards
            .iter()
            .flat_map(|v| v.domains.iter().cloned())
            .collect();
        assert_eq!(rejoined, domains, "shards concatenate to the list");
        for (i, v) in shards.iter().enumerate() {
            assert_eq!(v.shard, i);
        }
    }

    #[test]
    fn subzone_resolves_own_shard_only() {
        let p = pop();
        let domains = core_list(p);
        let shards = PopulationShards::new(p, &domains);
        let zone0 = shards.subzone(0);
        let v0 = shards.view(0);
        for d in v0.domains {
            assert!(
                zone0.lookup_all(d).is_some(),
                "{d} must resolve in its own shard's zone"
            );
            assert_eq!(
                zone0.lookup_all(d),
                p.dns.lookup_all(d),
                "records carry over verbatim"
            );
        }
        let last = shards.view(shards.shard_count() - 1);
        let foreign = &last.domains[0];
        assert!(
            zone0.lookup_all(foreign).is_none(),
            "{foreign} belongs to another shard"
        );
    }

    #[test]
    fn unit_census_sees_the_cdn_straddle() {
        let p = pop();
        let domains = core_list(p);
        let shards = PopulationShards::new(p, &domains);
        let census = shards.unit_census();
        assert!(census.total() > 0, "operators create shared units");
        // The CDN analogue alone spans far more domains than one shard
        // holds at this size, so at least one unit must straddle.
        assert!(census.straddling > 0, "{census:?}");
        assert!(census.contained > 0, "{census:?}");
    }

    #[test]
    fn single_shard_list_has_no_straddlers() {
        let p = pop();
        // Under the count-derived layout a list of length 1 is the only
        // genuinely single-shard partition (chunk_size is 1 for short
        // lists, so a 10-domain list already spans 10 shards).
        let domains: Vec<String> = core_list(p).into_iter().take(1).collect();
        let shards = PopulationShards::new(p, &domains);
        assert_eq!(shards.shard_count(), 1);
        let census = shards.unit_census();
        assert_eq!(census.straddling, 0);
    }
}
