//! SSL terminators: the unit of secret sharing.
//!
//! A terminator fronts one or more virtual hosts and owns the shared
//! secret state — one session cache, one STEK manager, one ephemeral-value
//! cache — for all of them. That is the root cause the paper identifies
//! for cross-domain service groups (§5): "domains share an SSL terminator,
//! whether it is a separate device ... or multiple domains running on the
//! same web server."

use crate::profile::DomainBehavior;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use ts_crypto::dh::DhGroup;
use ts_simnet::TlsResponder;
use ts_tls::cache::SharedSessionCache;
use ts_tls::config::{ServerConfig, ServerIdentity};
use ts_tls::ephemeral::EphemeralCache;
use ts_tls::ticket::SharedStekManager;
use ts_x509::hostname_matches;

/// One virtual host on a terminator.
pub struct VHost {
    /// Certificate chain + key for this domain.
    pub identity: Arc<ServerIdentity>,
    /// Behaviour knobs (suites, cache/ticket policies). The shared caches
    /// live on the terminator; the vhost only carries the *policy*.
    pub behavior: DomainBehavior,
}

/// An SSL terminator serving a set of domains with shared secret state.
pub struct Terminator {
    /// Shared session cache (None = no terminator-level cache).
    pub session_cache: Option<SharedSessionCache>,
    /// Shared STEK manager (None = tickets unavailable at this terminator).
    pub stek: Option<SharedStekManager>,
    /// Shared ephemeral-value cache.
    pub ephemeral: EphemeralCache,
    /// DH group served by DHE suites here.
    pub dh_group: DhGroup,
    // Ordered: wildcard routing scans this map with `find`, so when two
    // wildcard patterns both match an SNI the winner must not depend on
    // the process's hash seed.
    vhosts: RwLock<BTreeMap<String, Arc<VHost>>>,
}

impl Terminator {
    /// Create a terminator with the given shared state.
    pub fn new(
        session_cache: Option<SharedSessionCache>,
        stek: Option<SharedStekManager>,
        ephemeral: EphemeralCache,
    ) -> Self {
        Terminator {
            session_cache,
            stek,
            ephemeral,
            dh_group: DhGroup::Sim256,
            vhosts: RwLock::new(BTreeMap::new()),
        }
    }

    /// Add a virtual host. Exact-match domains only (wildcard certs are
    /// fine; wildcard *routing* keys are matched per-label).
    pub fn add_vhost(&self, domain: &str, vhost: VHost) {
        self.vhosts
            .write()
            .insert(domain.to_ascii_lowercase(), Arc::new(vhost));
    }

    /// Number of virtual hosts.
    pub fn vhost_count(&self) -> usize {
        self.vhosts.read().len()
    }

    /// The domains served here (in name order — the map is ordered).
    pub fn domains(&self) -> Vec<String> {
        self.vhosts.read().keys().cloned().collect()
    }

    fn lookup(&self, sni: &str) -> Option<Arc<VHost>> {
        let key = sni.to_ascii_lowercase();
        let vhosts = self.vhosts.read();
        if let Some(v) = vhosts.get(&key) {
            return Some(v.clone());
        }
        // Wildcard routing: "*.customer.sim" vhost keys.
        vhosts
            .iter()
            .find(|(pattern, _)| pattern.starts_with("*.") && hostname_matches(pattern, &key))
            .map(|(_, v)| v.clone())
    }
}

impl TlsResponder for Terminator {
    fn server_config(&self, sni: &str, _now: u64) -> Option<ServerConfig> {
        let vhost = self.lookup(sni)?;
        let b = &vhost.behavior;
        Some(ServerConfig {
            identity: vhost.identity.clone(),
            suites: b.suites.clone(),
            issue_session_ids: b.cache.issue_ids,
            session_cache: if b.cache.resume {
                // Lifetime policy is enforced by the shared cache itself;
                // the builder sizes it from the behaviour's lifetime.
                self.session_cache.clone()
            } else {
                None
            },
            tickets: if b.tickets.enabled {
                self.stek.clone()
            } else {
                None
            },
            ticket_lifetime_hint: b.tickets.lifetime_hint,
            ticket_accept_window: b.tickets.accept_window,
            reissue_ticket_on_resumption: b.tickets.reissue,
            ephemeral: self.ephemeral.clone(),
            dh_group: self.dh_group,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CachePolicy, Software, TicketPolicy};
    use ts_crypto::drbg::HmacDrbg;
    use ts_crypto::rsa::RsaPrivateKey;
    use ts_tls::ephemeral::EphemeralPolicy;
    use ts_tls::suites::CipherSuite;
    use ts_tls::ticket::{RotationPolicy, StekManager, TicketFormat};
    use ts_x509::{Certificate, CertificateParams, DistinguishedName, Validity};

    fn behavior(ticket_enabled: bool) -> DomainBehavior {
        DomainBehavior {
            software: Software::Nginx,
            suites: CipherSuite::all().to_vec(),
            cache: CachePolicy {
                issue_ids: true,
                resume: true,
                lifetime: 300,
            },
            tickets: TicketPolicy {
                enabled: ticket_enabled,
                lifetime_hint: 300,
                accept_window: 300,
                rotation: RotationPolicy::Static,
                reissue: false,
            },
            dhe_policy: EphemeralPolicy::FreshPerHandshake,
            ecdhe_policy: EphemeralPolicy::FreshPerHandshake,
        }
    }

    fn identity(host: &str) -> Arc<ServerIdentity> {
        let mut rng = HmacDrbg::new(host.as_bytes());
        let key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let name = DistinguishedName::cn(host);
        let cert = Certificate::issue(
            &CertificateParams {
                serial: 1,
                subject: name.clone(),
                validity: Validity {
                    not_before: 0,
                    not_after: u32::MAX as u64,
                },
                dns_names: vec![host.to_string()],
                is_ca: false,
            },
            &key.public,
            &name,
            &key,
        );
        Arc::new(ServerIdentity {
            chain: vec![cert],
            key,
        })
    }

    fn terminator() -> Terminator {
        let stek = SharedStekManager::new(StekManager::new(
            RotationPolicy::Static,
            TicketFormat::Rfc5077,
            HmacDrbg::new(b"t-stek"),
            0,
        ));
        Terminator::new(
            Some(SharedSessionCache::new(300, 1000)),
            Some(stek),
            EphemeralCache::new(
                EphemeralPolicy::FreshPerHandshake,
                DhGroup::Sim256,
                HmacDrbg::new(b"t-eph"),
            ),
        )
    }

    #[test]
    fn vhost_routing_exact_and_wildcard() {
        let t = terminator();
        t.add_vhost(
            "a.sim",
            VHost {
                identity: identity("a.sim"),
                behavior: behavior(true),
            },
        );
        t.add_vhost(
            "*.pages.sim",
            VHost {
                identity: identity("*.pages.sim"),
                behavior: behavior(true),
            },
        );
        assert!(t.server_config("a.sim", 0).is_some());
        assert!(t.server_config("A.SIM", 0).is_some());
        assert!(t.server_config("blog.pages.sim", 0).is_some());
        assert!(t.server_config("deep.blog.pages.sim", 0).is_none());
        assert!(t.server_config("b.sim", 0).is_none());
        assert_eq!(t.vhost_count(), 2);
        assert_eq!(
            t.domains(),
            vec!["*.pages.sim".to_string(), "a.sim".to_string()]
        );
    }

    #[test]
    fn shared_state_flows_into_configs() {
        let t = terminator();
        t.add_vhost(
            "a.sim",
            VHost {
                identity: identity("a.sim"),
                behavior: behavior(true),
            },
        );
        t.add_vhost(
            "b.sim",
            VHost {
                identity: identity("b.sim"),
                behavior: behavior(true),
            },
        );
        let ca = t.server_config("a.sim", 0).unwrap();
        let cb = t.server_config("b.sim", 0).unwrap();
        assert!(ca
            .session_cache
            .as_ref()
            .unwrap()
            .same_cache(cb.session_cache.as_ref().unwrap()));
        assert!(ca
            .tickets
            .as_ref()
            .unwrap()
            .same_manager(cb.tickets.as_ref().unwrap()));
        assert!(ca.ephemeral.same_cache(&cb.ephemeral));
    }

    #[test]
    fn ticket_disabled_vhost_gets_no_manager() {
        let t = terminator();
        t.add_vhost(
            "no-tickets.sim",
            VHost {
                identity: identity("no-tickets.sim"),
                behavior: behavior(false),
            },
        );
        let cfg = t.server_config("no-tickets.sim", 0).unwrap();
        assert!(cfg.tickets.is_none());
        assert!(cfg.session_cache.is_some());
    }

    #[test]
    fn cache_disabled_when_behavior_says_no_resume() {
        let t = terminator();
        let mut b = behavior(true);
        b.cache.resume = false;
        t.add_vhost(
            "no-cache.sim",
            VHost {
                identity: identity("no-cache.sim"),
                behavior: b,
            },
        );
        let cfg = t.server_config("no-cache.sim", 0).unwrap();
        assert!(cfg.session_cache.is_none());
        assert!(cfg.issue_session_ids);
    }
}
