//! 10-connection burst scans (Table 1).
//!
//! For each domain: `k` connections in quick succession with a restricted
//! cipher offer, summarizing suite support, trust, and within-burst reuse
//! of key-exchange values and STEK identifiers.

use crate::grab::{GrabFailure, GrabOptions, Scanner, SuiteOffer};
use std::collections::BTreeSet;
use ts_core::observations::BurstSummary;
use ts_telemetry::Counter;

static BURST_DOMAINS: Counter = Counter::new("scanner.burst.domains");
static BURST_CONNECTIONS: Counter = Counter::new("scanner.burst.connections");

/// The Table 1 funnel for one restricted offer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BurstFunnel {
    /// Domains in the day's list.
    pub listed: usize,
    /// Domains not blacklisted.
    pub non_blacklisted: usize,
    /// Domains presenting browser-trusted TLS.
    pub trusted_tls: usize,
    /// Domains that completed a handshake with the restricted offer
    /// (= support the offered key exchange), or issued a ticket for the
    /// ticket funnel.
    pub supported: usize,
    /// Domains repeating a value/identifier at least twice in the burst.
    pub repeat_twice: usize,
    /// Domains presenting the same value/identifier on every connection.
    pub all_same: usize,
}

/// What the burst counts for the "supported" and reuse rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstMetric {
    /// Server key-exchange values (DHE or ECDHE scans).
    KexValues,
    /// STEK identifiers (session-ticket scan).
    StekIds,
}

/// Run a burst scan over `domains` at time `now`.
///
/// Returns per-domain summaries plus the aggregate funnel.
pub fn burst_scan(
    scanner: &mut Scanner,
    domains: &[String],
    now: u64,
    offer: SuiteOffer,
    metric: BurstMetric,
    connections: u32,
) -> (Vec<BurstSummary>, BurstFunnel) {
    let mut summaries = Vec::with_capacity(domains.len());
    let funnel = burst_scan_streaming(scanner, domains, now, offer, metric, connections, |s| {
        summaries.push(s)
    });
    (summaries, funnel)
}

/// Run a burst scan, handing each per-domain summary to `on_summary` as
/// it is produced instead of collecting a vector. Same scan sequence as
/// [`burst_scan`]; callers that only need the funnel (Table 1) drop the
/// summaries at the source.
pub fn burst_scan_streaming(
    scanner: &mut Scanner,
    domains: &[String],
    now: u64,
    offer: SuiteOffer,
    metric: BurstMetric,
    connections: u32,
    mut on_summary: impl FnMut(BurstSummary),
) -> BurstFunnel {
    let mut funnel = BurstFunnel {
        listed: domains.len(),
        ..Default::default()
    };
    for domain in domains {
        if scanner.population().blacklist.contains(domain) {
            continue;
        }
        funnel.non_blacklisted += 1;
        // Trust is established with a full (browser-like) offer first, as
        // the paper separates "browser-trusted TLS" from per-offer support.
        let trust_probe = scanner.grab(domain, now, &GrabOptions::new());
        let trusted = trust_probe.ok().map(|o| o.trusted).unwrap_or(false);
        if !trusted {
            continue;
        }
        funnel.trusted_tls += 1;
        BURST_DOMAINS.inc();

        let opts = GrabOptions::new().suites(offer);
        let mut successes = 0u32;
        let mut tickets = 0u32;
        let mut kex_values: BTreeSet<String> = BTreeSet::new();
        let mut stek_ids: BTreeSet<String> = BTreeSet::new();
        for i in 0..connections {
            // "In quick succession": a few seconds apart.
            BURST_CONNECTIONS.inc();
            let g = scanner.grab(domain, now + i as u64, &opts);
            match g.outcome {
                Ok(obs) => {
                    successes += 1;
                    if let Some(fp) = obs.kex_value_fp {
                        kex_values.insert(fp);
                    }
                    if let Some(id) = obs.stek_id {
                        stek_ids.insert(id);
                        tickets += 1;
                    }
                }
                Err(GrabFailure::Timeout) => {}
                Err(_) => break, // hard failure (e.g. no common suite)
            }
        }
        let summary = BurstSummary {
            domain: domain.clone(),
            attempts: connections,
            successes,
            trusted,
            distinct_kex_values: (!kex_values.is_empty()).then(|| kex_values.len() as u32),
            distinct_stek_ids: (!stek_ids.is_empty()).then(|| stek_ids.len() as u32),
            tickets_issued: tickets,
        };
        let supported = match metric {
            BurstMetric::KexValues => successes > 0,
            BurstMetric::StekIds => tickets > 0,
        };
        if supported {
            funnel.supported += 1;
            let (repeats, all_same) = match metric {
                BurstMetric::KexValues => (summary.repeats_kex(), summary.all_same_kex()),
                BurstMetric::StekIds => (summary.repeats_stek(), summary.all_same_stek()),
            };
            if repeats {
                funnel.repeat_twice += 1;
            }
            if all_same {
                funnel.all_same += 1;
            }
        }
        on_summary(summary);
    }
    funnel
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use ts_population::{Population, PopulationConfig};

    fn pop() -> &'static Population {
        static POP: OnceLock<Population> = OnceLock::new();
        POP.get_or_init(|| Population::build(PopulationConfig::new(11, 400)))
    }

    #[test]
    fn ticket_burst_on_static_stek_domain_all_same() {
        let p = pop();
        let mut s = Scanner::new(p, "burst-static");
        let domains = vec!["yahoo.sim".to_string()];
        let (summaries, funnel) = burst_scan(
            &mut s,
            &domains,
            5_000,
            SuiteOffer::All,
            BurstMetric::StekIds,
            10,
        );
        assert_eq!(funnel.trusted_tls, 1);
        assert_eq!(funnel.supported, 1);
        assert_eq!(funnel.all_same, 1, "static STEK → one id in burst");
        assert_eq!(summaries[0].distinct_stek_ids, Some(1));
    }

    #[test]
    fn kex_burst_on_reusing_domain_repeats() {
        let p = pop();
        // whatsapp.sim reuses its ECDHE value for 62 days.
        let mut s = Scanner::new(p, "burst-reuse");
        let domains = vec!["whatsapp.sim".to_string()];
        let (summaries, funnel) = burst_scan(
            &mut s,
            &domains,
            5_000,
            SuiteOffer::EcdheOnly,
            BurstMetric::KexValues,
            10,
        );
        assert_eq!(funnel.supported, 1);
        assert_eq!(funnel.all_same, 1);
        assert_eq!(summaries[0].distinct_kex_values, Some(1));
    }

    #[test]
    fn kex_burst_on_fresh_domain_all_distinct() {
        let p = pop();
        // twitter.sim has fresh ephemeral values.
        let mut s = Scanner::new(p, "burst-fresh");
        let domains = vec!["twitter.sim".to_string()];
        let (summaries, funnel) = burst_scan(
            &mut s,
            &domains,
            5_000,
            SuiteOffer::EcdheOnly,
            BurstMetric::KexValues,
            10,
        );
        assert_eq!(funnel.supported, 1);
        assert_eq!(funnel.repeat_twice, 0, "fresh values never repeat");
        let distinct = summaries[0].distinct_kex_values.unwrap();
        assert_eq!(distinct, summaries[0].successes);
    }

    #[test]
    fn funnel_counts_decrease_monotonically() {
        let p = pop();
        let mut s = Scanner::new(p, "burst-funnel");
        let domains: Vec<String> = p.churn.core().iter().take(60).cloned().collect();
        let (_, funnel) = burst_scan(
            &mut s,
            &domains,
            5_000,
            SuiteOffer::All,
            BurstMetric::StekIds,
            4,
        );
        assert!(funnel.listed >= funnel.non_blacklisted);
        assert!(funnel.non_blacklisted >= funnel.trusted_tls);
        assert!(funnel.trusted_tls >= funnel.supported);
        assert!(funnel.supported >= funnel.repeat_twice);
        assert!(funnel.repeat_twice >= funnel.all_same);
        assert!(funnel.trusted_tls > 0, "some trusted domains in sample");
    }

    #[test]
    fn dhe_funnel_smaller_than_full_support() {
        let p = pop();
        let mut s = Scanner::new(p, "burst-dhe");
        let domains: Vec<String> = p.churn.core().iter().take(60).cloned().collect();
        let (_, dhe) = burst_scan(
            &mut s,
            &domains,
            6_000,
            SuiteOffer::DheOnly,
            BurstMetric::KexValues,
            3,
        );
        let mut s = Scanner::new(p, "burst-ecdhe");
        let (_, ecdhe) = burst_scan(
            &mut s,
            &domains,
            6_000,
            SuiteOffer::EcdheOnly,
            BurstMetric::KexValues,
            3,
        );
        // Table 1 ordering: ECDHE support exceeds DHE support.
        assert!(
            ecdhe.supported >= dhe.supported,
            "ecdhe {} vs dhe {}",
            ecdhe.supported,
            dhe.supported
        );
    }
}
