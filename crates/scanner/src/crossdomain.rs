//! Cross-domain secret-sharing experiments (§5, Tables 5–7).
//!
//! * **Session caches** (§5.1): for each domain, try to resume its session
//!   on up to five sampled AS-mates and five IP-mates; close transitively.
//! * **STEKs** (§5.2): ten connections over a six-hour window plus one
//!   30-minute snapshot; group domains sharing any STEK identifier.
//! * **DH values** (§5.3): same cadence with DHE-only and ECDHE-only
//!   offers; group domains sharing any key-exchange value.

use crate::grab::{GrabOptions, Scanner, SuiteOffer};
use std::collections::BTreeMap;
use ts_core::groups::{self, ServiceGroup};
use ts_core::observations::{KexKind, KexSighting, SharingEdge, SharingKind, TicketSighting};
use ts_simnet::Ip;
use ts_tls::server::ResumeKind;

/// A target with its resolved address and AS (the sampling frame).
#[derive(Debug, Clone)]
pub struct Target {
    /// Domain name.
    pub domain: String,
    /// First A record.
    pub ip: Ip,
    /// Owning AS, when the address plan knows it.
    pub as_id: Option<u32>,
}

/// Resolve the sampling frame for the experiment.
pub fn build_targets(scanner: &Scanner, domains: &[String]) -> Vec<Target> {
    let pop = scanner.population();
    domains
        .iter()
        .filter_map(|d| {
            if pop.blacklist.contains(d) {
                return None;
            }
            let ips = pop.dns.lookup_all(d)?;
            let ip = *ips.first()?;
            Some(Target {
                domain: d.clone(),
                ip,
                as_id: pop.as_plan.as_of(ip).map(|a| a.0),
            })
        })
        .collect()
}

/// §5.1: cross-domain session-ID probing. Returns the resulting service
/// groups plus the raw sharing edges.
pub fn session_cache_groups(
    scanner: &mut Scanner,
    targets: &[Target],
    now: u64,
    per_domain_samples: usize,
) -> (Vec<ServiceGroup>, Vec<SharingEdge>) {
    let mut edges = Vec::new();
    let mut resuming: Vec<String> = Vec::new();
    session_cache_scan_streaming(
        scanner,
        targets,
        now,
        per_domain_samples,
        |d| resuming.push(d.to_string()),
        |e| edges.push(e),
    );
    let groups = groups::groups_from_edges(resuming.iter().map(|s| s.as_str()), &edges);
    (groups, edges)
}

/// §5.1 streaming form: `on_resuming` fires once per domain that resumes
/// its own session (the grouping universe), `on_edge` once per observed
/// cross-domain resumption. Probe order is identical to
/// [`session_cache_groups`], which is now this plus a collector.
pub fn session_cache_scan_streaming(
    scanner: &mut Scanner,
    targets: &[Target],
    now: u64,
    per_domain_samples: usize,
    mut on_resuming: impl FnMut(&str),
    mut on_edge: impl FnMut(SharingEdge),
) {
    // Index by AS and by IP. Ordered maps: `take(N)` below samples the
    // first N candidates, so the sampling frame must be stable.
    let mut by_as: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    let mut by_ip: BTreeMap<Ip, Vec<usize>> = BTreeMap::new();
    for (i, t) in targets.iter().enumerate() {
        if let Some(a) = t.as_id {
            by_as.entry(a).or_default().push(i);
        }
        by_ip.entry(t.ip).or_default().push(i);
    }

    for (i, t) in targets.iter().enumerate() {
        // Establish a session on t.
        let g = scanner.grab(&t.domain, now, &GrabOptions::default());
        let obs = match g.ok() {
            Some(o) if !o.session_id.is_empty() => o.clone(),
            _ => continue,
        };
        // Verify the domain resumes its own session at all.
        let self_opts =
            GrabOptions::new().resume_session(obs.session_id.clone(), obs.session.clone());
        let self_resumes = scanner
            .grab(&t.domain, now + 1, &self_opts)
            .ok()
            .map(|o| o.resumed == Some(ResumeKind::SessionId))
            .unwrap_or(false);
        if !self_resumes {
            continue;
        }
        on_resuming(&t.domain);

        // Candidate siblings: up to N from the same AS, up to N on the
        // same IP (deduplicated, self excluded).
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(as_id) = t.as_id {
            candidates.extend(
                by_as[&as_id]
                    .iter()
                    .copied()
                    .filter(|&j| j != i)
                    .take(per_domain_samples),
            );
        }
        candidates.extend(
            by_ip[&t.ip]
                .iter()
                .copied()
                .filter(|&j| j != i)
                .take(per_domain_samples),
        );
        candidates.sort_unstable();
        candidates.dedup();

        for j in candidates {
            let sibling = &targets[j];
            // Offering a foreign session ID is harmless: the server falls
            // back to a full handshake on a miss (§5.1).
            let opts =
                GrabOptions::new().resume_session(obs.session_id.clone(), obs.session.clone());
            let g = scanner.grab_ip(&sibling.domain, sibling.ip, now + 2, &opts);
            let resumed = g
                .ok()
                .map(|o| o.resumed == Some(ResumeKind::SessionId))
                .unwrap_or(false);
            if resumed {
                on_edge(SharingEdge {
                    a: t.domain.clone(),
                    b: sibling.domain.clone(),
                    kind: SharingKind::SessionCache,
                });
            }
        }
    }
}

/// §5.2: STEK sharing. Ten connections across `window_secs`, then one more
/// after `snapshot_offset`; groups from shared identifiers.
pub fn stek_sharing_scan(
    scanner: &mut Scanner,
    targets: &[Target],
    now: u64,
    window_secs: u64,
    connections: u32,
    snapshot_offset: u64,
) -> (Vec<ServiceGroup>, Vec<TicketSighting>) {
    let mut sightings = Vec::new();
    stek_sharing_scan_streaming(
        scanner,
        targets,
        now,
        window_secs,
        connections,
        snapshot_offset,
        |s| sightings.push(s),
    );
    let groups = groups::stek_groups(&sightings);
    (groups, sightings)
}

/// §5.2 streaming form: each ticket sighting goes to `on_sighting` as it
/// is observed (same grab order as [`stek_sharing_scan`]); grouping is
/// left to the caller's accumulator.
pub fn stek_sharing_scan_streaming(
    scanner: &mut Scanner,
    targets: &[Target],
    now: u64,
    window_secs: u64,
    connections: u32,
    snapshot_offset: u64,
    mut on_sighting: impl FnMut(TicketSighting),
) {
    for t in targets {
        for k in 0..connections {
            let at = now + (window_secs * k as u64) / connections.max(1) as u64;
            let g = scanner.grab(&t.domain, at, &GrabOptions::default());
            if let Some(obs) = g.ok() {
                if let (true, Some(id), Some(nst)) = (obs.trusted, &obs.stek_id, &obs.ticket) {
                    on_sighting(TicketSighting {
                        domain: t.domain.clone(),
                        day: at / 86_400,
                        stek_id: id.clone(),
                        lifetime_hint: nst.lifetime_hint,
                    });
                }
            }
        }
        // The 30-minute-window snapshot scan, joined with the above.
        let at = now + snapshot_offset;
        let g = scanner.grab(&t.domain, at, &GrabOptions::default());
        if let Some(obs) = g.ok() {
            if let (true, Some(id), Some(nst)) = (obs.trusted, &obs.stek_id, &obs.ticket) {
                on_sighting(TicketSighting {
                    domain: t.domain.clone(),
                    day: at / 86_400,
                    stek_id: id.clone(),
                    lifetime_hint: nst.lifetime_hint,
                });
            }
        }
    }
}

/// §5.3: Diffie-Hellman value sharing, DHE-only plus ECDHE-only offers.
pub fn dh_sharing_scan(
    scanner: &mut Scanner,
    targets: &[Target],
    now: u64,
    window_secs: u64,
    connections: u32,
) -> (Vec<ServiceGroup>, Vec<KexSighting>) {
    let mut sightings = Vec::new();
    dh_sharing_scan_streaming(scanner, targets, now, window_secs, connections, |s| {
        sightings.push(s)
    });
    let groups = groups::dh_groups(&sightings);
    (groups, sightings)
}

/// §5.3 streaming form: each key-exchange sighting goes to `on_sighting`
/// as it is observed (same grab order as [`dh_sharing_scan`]).
pub fn dh_sharing_scan_streaming(
    scanner: &mut Scanner,
    targets: &[Target],
    now: u64,
    window_secs: u64,
    connections: u32,
    mut on_sighting: impl FnMut(KexSighting),
) {
    for t in targets {
        for (offer, kex) in [
            (SuiteOffer::DheOnly, KexKind::Dhe),
            (SuiteOffer::EcdheOnly, KexKind::Ecdhe),
        ] {
            for k in 0..connections {
                let at = now + (window_secs * k as u64) / connections.max(1) as u64;
                let opts = GrabOptions::new().suites(offer);
                let g = scanner.grab(&t.domain, at, &opts);
                if let Some(obs) = g.ok() {
                    if let (true, Some(fp)) = (obs.trusted, &obs.kex_value_fp) {
                        on_sighting(KexSighting {
                            domain: t.domain.clone(),
                            day: at / 86_400,
                            kex,
                            value_fp: fp.clone(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use ts_population::{Population, PopulationConfig};

    fn pop() -> &'static Population {
        static POP: OnceLock<Population> = OnceLock::new();
        POP.get_or_init(|| {
            // Big enough that the smaller named operators (fastlane,
            // teemall, rhombusspace) scale to multiple domains.
            let mut cfg = PopulationConfig::new(97, 4000);
            cfg.flakiness = 0.0;
            cfg.transient_frac = 0.05;
            Population::build(cfg)
        })
    }

    fn operator_domains(p: &Population, op: &str, n: usize) -> Vec<String> {
        let mut v: Vec<String> = p
            .truth
            .iter()
            .filter(|t| t.operator.as_deref() == Some(op))
            .map(|t| t.name.clone())
            .collect();
        v.sort();
        v.truncate(n);
        v
    }

    #[test]
    fn targets_resolve_with_as() {
        let p = pop();
        let mut s = Scanner::new(p, "targets");
        let domains = operator_domains(p, "cirrusflare", 5);
        let targets = build_targets(&mut s, &domains);
        assert_eq!(targets.len(), 5);
        assert!(targets.iter().all(|t| t.as_id.is_some()));
        // All in the same AS (one operator).
        let as_ids: std::collections::HashSet<u32> =
            targets.iter().filter_map(|t| t.as_id).collect();
        assert_eq!(as_ids.len(), 1);
    }

    #[test]
    fn shared_cache_detected_across_operator_domains() {
        let p = pop();
        let mut s = Scanner::new(p, "xd-cache");
        // fastlane shares one cache across all its domains.
        let domains = operator_domains(p, "fastlane", 4);
        assert!(domains.len() >= 2, "need at least 2 fastlane domains");
        let targets = build_targets(&mut s, &domains);
        let (groups, edges) = session_cache_groups(&mut s, &targets, 9_000, 5);
        assert!(!edges.is_empty(), "cross-domain resumption observed");
        assert_eq!(groups[0].size(), domains.len(), "one big group");
    }

    #[test]
    fn separate_sites_stay_separate() {
        let p = pop();
        let mut s = Scanner::new(p, "xd-separate");
        let domains = vec!["yahoo.sim".to_string(), "netflix.sim".to_string()];
        let targets = build_targets(&mut s, &domains);
        let (groups, edges) = session_cache_groups(&mut s, &targets, 9_000, 5);
        assert!(edges.is_empty());
        assert!(groups.iter().all(|g| g.size() == 1));
    }

    #[test]
    fn stek_sharing_groups_operator() {
        let p = pop();
        let mut s = Scanner::new(p, "xd-stek");
        let mut domains = operator_domains(p, "teemall", 3);
        domains.push("yahoo.sim".into());
        let targets = build_targets(&mut s, &domains);
        let (groups, sightings) =
            stek_sharing_scan(&mut s, &targets, 20_000, 6 * 3_600, 10, 30 * 60);
        assert!(!sightings.is_empty());
        assert_eq!(groups[0].size(), 3, "teemall shares one STEK");
        assert!(groups
            .iter()
            .any(|g| g.members == vec!["yahoo.sim".to_string()]));
    }

    #[test]
    fn dh_sharing_groups_squarespace_like() {
        let p = pop();
        let mut s = Scanner::new(p, "xd-dh");
        let mut domains = operator_domains(p, "rhombusspace", 3);
        domains.push("twitter.sim".into());
        let targets = build_targets(&mut s, &domains);
        let (groups, _sightings) = dh_sharing_scan(&mut s, &targets, 30_000, 3_600, 4);
        // rhombusspace shares an ECDHE value (3-day reuse policy).
        assert_eq!(groups[0].size(), 3, "{groups:?}");
    }
}
