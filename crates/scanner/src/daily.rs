//! The daily 63-day campaign (§4.3, §4.4 — Figures 3–5, Tables 2–4).
//!
//! Each day, for each domain in that day's list: one browser-like grab
//! recording the issued ticket's STEK identifier, one DHE-only grab and
//! one ECDHE-first grab recording the server's key-exchange values.

use crate::grab::{GrabOptions, Scanner, SuiteOffer};
use ts_core::observations::{KexKind, KexSighting, TicketSighting};
use ts_simnet::clock::{Clock, DAY, MINUTE};
use ts_telemetry::{emit, Counter, Event};

static CAMPAIGN_DAYS: Counter = Counter::new("scanner.campaign.days");
static CAMPAIGN_ATTEMPTS: Counter = Counter::new("scanner.campaign.attempts");

/// Options for a daily campaign.
///
/// Construct with [`CampaignOptions::new`] and chain setters:
///
/// ```
/// use ts_scanner::CampaignOptions;
/// let opts = CampaignOptions::new().days(0..7).dhe(false);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CampaignOptions {
    pub(crate) days: std::ops::Range<u64>,
    pub(crate) scan_time_of_day: u64,
    pub(crate) tickets: bool,
    pub(crate) dhe: bool,
    pub(crate) ecdhe: bool,
}

impl CampaignOptions {
    /// The paper's campaign: 63 days, scans at 06:00, all three grabs.
    pub fn new() -> Self {
        CampaignOptions {
            days: 0..63,
            scan_time_of_day: 6 * 3_600,
            tickets: true,
            dhe: true,
            ecdhe: true,
        }
    }

    /// Days to scan (typically `0..63`).
    #[must_use]
    pub fn days(mut self, days: std::ops::Range<u64>) -> Self {
        self.days = days;
        self
    }

    /// Seconds after midnight the daily scan fires.
    #[must_use]
    pub fn scan_time_of_day(mut self, secs: u64) -> Self {
        self.scan_time_of_day = secs;
        self
    }

    /// Collect ticket sightings?
    #[must_use]
    pub fn tickets(mut self, on: bool) -> Self {
        self.tickets = on;
        self
    }

    /// Collect DHE sightings?
    #[must_use]
    pub fn dhe(mut self, on: bool) -> Self {
        self.dhe = on;
        self
    }

    /// Collect ECDHE sightings?
    #[must_use]
    pub fn ecdhe(mut self, on: bool) -> Self {
        self.ecdhe = on;
        self
    }
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// The sightings a campaign produced.
#[derive(Debug, Default, Clone)]
pub struct CampaignData {
    /// (domain, day, STEK id) sightings.
    pub tickets: Vec<TicketSighting>,
    /// (domain, day, KEX value) sightings, both flavours.
    pub kex: Vec<KexSighting>,
    /// Handshake attempts made (for throughput reporting).
    pub attempts: u64,
}

/// Consumer of campaign observations, invoked as the scan produces them.
///
/// The streaming counterpart of [`CampaignData`]: a sink that folds each
/// sighting into a bounded accumulator lets a sharded campaign run with
/// peak memory independent of the domain-day count, instead of holding
/// every sighting of a nine-week scan at once.
pub trait CampaignSink {
    /// One ticket sighting (trusted grab that issued a ticket).
    fn ticket(&mut self, sighting: TicketSighting);
    /// One key-exchange sighting (either flavour).
    fn kex(&mut self, sighting: KexSighting);
    /// A campaign day finished scanning (eviction / flush hook).
    fn day_done(&mut self, _day: u64) {}
}

impl CampaignSink for CampaignData {
    fn ticket(&mut self, sighting: TicketSighting) {
        self.tickets.push(sighting);
    }

    fn kex(&mut self, sighting: KexSighting) {
        self.kex.push(sighting);
    }
}

/// Run a daily campaign, draining observations into `sink` as each grab
/// completes. Returns the number of handshake attempts made.
///
/// Identical grab sequence and observation stream to [`run_campaign`] —
/// that function is now this one with a [`CampaignData`] sink.
pub fn run_campaign_streaming(
    scanner: &mut Scanner,
    options: &CampaignOptions,
    mut domains_for_day: impl FnMut(u64) -> Vec<String>,
    sink: &mut impl CampaignSink,
) -> u64 {
    let mut attempts = 0u64;
    for day in options.days.clone() {
        let clock = Clock::at(day * DAY + options.scan_time_of_day);
        let now = clock.now();
        debug_assert_eq!(clock.day(), day);
        for domain in domains_for_day(day) {
            if options.tickets {
                attempts += 1;
                let g = scanner.grab(&domain, now, &GrabOptions::new());
                if let Some(obs) = g.ok() {
                    if obs.trusted {
                        if let (Some(stek_id), Some(nst)) = (&obs.stek_id, &obs.ticket) {
                            sink.ticket(TicketSighting {
                                domain: domain.clone(),
                                day,
                                stek_id: stek_id.clone(),
                                lifetime_hint: nst.lifetime_hint,
                            });
                        }
                    }
                }
            }
            if options.dhe {
                attempts += 1;
                let opts = GrabOptions::new().suites(SuiteOffer::DheOnly);
                let g = scanner.grab(&domain, now + MINUTE, &opts);
                if let Some(obs) = g.ok() {
                    if obs.trusted {
                        if let Some(fp) = &obs.kex_value_fp {
                            sink.kex(KexSighting {
                                domain: domain.clone(),
                                day,
                                kex: KexKind::Dhe,
                                value_fp: fp.clone(),
                            });
                        }
                    }
                }
            }
            if options.ecdhe {
                attempts += 1;
                let opts = GrabOptions::new().suites(SuiteOffer::EcdheThenRsa);
                let g = scanner.grab(&domain, now + 2 * MINUTE, &opts);
                if let Some(obs) = g.ok() {
                    if obs.trusted {
                        // Only ECDHE connections yield a value; RSA
                        // fallback connections record nothing.
                        if let Some(fp) = &obs.kex_value_fp {
                            sink.kex(KexSighting {
                                domain: domain.clone(),
                                day,
                                kex: KexKind::Ecdhe,
                                value_fp: fp.clone(),
                            });
                        }
                    }
                }
            }
        }
        CAMPAIGN_DAYS.inc();
        emit(Event::CampaignDay { day });
        sink.day_done(day);
    }
    CAMPAIGN_ATTEMPTS.add(attempts);
    attempts
}

/// Run a daily campaign over the population's per-day list.
///
/// `domains_for_day` selects targets (e.g. the full list, or the stable
/// core); the default campaign scans whatever the churned list contains,
/// and analysis filters to the core afterwards — exactly the paper's flow.
pub fn run_campaign(
    scanner: &mut Scanner,
    options: &CampaignOptions,
    domains_for_day: impl FnMut(u64) -> Vec<String>,
) -> CampaignData {
    let mut data = CampaignData::default();
    let attempts = run_campaign_streaming(scanner, options, domains_for_day, &mut data);
    data.attempts = attempts;
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use ts_core::lifetime::SpanEstimator;
    use ts_core::observations::KexKind;
    use ts_population::{Population, PopulationConfig};

    fn pop() -> &'static Population {
        static POP: OnceLock<Population> = OnceLock::new();
        POP.get_or_init(|| {
            let mut cfg = PopulationConfig::new(31, 300);
            cfg.flakiness = 0.0;
            Population::build(cfg)
        })
    }

    fn mini_campaign(days: std::ops::Range<u64>, targets: Vec<String>) -> CampaignData {
        let p = pop();
        let mut s = Scanner::new(p, "daily-test");
        let options = CampaignOptions::new().days(days);
        run_campaign(&mut s, &options, move |_day| targets.clone())
    }

    #[test]
    fn static_stek_domain_spans_whole_window() {
        let data = mini_campaign(0..10, vec!["yahoo.sim".into()]);
        let mut est = SpanEstimator::new();
        est.record_tickets(&data.tickets);
        let spans = est.domain_spans();
        assert_eq!(spans["yahoo.sim"].max_span_days, 10);
        assert_eq!(spans["yahoo.sim"].distinct_ids, 1, "one STEK for 10 days");
    }

    #[test]
    fn rotating_domain_changes_stek_daily() {
        // Fresh population: STEK rotation state is monotone in time, and
        // the shared test population may already have ticked past day 0.
        let mut cfg = PopulationConfig::new(33, 300);
        cfg.flakiness = 0.0;
        let p = Population::build(cfg);
        let mut s = Scanner::new(&p, "daily-rotate");
        let options = CampaignOptions::new().days(0..6);
        let data = run_campaign(&mut s, &options, |_day| vec!["twitter.sim".into()]);
        let mut est = SpanEstimator::new();
        est.record_tickets(&data.tickets);
        let spans = est.domain_spans();
        assert_eq!(spans["twitter.sim"].max_span_days, 1, "fresh STEK daily");
        assert_eq!(spans["twitter.sim"].distinct_ids, 6);
    }

    #[test]
    fn restart_rotation_observed_at_boundary() {
        // netflix.sim: STEK rotates every 54 days; in a 6-day window one id.
        let data = mini_campaign(0..6, vec!["netflix.sim".into()]);
        let mut est = SpanEstimator::new();
        est.record_tickets(&data.tickets);
        assert_eq!(est.domain_spans()["netflix.sim"].distinct_ids, 1);
    }

    #[test]
    fn ecdhe_reuser_spans_and_fresh_domain_does_not() {
        let data = mini_campaign(0..5, vec!["whatsapp.sim".into(), "twitter.sim".into()]);
        let mut est = SpanEstimator::new();
        est.record_kex(&data.kex, KexKind::Ecdhe);
        let spans = est.domain_spans();
        assert_eq!(spans["whatsapp.sim"].max_span_days, 5, "62-day ECDHE reuse");
        assert_eq!(spans["twitter.sim"].max_span_days, 1, "fresh values");
    }

    #[test]
    fn dhe_scan_collects_only_dhe_capable_domains() {
        // cookpad.sim reuses DHE 63d; cirrusflare has no DHE.
        let p = pop();
        let cdn = p
            .truth
            .iter()
            .find(|t| t.operator.as_deref() == Some("cirrusflare"))
            .unwrap()
            .name
            .clone();
        let data = mini_campaign(0..3, vec!["cookpad.sim".into(), cdn.clone()]);
        let dhe_domains: std::collections::HashSet<&str> = data
            .kex
            .iter()
            .filter(|s| s.kex == KexKind::Dhe)
            .map(|s| s.domain.as_str())
            .collect();
        assert!(dhe_domains.contains("cookpad.sim"));
        assert!(!dhe_domains.contains(cdn.as_str()));
    }

    #[test]
    fn attempts_counted() {
        let data = mini_campaign(0..2, vec!["yahoo.sim".into()]);
        assert_eq!(data.attempts, 2 * 3, "3 grabs per domain-day");
    }
}
