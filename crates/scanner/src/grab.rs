//! The TLS grabber: one observed connection.

use ts_core::observations::fingerprint_hex;
use ts_crypto::drbg::HmacDrbg;
use ts_population::Population;
use ts_simnet::{ConnectError, Ip};
use ts_tls::config::{ClientConfig, ResumptionOffer};
use ts_tls::server::ResumeKind;
use ts_tls::session::SessionState;
use ts_tls::suites::CipherSuite;
use ts_tls::ticket::{extract_stek_id, sniff_format};
use ts_tls::wire::handshake::NewSessionTicket;

/// Which cipher suites the grabber offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteOffer {
    /// Everything, browser-like (ECDHE preferred).
    All,
    /// Only DHE suites (the Censys-style DHE scans).
    DheOnly,
    /// Only ECDHE suites.
    EcdheOnly,
    /// ECDHE preferred with RSA fallback (the paper's ECDHE scan offer).
    EcdheThenRsa,
}

impl SuiteOffer {
    fn suites(self) -> Vec<CipherSuite> {
        match self {
            SuiteOffer::All => CipherSuite::all().to_vec(),
            SuiteOffer::DheOnly => CipherSuite::dhe_only().to_vec(),
            SuiteOffer::EcdheOnly => CipherSuite::ecdhe_only().to_vec(),
            SuiteOffer::EcdheThenRsa => {
                let mut v = CipherSuite::ecdhe_only().to_vec();
                v.push(CipherSuite::RsaAes128CbcSha256);
                v
            }
        }
    }
}

/// Options for one grab.
#[derive(Clone)]
pub struct GrabOptions {
    /// Cipher suites to offer.
    pub suites: SuiteOffer,
    /// Offer a session ID for resumption.
    pub resume_session: Option<(Vec<u8>, SessionState)>,
    /// Offer a session ticket for resumption.
    pub resume_ticket: Option<(Vec<u8>, SessionState)>,
    /// Record trust failures instead of aborting the handshake.
    pub permissive: bool,
    /// Transport retries on transient timeouts.
    pub retries: u32,
}

impl Default for GrabOptions {
    fn default() -> Self {
        GrabOptions {
            suites: SuiteOffer::All,
            resume_session: None,
            resume_ticket: None,
            permissive: true,
            retries: 2,
        }
    }
}

/// Why a grab failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrabFailure {
    /// Domain is blacklisted — never contacted.
    Blacklisted,
    /// No DNS A record.
    NoDns,
    /// TCP-level refusal (no HTTPS).
    Refused,
    /// Timed out after retries.
    Timeout,
    /// SNI unknown at the endpoint.
    UnknownHost,
    /// TLS handshake failed.
    TlsFailed(String),
}

/// Everything one successful connection reveals.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Negotiated suite.
    pub cipher_suite: CipherSuite,
    /// Chain validated against the root store?
    pub trusted: bool,
    /// ServerHello session ID (empty if none; cleartext on the wire).
    // ctlint: public
    pub session_id: Vec<u8>,
    /// How the handshake resumed, if it did.
    pub resumed: Option<ResumeKind>,
    /// NewSessionTicket, if issued.
    pub ticket: Option<NewSessionTicket>,
    /// Hex STEK identifier parsed out of the ticket.
    pub stek_id: Option<String>,
    /// Hex fingerprint of the server's (EC)DHE public value.
    pub kex_value_fp: Option<String>,
    /// Session state for later resumption offers.
    pub session: SessionState,
}

/// The result of one grab.
#[derive(Debug, Clone)]
pub struct Grab {
    /// Target domain.
    pub domain: String,
    /// Resolved address, when DNS succeeded.
    pub ip: Option<Ip>,
    /// Observation or failure.
    pub outcome: Result<Observation, GrabFailure>,
}

impl Grab {
    /// Shorthand: did the handshake complete?
    pub fn ok(&self) -> Option<&Observation> {
        self.outcome.as_ref().ok()
    }
}

/// The scanner: a seeded connection factory against one population.
pub struct Scanner<'a> {
    pop: &'a Population,
    rng: HmacDrbg,
}

impl<'a> Scanner<'a> {
    /// New scanner with its own RNG stream.
    pub fn new(pop: &'a Population, seed_label: &str) -> Self {
        Scanner {
            pop,
            rng: HmacDrbg::from_seed_label(pop.config.seed, seed_label),
        }
    }

    /// The population under measurement.
    pub fn population(&self) -> &Population {
        self.pop
    }

    /// Perform one grab of `domain` at virtual time `now`.
    pub fn grab(&mut self, domain: &str, now: u64, options: &GrabOptions) -> Grab {
        if self.pop.blacklist.contains(domain) {
            return Grab { domain: domain.into(), ip: None, outcome: Err(GrabFailure::Blacklisted) };
        }
        let ip = match self.pop.dns.resolve(domain, &mut self.rng) {
            Some(ip) => ip,
            None => {
                return Grab { domain: domain.into(), ip: None, outcome: Err(GrabFailure::NoDns) }
            }
        };
        self.grab_ip(domain, ip, now, options)
    }

    /// Grab a specific IP with a given SNI (the cross-domain experiments
    /// pick the address explicitly).
    pub fn grab_ip(&mut self, sni: &str, ip: Ip, now: u64, options: &GrabOptions) -> Grab {
        let mut last_err = GrabFailure::Timeout;
        for _attempt in 0..=options.retries {
            let mut cfg = ClientConfig::new(self.pop.root_store.clone(), sni, now);
            cfg.suites = options.suites.suites();
            cfg.verify_certs = !options.permissive;
            cfg.resumption = ResumptionOffer {
                session: options.resume_session.clone(),
                ticket: options.resume_ticket.clone(),
            };
            match self.pop.net.connect(ip, cfg, now, &mut self.rng) {
                Ok(conn) => {
                    let summary = match conn.client.summary() {
                        Ok(s) => s,
                        Err(e) => {
                            return Grab {
                                domain: sni.into(),
                                ip: Some(ip),
                                outcome: Err(GrabFailure::TlsFailed(e.to_string())),
                            }
                        }
                    };
                    let trusted = matches!(summary.trust, Some(Ok(()))) || summary.resumed.is_some();
                    let stek_id = summary.new_ticket.as_ref().map(|nst| {
                        let format = sniff_format(&nst.ticket);
                        extract_stek_id(&nst.ticket, format)
                            .map(|id| fingerprint_hex(&id))
                            .unwrap_or_else(|_| "unparseable".into())
                    });
                    let kex_value_fp =
                        summary.server_kex_public.as_ref().map(|v| fingerprint_hex(v));
                    return Grab {
                        domain: sni.into(),
                        ip: Some(ip),
                        outcome: Ok(Observation {
                            cipher_suite: summary.cipher_suite,
                            trusted,
                            session_id: summary.server_session_id.clone(),
                            resumed: summary.resumed,
                            ticket: summary.new_ticket.clone(),
                            stek_id,
                            kex_value_fp,
                            session: summary.session.clone(),
                        }),
                    };
                }
                Err(ConnectError::Timeout) => {
                    last_err = GrabFailure::Timeout;
                    continue;
                }
                Err(ConnectError::Refused) => {
                    return Grab { domain: sni.into(), ip: Some(ip), outcome: Err(GrabFailure::Refused) }
                }
                Err(ConnectError::UnknownHost) => {
                    return Grab {
                        domain: sni.into(),
                        ip: Some(ip),
                        outcome: Err(GrabFailure::UnknownHost),
                    }
                }
                Err(ConnectError::Tls(e)) => {
                    return Grab {
                        domain: sni.into(),
                        ip: Some(ip),
                        outcome: Err(GrabFailure::TlsFailed(e.to_string())),
                    }
                }
            }
        }
        Grab { domain: sni.into(), ip: Some(ip), outcome: Err(last_err) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use ts_population::PopulationConfig;

    fn pop() -> &'static Population {
        static POP: OnceLock<Population> = OnceLock::new();
        POP.get_or_init(|| Population::build(PopulationConfig::new(7, 500)))
    }

    #[test]
    fn grab_trusted_domain_succeeds() {
        let mut s = Scanner::new(pop(), "grab-test");
        let g = s.grab("yahoo.sim", 1000, &GrabOptions::default());
        let obs = g.ok().expect("handshake succeeds");
        assert!(obs.trusted);
        assert!(obs.ticket.is_some());
        assert!(obs.stek_id.is_some());
        assert!(obs.kex_value_fp.is_some(), "PFS suite negotiated");
        assert!(obs.resumed.is_none());
    }

    #[test]
    fn grab_blacklist_never_contacts() {
        let p = pop();
        let victim = p
            .truth
            .iter()
            .find(|t| t.blacklisted)
            .map(|t| t.name.clone());
        if let Some(victim) = victim {
            let mut s = Scanner::new(p, "bl-test");
            let g = s.grab(&victim, 1000, &GrabOptions::default());
            assert_eq!(g.outcome.unwrap_err(), GrabFailure::Blacklisted);
            assert!(g.ip.is_none(), "no DNS resolution even");
        }
    }

    #[test]
    fn grab_unknown_domain_no_dns() {
        let mut s = Scanner::new(pop(), "nodns-test");
        let g = s.grab("no-such-domain.sim", 1000, &GrabOptions::default());
        assert_eq!(g.outcome.unwrap_err(), GrabFailure::NoDns);
    }

    #[test]
    fn grab_non_https_refused() {
        let p = pop();
        let dead = p
            .truth
            .iter()
            .find(|t| !t.https && t.stable && !t.blacklisted)
            .expect("non-https domain exists");
        let mut s = Scanner::new(p, "refused-test");
        let g = s.grab(&dead.name, 1000, &GrabOptions::default());
        assert_eq!(g.outcome.unwrap_err(), GrabFailure::Refused);
    }

    #[test]
    fn untrusted_domain_recorded_when_permissive() {
        let p = pop();
        let ut = p
            .truth
            .iter()
            .find(|t| t.https && !t.trusted && t.stable && !t.blacklisted)
            .expect("untrusted domain exists");
        let mut s = Scanner::new(p, "permissive-test");
        let g = s.grab(&ut.name, 1000, &GrabOptions::default());
        let obs = g.ok().expect("permissive grab succeeds");
        assert!(!obs.trusted);
    }

    #[test]
    fn dhe_only_offer_fails_on_non_dhe_domain() {
        let p = pop();
        // cirrusflare serves ECDHE+RSA only.
        let cdn = p
            .truth
            .iter()
            .find(|t| t.operator.as_deref() == Some("cirrusflare"))
            .expect("cdn domain");
        let mut s = Scanner::new(p, "dhe-test");
        let opts = GrabOptions { suites: SuiteOffer::DheOnly, ..Default::default() };
        let g = s.grab(&cdn.name, 1000, &opts);
        assert!(
            matches!(g.outcome, Err(GrabFailure::TlsFailed(_))),
            "no common suite: {:?}",
            g.outcome
        );
    }

    #[test]
    fn ticket_resumption_via_grab() {
        let p = pop();
        let mut s = Scanner::new(p, "resume-test");
        let g1 = s.grab("yahoo.sim", 2000, &GrabOptions::default());
        let obs1 = g1.ok().expect("first grab").clone();
        let nst = obs1.ticket.expect("ticket issued");
        let opts = GrabOptions {
            resume_ticket: Some((nst.ticket, obs1.session.clone())),
            ..Default::default()
        };
        let g2 = s.grab("yahoo.sim", 2001, &opts);
        let obs2 = g2.ok().expect("second grab");
        assert_eq!(obs2.resumed, Some(ResumeKind::Ticket));
    }

    #[test]
    fn session_resumption_via_grab() {
        let p = pop();
        let mut s = Scanner::new(p, "sid-resume-test");
        let g1 = s.grab("netflix.sim", 2000, &GrabOptions::default());
        let obs1 = g1.ok().expect("first grab").clone();
        assert!(!obs1.session_id.is_empty());
        let opts = GrabOptions {
            resume_session: Some((obs1.session_id.clone(), obs1.session.clone())),
            ..Default::default()
        };
        let g2 = s.grab("netflix.sim", 2001, &opts);
        let obs2 = g2.ok().expect("second grab");
        assert_eq!(obs2.resumed, Some(ResumeKind::SessionId));
    }
}
