//! The TLS grabber: one observed connection.

use ts_core::observations::fingerprint_hex;
use ts_crypto::drbg::HmacDrbg;
use ts_population::Population;
use ts_simnet::{ConnectError, Ip};
use ts_telemetry::{emit, Counter, Event, Histogram};
use ts_tls::config::{ClientConfig, ResumptionOffer};
use ts_tls::server::ResumeKind;
use ts_tls::session::SessionState;
use ts_tls::suites::CipherSuite;
use ts_tls::ticket::{extract_stek_id, sniff_format};
use ts_tls::wire::handshake::NewSessionTicket;
use ts_tls::TlsError;

static GRAB_OK: Counter = Counter::new("scanner.grab.ok");
static GRAB_BLACKLISTED: Counter = Counter::new("scanner.grab.blacklisted");
static GRAB_NO_DNS: Counter = Counter::new("scanner.grab.no_dns");
static GRAB_REFUSED: Counter = Counter::new("scanner.grab.refused");
static GRAB_TIMEOUT: Counter = Counter::new("scanner.grab.timeout");
static GRAB_UNKNOWN_HOST: Counter = Counter::new("scanner.grab.unknown_host");
static GRAB_TLS_FAILED: Counter = Counter::new("scanner.grab.tls_failed");
static GRAB_RETRIES: Counter = Counter::new("scanner.grab.retries");
static GRAB_ATTEMPTS: Histogram = Histogram::new("scanner.grab.attempts", &[1, 2, 3, 4, 8]);

/// Count one concluded grab under its class counter and fire the event.
fn record_grab(outcome: &Result<Observation, GrabFailure>, attempts: u32) {
    let (counter, class): (&'static Counter, &'static str) = match outcome {
        Ok(_) => (&GRAB_OK, "ok"),
        Err(f) => (
            match f {
                GrabFailure::Blacklisted => &GRAB_BLACKLISTED,
                GrabFailure::NoDns => &GRAB_NO_DNS,
                GrabFailure::Refused => &GRAB_REFUSED,
                GrabFailure::Timeout => &GRAB_TIMEOUT,
                GrabFailure::UnknownHost => &GRAB_UNKNOWN_HOST,
                GrabFailure::TlsFailed(_) => &GRAB_TLS_FAILED,
            },
            f.class(),
        ),
    };
    counter.inc();
    if attempts > 1 {
        GRAB_RETRIES.add(u64::from(attempts - 1));
    }
    if attempts > 0 {
        // Blacklisted / no-DNS grabs never touch the network.
        GRAB_ATTEMPTS.observe(u64::from(attempts));
    }
    emit(Event::GrabOutcome { class, attempts });
}

/// Which cipher suites the grabber offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteOffer {
    /// Everything, browser-like (ECDHE preferred).
    All,
    /// Only DHE suites (the Censys-style DHE scans).
    DheOnly,
    /// Only ECDHE suites.
    EcdheOnly,
    /// ECDHE preferred with RSA fallback (the paper's ECDHE scan offer).
    EcdheThenRsa,
}

impl SuiteOffer {
    fn suites(self) -> Vec<CipherSuite> {
        match self {
            SuiteOffer::All => CipherSuite::all().to_vec(),
            SuiteOffer::DheOnly => CipherSuite::dhe_only().to_vec(),
            SuiteOffer::EcdheOnly => CipherSuite::ecdhe_only().to_vec(),
            SuiteOffer::EcdheThenRsa => {
                let mut v = CipherSuite::ecdhe_only().to_vec();
                v.push(CipherSuite::RsaAes128CbcSha256);
                v
            }
        }
    }
}

/// Options for one grab.
///
/// Construct with [`GrabOptions::new`] and chain setters; the struct is
/// `#[non_exhaustive]` so new knobs can land without breaking callers:
///
/// ```
/// use ts_scanner::{GrabOptions, SuiteOffer};
/// let opts = GrabOptions::new().suites(SuiteOffer::DheOnly).retries(0);
/// ```
#[derive(Clone)]
#[non_exhaustive]
pub struct GrabOptions {
    pub(crate) suites: SuiteOffer,
    // Field names deliberately differ from the `resume_session` /
    // `resume_ticket` builder methods: ts-lint treats the byteish fields
    // of a secret-bearing struct as tainted projections by name, and a
    // chained `.resume_session(..)` call must not read as one.
    pub(crate) sid_resume: Option<(Vec<u8>, SessionState)>,
    pub(crate) ticket_resume: Option<(Vec<u8>, SessionState)>,
    pub(crate) permissive: bool,
    pub(crate) retries: u32,
}

impl GrabOptions {
    /// The defaults: offer every suite, no resumption, permissive trust
    /// handling (record failures instead of aborting), two retries.
    pub fn new() -> Self {
        GrabOptions {
            suites: SuiteOffer::All,
            sid_resume: None,
            ticket_resume: None,
            permissive: true,
            retries: 2,
        }
    }

    /// Cipher suites to offer.
    #[must_use]
    pub fn suites(mut self, offer: SuiteOffer) -> Self {
        self.suites = offer;
        self
    }

    /// Offer a session ID (and its cached state) for resumption.
    #[must_use]
    pub fn resume_session(mut self, session_id: Vec<u8>, state: SessionState) -> Self {
        self.sid_resume = Some((session_id, state));
        self
    }

    /// Offer a session ticket (and its cached state) for resumption.
    #[must_use]
    pub fn resume_ticket(mut self, ticket: Vec<u8>, state: SessionState) -> Self {
        self.ticket_resume = Some((ticket, state));
        self
    }

    /// Record trust failures instead of aborting the handshake.
    #[must_use]
    pub fn permissive(mut self, on: bool) -> Self {
        self.permissive = on;
        self
    }

    /// Transport retries on transient timeouts.
    #[must_use]
    pub fn retries(mut self, n: u32) -> Self {
        self.retries = n;
        self
    }
}

impl Default for GrabOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a grab failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrabFailure {
    /// Domain is blacklisted — never contacted.
    Blacklisted,
    /// No DNS A record.
    NoDns,
    /// TCP-level refusal (no HTTPS).
    Refused,
    /// Timed out after retries.
    Timeout,
    /// SNI unknown at the endpoint.
    UnknownHost,
    /// TLS handshake failed (the structured cause is preserved).
    TlsFailed(TlsError),
}

impl GrabFailure {
    /// Stable label for this failure class (telemetry / report keys).
    pub fn class(&self) -> &'static str {
        match self {
            GrabFailure::Blacklisted => "blacklisted",
            GrabFailure::NoDns => "no-dns",
            GrabFailure::Refused => "refused",
            GrabFailure::Timeout => "timeout",
            GrabFailure::UnknownHost => "unknown-host",
            GrabFailure::TlsFailed(_) => "tls-failed",
        }
    }
}

impl std::fmt::Display for GrabFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrabFailure::Blacklisted => write!(f, "domain blacklisted"),
            GrabFailure::NoDns => write!(f, "no DNS A record"),
            GrabFailure::Refused => write!(f, "connection refused"),
            GrabFailure::Timeout => write!(f, "timed out after retries"),
            GrabFailure::UnknownHost => write!(f, "endpoint does not serve this SNI"),
            GrabFailure::TlsFailed(e) => write!(f, "TLS handshake failed: {e}"),
        }
    }
}

impl std::error::Error for GrabFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GrabFailure::TlsFailed(e) => Some(e),
            _ => None,
        }
    }
}

/// Everything one successful connection reveals.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Negotiated suite.
    pub cipher_suite: CipherSuite,
    /// Chain validated against the root store?
    pub trusted: bool,
    /// ServerHello session ID (empty if none; cleartext on the wire).
    // ctlint: public
    pub session_id: Vec<u8>,
    /// How the handshake resumed, if it did.
    pub resumed: Option<ResumeKind>,
    /// NewSessionTicket, if issued.
    pub ticket: Option<NewSessionTicket>,
    /// Hex STEK identifier parsed out of the ticket.
    pub stek_id: Option<String>,
    /// Hex fingerprint of the server's (EC)DHE public value.
    pub kex_value_fp: Option<String>,
    /// Session state for later resumption offers.
    pub session: SessionState,
}

/// The result of one grab.
#[derive(Debug, Clone)]
pub struct Grab {
    /// Target domain.
    pub domain: String,
    /// Resolved address, when DNS succeeded.
    pub ip: Option<Ip>,
    /// Observation or failure.
    pub outcome: Result<Observation, GrabFailure>,
}

impl Grab {
    /// Shorthand: did the handshake complete?
    pub fn ok(&self) -> Option<&Observation> {
        self.outcome.as_ref().ok()
    }
}

/// The scanner: a seeded connection factory against one population.
pub struct Scanner<'a> {
    pop: &'a Population,
    rng: HmacDrbg,
}

impl<'a> Scanner<'a> {
    /// New scanner with its own RNG stream.
    pub fn new(pop: &'a Population, seed_label: &str) -> Self {
        Scanner {
            pop,
            rng: HmacDrbg::from_seed_label(pop.config.seed, seed_label),
        }
    }

    /// The population under measurement.
    pub fn population(&self) -> &Population {
        self.pop
    }

    /// Perform one grab of `domain` at virtual time `now`.
    pub fn grab(&mut self, domain: &str, now: u64, options: &GrabOptions) -> Grab {
        if self.pop.blacklist.contains(domain) {
            let outcome = Err(GrabFailure::Blacklisted);
            record_grab(&outcome, 0);
            return Grab {
                domain: domain.into(),
                ip: None,
                outcome,
            };
        }
        let ip = match self.pop.dns.resolve(domain, &mut self.rng) {
            Some(ip) => ip,
            None => {
                let outcome = Err(GrabFailure::NoDns);
                record_grab(&outcome, 0);
                return Grab {
                    domain: domain.into(),
                    ip: None,
                    outcome,
                };
            }
        };
        self.grab_ip(domain, ip, now, options)
    }

    /// Grab a specific IP with a given SNI (the cross-domain experiments
    /// pick the address explicitly).
    pub fn grab_ip(&mut self, sni: &str, ip: Ip, now: u64, options: &GrabOptions) -> Grab {
        let mut attempts = 0u32;
        let finish = |outcome: Result<Observation, GrabFailure>, attempts: u32| {
            record_grab(&outcome, attempts);
            Grab {
                domain: sni.into(),
                ip: Some(ip),
                outcome,
            }
        };
        for _attempt in 0..=options.retries {
            attempts += 1;
            let mut cfg = ClientConfig::new(self.pop.root_store.clone(), sni, now);
            cfg.suites = options.suites.suites();
            cfg.verify_certs = !options.permissive;
            cfg.resumption = ResumptionOffer {
                session: options.sid_resume.clone(),
                ticket: options.ticket_resume.clone(),
            };
            match self.pop.net.connect(ip, cfg, now, &mut self.rng) {
                Ok(conn) => {
                    let summary = match conn.client.summary() {
                        Ok(s) => s,
                        Err(e) => return finish(Err(GrabFailure::TlsFailed(e)), attempts),
                    };
                    let trusted =
                        matches!(summary.trust, Some(Ok(()))) || summary.resumed.is_some();
                    let stek_id = summary.new_ticket.as_ref().map(|nst| {
                        let format = sniff_format(&nst.ticket);
                        extract_stek_id(&nst.ticket, format)
                            .map(|id| fingerprint_hex(&id))
                            .unwrap_or_else(|_| "unparseable".into())
                    });
                    let kex_value_fp = summary
                        .server_kex_public
                        .as_ref()
                        .map(|v| fingerprint_hex(v));
                    return finish(
                        Ok(Observation {
                            cipher_suite: summary.cipher_suite,
                            trusted,
                            session_id: summary.server_session_id.clone(),
                            resumed: summary.resumed,
                            ticket: summary.new_ticket.clone(),
                            stek_id,
                            kex_value_fp,
                            session: summary.session.clone(),
                        }),
                        attempts,
                    );
                }
                Err(ConnectError::Timeout) => continue,
                Err(ConnectError::Refused) => {
                    return finish(Err(GrabFailure::Refused), attempts);
                }
                Err(ConnectError::UnknownHost) => {
                    return finish(Err(GrabFailure::UnknownHost), attempts);
                }
                Err(ConnectError::Tls(e)) => {
                    return finish(Err(GrabFailure::TlsFailed(e)), attempts);
                }
            }
        }
        finish(Err(GrabFailure::Timeout), attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use ts_population::PopulationConfig;

    fn pop() -> &'static Population {
        static POP: OnceLock<Population> = OnceLock::new();
        POP.get_or_init(|| Population::build(PopulationConfig::new(7, 500)))
    }

    #[test]
    fn grab_trusted_domain_succeeds() {
        let mut s = Scanner::new(pop(), "grab-test");
        let g = s.grab("yahoo.sim", 1000, &GrabOptions::default());
        let obs = g.ok().expect("handshake succeeds");
        assert!(obs.trusted);
        assert!(obs.ticket.is_some());
        assert!(obs.stek_id.is_some());
        assert!(obs.kex_value_fp.is_some(), "PFS suite negotiated");
        assert!(obs.resumed.is_none());
    }

    #[test]
    fn grab_blacklist_never_contacts() {
        let p = pop();
        let victim = p
            .truth
            .iter()
            .find(|t| t.blacklisted)
            .map(|t| t.name.clone());
        if let Some(victim) = victim {
            let mut s = Scanner::new(p, "bl-test");
            let g = s.grab(&victim, 1000, &GrabOptions::default());
            assert_eq!(g.outcome.unwrap_err(), GrabFailure::Blacklisted);
            assert!(g.ip.is_none(), "no DNS resolution even");
        }
    }

    #[test]
    fn grab_unknown_domain_no_dns() {
        let mut s = Scanner::new(pop(), "nodns-test");
        let g = s.grab("no-such-domain.sim", 1000, &GrabOptions::default());
        assert_eq!(g.outcome.unwrap_err(), GrabFailure::NoDns);
    }

    #[test]
    fn grab_non_https_refused() {
        let p = pop();
        let dead = p
            .truth
            .iter()
            .find(|t| !t.https && t.stable && !t.blacklisted)
            .expect("non-https domain exists");
        let mut s = Scanner::new(p, "refused-test");
        let g = s.grab(&dead.name, 1000, &GrabOptions::default());
        assert_eq!(g.outcome.unwrap_err(), GrabFailure::Refused);
    }

    #[test]
    fn untrusted_domain_recorded_when_permissive() {
        let p = pop();
        let ut = p
            .truth
            .iter()
            .find(|t| t.https && !t.trusted && t.stable && !t.blacklisted)
            .expect("untrusted domain exists");
        let mut s = Scanner::new(p, "permissive-test");
        let g = s.grab(&ut.name, 1000, &GrabOptions::default());
        let obs = g.ok().expect("permissive grab succeeds");
        assert!(!obs.trusted);
    }

    #[test]
    fn dhe_only_offer_fails_on_non_dhe_domain() {
        let p = pop();
        // cirrusflare serves ECDHE+RSA only.
        let cdn = p
            .truth
            .iter()
            .find(|t| t.operator.as_deref() == Some("cirrusflare"))
            .expect("cdn domain");
        let mut s = Scanner::new(p, "dhe-test");
        let opts = GrabOptions::new().suites(SuiteOffer::DheOnly);
        let g = s.grab(&cdn.name, 1000, &opts);
        assert!(
            matches!(g.outcome, Err(GrabFailure::TlsFailed(_))),
            "no common suite: {:?}",
            g.outcome
        );
    }

    #[test]
    fn ticket_resumption_via_grab() {
        let p = pop();
        let mut s = Scanner::new(p, "resume-test");
        let g1 = s.grab("yahoo.sim", 2000, &GrabOptions::default());
        let obs1 = g1.ok().expect("first grab").clone();
        let nst = obs1.ticket.expect("ticket issued");
        let opts = GrabOptions::new().resume_ticket(nst.ticket, obs1.session.clone());
        let g2 = s.grab("yahoo.sim", 2001, &opts);
        let obs2 = g2.ok().expect("second grab");
        assert_eq!(obs2.resumed, Some(ResumeKind::Ticket));
    }

    #[test]
    fn session_resumption_via_grab() {
        let p = pop();
        let mut s = Scanner::new(p, "sid-resume-test");
        let g1 = s.grab("netflix.sim", 2000, &GrabOptions::default());
        let obs1 = g1.ok().expect("first grab").clone();
        assert!(!obs1.session_id.is_empty());
        let opts = GrabOptions::new().resume_session(obs1.session_id.clone(), obs1.session.clone());
        let g2 = s.grab("netflix.sim", 2001, &opts);
        let obs2 = g2.ok().expect("second grab");
        assert_eq!(obs2.resumed, Some(ResumeKind::SessionId));
    }
}
