//! # ts-scanner — the modified-ZMap/zgrab toolchain analogue
//!
//! The paper's measurements ran on a ZMap toolchain modified to support
//! session-ID and ticket resumption. This crate is that toolchain against
//! the simulated Internet:
//!
//! * [`grab`] — one TLS connection with full observation capture
//!   (suite, trust, session ID, ticket + STEK identifier, server KEX value)
//! * [`burst`] — the 10-connection-per-domain scans behind Table 1
//! * [`probe`] — resumption-lifetime probing (1 s, then every 5 min up to
//!   24 h) behind Figures 1 and 2
//! * [`daily`] — the 63-day daily campaign behind Figures 3–5 and
//!   Tables 2–4
//! * [`crossdomain`] — the §5 sharing experiments (session caches via
//!   cross-domain resumption; STEKs and DH values via identifier matching)
//!
//! The scanner honours the institutional blacklist and restricts analysis
//! to browser-trusted domains, exactly as §3 describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod crossdomain;
pub mod daily;
pub mod grab;
pub mod probe;

pub use daily::{CampaignOptions, CampaignSink};
pub use grab::{Grab, GrabFailure, GrabOptions, Observation, Scanner, SuiteOffer};
pub use probe::ProbeSchedule;
