//! Resumption-lifetime probing (Figures 1 and 2).
//!
//! Methodology from §4.1/§4.2: establish a session, attempt resumption one
//! second later, then every five minutes until the site fails to resume or
//! 24 hours elapse. For ticket probes, the *original* ticket is retained
//! even when the server reissues during resumptions.

use crate::grab::{GrabOptions, Scanner};
use ts_core::observations::{ResumptionMechanism, ResumptionProbe};
use ts_telemetry::{Counter, Histogram};
use ts_tls::server::ResumeKind;

static PROBE_SESSION_ID: Counter = Counter::new("scanner.probe.session_id");
static PROBE_TICKET: Counter = Counter::new("scanner.probe.ticket");
static PROBE_MAX_DELAY: Histogram = Histogram::new(
    "scanner.probe.max_delay_secs",
    &[1, 300, 3_600, 21_600, 86_400],
);

/// Probe schedule. The paper's: 1 s, then every 300 s to 86,400 s.
///
/// Construct with [`ProbeSchedule::new`] (paper defaults) or
/// [`ProbeSchedule::coarse`], then chain setters:
///
/// ```
/// use ts_scanner::ProbeSchedule;
/// let fast = ProbeSchedule::new().step(600).horizon(3_600);
/// ```
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ProbeSchedule {
    pub(crate) first: u64,
    pub(crate) step: u64,
    pub(crate) horizon: u64,
}

impl Default for ProbeSchedule {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeSchedule {
    /// The paper's schedule: 1 s, then every 300 s up to 86,400 s.
    pub fn new() -> Self {
        ProbeSchedule {
            first: 1,
            step: 300,
            horizon: 86_400,
        }
    }

    /// A coarse schedule for tests / fast runs.
    pub fn coarse(step: u64, horizon: u64) -> Self {
        ProbeSchedule {
            first: 1,
            step,
            horizon,
        }
    }

    /// First retry offset (seconds).
    #[must_use]
    pub fn first(mut self, secs: u64) -> Self {
        self.first = secs;
        self
    }

    /// Step between subsequent retries (seconds).
    #[must_use]
    pub fn step(mut self, secs: u64) -> Self {
        self.step = secs;
        self
    }

    /// Stop once delays exceed this horizon (seconds).
    #[must_use]
    pub fn horizon(mut self, secs: u64) -> Self {
        self.horizon = secs;
        self
    }

    /// The first retry offset (the `resumed_at_1s` delay).
    pub fn first_delay(&self) -> u64 {
        self.first
    }

    /// The delays probed, in order.
    pub fn delays(&self) -> impl Iterator<Item = u64> + '_ {
        let first = self.first;
        let step = self.step;
        let horizon = self.horizon;
        std::iter::once(first).chain(
            (1..)
                .map(move |k| k * step)
                .take_while(move |&d| d <= horizon),
        )
    }
}

/// Probe how long `domain` honours session-ID resumption starting at `t0`.
pub fn probe_session_id(
    scanner: &mut Scanner,
    domain: &str,
    t0: u64,
    schedule: &ProbeSchedule,
) -> ResumptionProbe {
    PROBE_SESSION_ID.inc();
    let initial = scanner.grab(domain, t0, &GrabOptions::new());
    let obs = match initial.ok() {
        Some(o) => o.clone(),
        None => {
            return ResumptionProbe {
                domain: domain.into(),
                mechanism: ResumptionMechanism::SessionId,
                supported: false,
                resumed_at_1s: false,
                max_delay: None,
                lifetime_hint: None,
            }
        }
    };
    let supported = !obs.session_id.is_empty();
    let mut max_delay = None;
    let mut resumed_at_1s = false;
    if supported {
        for delay in schedule.delays() {
            let opts =
                GrabOptions::new().resume_session(obs.session_id.clone(), obs.session.clone());
            let g = scanner.grab(domain, t0 + delay, &opts);
            let resumed = g
                .ok()
                .map(|o| o.resumed == Some(ResumeKind::SessionId))
                .unwrap_or(false);
            if resumed {
                if delay == schedule.first {
                    resumed_at_1s = true;
                }
                max_delay = Some(delay);
            } else {
                break;
            }
        }
    }
    if let Some(d) = max_delay {
        PROBE_MAX_DELAY.observe(d);
    }
    ResumptionProbe {
        domain: domain.into(),
        mechanism: ResumptionMechanism::SessionId,
        supported,
        resumed_at_1s,
        max_delay,
        lifetime_hint: None,
    }
}

/// Probe how long `domain` honours the *original* session ticket.
pub fn probe_ticket(
    scanner: &mut Scanner,
    domain: &str,
    t0: u64,
    schedule: &ProbeSchedule,
) -> ResumptionProbe {
    PROBE_TICKET.inc();
    let initial = scanner.grab(domain, t0, &GrabOptions::new());
    let obs = match initial.ok() {
        Some(o) => o.clone(),
        None => {
            return ResumptionProbe {
                domain: domain.into(),
                mechanism: ResumptionMechanism::Ticket,
                supported: false,
                resumed_at_1s: false,
                max_delay: None,
                lifetime_hint: None,
            }
        }
    };
    let original_ticket = match obs.ticket.clone() {
        Some(nst) => nst,
        None => {
            return ResumptionProbe {
                domain: domain.into(),
                mechanism: ResumptionMechanism::Ticket,
                supported: false,
                resumed_at_1s: false,
                max_delay: None,
                lifetime_hint: None,
            }
        }
    };
    let mut max_delay = None;
    let mut resumed_at_1s = false;
    for delay in schedule.delays() {
        // Always the ORIGINAL ticket, ignoring reissues (§4.2).
        let opts =
            GrabOptions::new().resume_ticket(original_ticket.ticket.clone(), obs.session.clone());
        let g = scanner.grab(domain, t0 + delay, &opts);
        let resumed = g
            .ok()
            .map(|o| o.resumed == Some(ResumeKind::Ticket))
            .unwrap_or(false);
        if resumed {
            if delay == schedule.first {
                resumed_at_1s = true;
            }
            max_delay = Some(delay);
        } else {
            break;
        }
    }
    if let Some(d) = max_delay {
        PROBE_MAX_DELAY.observe(d);
    }
    ResumptionProbe {
        domain: domain.into(),
        mechanism: ResumptionMechanism::Ticket,
        supported: true,
        resumed_at_1s,
        max_delay,
        lifetime_hint: Some(original_ticket.lifetime_hint),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use ts_population::{Population, PopulationConfig};

    fn pop() -> &'static Population {
        static POP: OnceLock<Population> = OnceLock::new();
        POP.get_or_init(|| {
            let mut cfg = PopulationConfig::new(23, 400);
            cfg.flakiness = 0.0; // probes measure policy, not packet luck
            Population::build(cfg)
        })
    }

    #[test]
    fn schedule_delays() {
        let s = ProbeSchedule::default();
        let d: Vec<u64> = s.delays().take(4).collect();
        assert_eq!(d, vec![1, 300, 600, 900]);
        let all: Vec<u64> = ProbeSchedule::coarse(600, 1800).delays().collect();
        assert_eq!(all, vec![1, 600, 1200, 1800]);
    }

    #[test]
    fn session_probe_finds_five_minute_lifetime() {
        let p = pop();
        // Notables have a 5-minute session cache.
        let mut s = Scanner::new(p, "probe-sid");
        let probe = probe_session_id(
            &mut s,
            "yahoo.sim",
            10_000,
            &ProbeSchedule::coarse(150, 1_200),
        );
        assert!(probe.supported);
        assert!(probe.resumed_at_1s);
        // Lifetime 300 s: the 150 s and 300 s probes pass, 450 fails.
        assert_eq!(probe.max_delay, Some(300));
    }

    #[test]
    fn ticket_probe_respects_accept_window() {
        let p = pop();
        // Notables: ticket hint 1h, accept 1h.
        let mut s = Scanner::new(p, "probe-ticket");
        let probe = probe_ticket(
            &mut s,
            "netflix.sim",
            10_000,
            &ProbeSchedule::coarse(1_200, 7_200),
        );
        assert!(probe.supported);
        assert!(probe.resumed_at_1s);
        assert_eq!(probe.lifetime_hint, Some(3_600));
        assert_eq!(probe.max_delay, Some(3_600), "1h accept window");
    }

    #[test]
    fn non_https_domain_unsupported() {
        let p = pop();
        let dead = p
            .truth
            .iter()
            .find(|t| !t.https && t.stable && !t.blacklisted)
            .expect("non-https domain");
        let mut s = Scanner::new(p, "probe-dead");
        let probe = probe_session_id(&mut s, &dead.name, 10_000, &ProbeSchedule::coarse(300, 600));
        assert!(!probe.supported);
        assert_eq!(probe.max_delay, None);
    }

    #[test]
    fn cirrusflare_honours_18h_tickets() {
        let p = pop();
        let cdn = p
            .truth
            .iter()
            .find(|t| t.operator.as_deref() == Some("cirrusflare"))
            .expect("cdn domain");
        let mut s = Scanner::new(p, "probe-18h");
        // Coarse 6h steps: 1s, 6h, 12h, 18h pass; 24h fails.
        let probe = probe_ticket(
            &mut s,
            &cdn.name,
            50_000,
            &ProbeSchedule::coarse(6 * 3_600, 24 * 3_600),
        );
        assert!(probe.resumed_at_1s);
        assert_eq!(probe.max_delay, Some(18 * 3_600), "18-hour step (Fig. 2)");
    }
}
