//! IPv4 addresses and autonomous systems.
//!
//! The §5.1 cross-domain probing experiment samples candidate sibling
//! domains "from each AS" and "that shared its IP address", so the address
//! plan must expose both groupings. An [`AsPlan`] hands out /16-sized AS
//! blocks and sequential addresses within them.

use std::collections::HashMap;

/// An IPv4 address (value type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ip(pub u32);

impl Ip {
    /// Dotted-quad rendering.
    pub fn to_string_quad(self) -> String {
        let b = self.0.to_be_bytes();
        format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }

    /// The /24 prefix (the granularity Table 5's CIDR observation uses).
    pub fn slash24(self) -> u32 {
        self.0 >> 8
    }
}

/// An autonomous-system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u32);

/// Allocates AS blocks and addresses within them.
///
/// Each AS gets a /16 (65,536 addresses) starting from 10.0.0.0-space —
/// fictional but structurally faithful.
#[derive(Debug, Default)]
pub struct AsPlan {
    next_as_index: u32,
    next_host: HashMap<AsId, u32>,
    as_of_ip: HashMap<u32, AsId>, // keyed by /16 prefix
}

impl AsPlan {
    /// Fresh plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new AS.
    pub fn new_as(&mut self) -> AsId {
        let id = AsId(64_000 + self.next_as_index);
        let prefix = self.block_prefix(self.next_as_index);
        self.as_of_ip.insert(prefix, id);
        self.next_as_index += 1;
        self.next_host.insert(id, 1);
        id
    }

    fn block_prefix(&self, index: u32) -> u32 {
        // 10.0.0.0/8 carved into /16s: 10.x.0.0, then 11.x.0.0, ...
        let major = 10 + (index >> 8);
        let minor = index & 0xff;
        (major << 24 | minor << 16) >> 16
    }

    fn index_of(&self, as_id: AsId) -> u32 {
        as_id.0 - 64_000
    }

    /// Allocate the next address inside `as_id`. Panics on unknown AS or
    /// block exhaustion.
    pub fn new_ip(&mut self, as_id: AsId) -> Ip {
        let prefix = self.block_prefix(self.index_of(as_id));
        let host = self.next_host.get_mut(&as_id).expect("unknown AS");
        assert!(*host < 0xffff, "AS block exhausted");
        let ip = Ip((prefix << 16) | *host);
        *host += 1;
        ip
    }

    /// Which AS owns `ip`, if the plan allocated it.
    pub fn as_of(&self, ip: Ip) -> Option<AsId> {
        self.as_of_ip.get(&(ip.0 >> 16)).copied()
    }

    /// Number of allocated ASes.
    pub fn as_count(&self) -> usize {
        self.next_as_index as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_allocation_and_lookup() {
        let mut plan = AsPlan::new();
        let a = plan.new_as();
        let b = plan.new_as();
        assert_ne!(a, b);
        let ip_a1 = plan.new_ip(a);
        let ip_a2 = plan.new_ip(a);
        let ip_b1 = plan.new_ip(b);
        assert_ne!(ip_a1, ip_a2);
        assert_eq!(plan.as_of(ip_a1), Some(a));
        assert_eq!(plan.as_of(ip_a2), Some(a));
        assert_eq!(plan.as_of(ip_b1), Some(b));
        assert_eq!(plan.as_of(Ip(0x01020304)), None);
        assert_eq!(plan.as_count(), 2);
    }

    #[test]
    fn ips_within_as_share_a_16() {
        let mut plan = AsPlan::new();
        let a = plan.new_as();
        let i1 = plan.new_ip(a);
        let i2 = plan.new_ip(a);
        assert_eq!(i1.0 >> 16, i2.0 >> 16);
    }

    #[test]
    fn many_ases_stay_distinct() {
        let mut plan = AsPlan::new();
        let ases: Vec<AsId> = (0..600).map(|_| plan.new_as()).collect();
        let mut prefixes = std::collections::HashSet::new();
        for &a in &ases {
            let ip = plan.new_ip(a);
            assert!(prefixes.insert(ip.0 >> 16), "prefix collision for {a:?}");
            assert_eq!(plan.as_of(ip), Some(a));
        }
    }

    #[test]
    fn dotted_quad_and_slash24() {
        let ip = Ip(0x0a010203);
        assert_eq!(ip.to_string_quad(), "10.1.2.3");
        assert_eq!(ip.slash24(), 0x0a0102);
    }
}
