//! Virtual time.
//!
//! One tick = one second. Day arithmetic matches the study's cadence:
//! the 9-week campaign spans days 0..63, with daily scans at a fixed
//! within-day offset.

/// Seconds per virtual day.
pub const DAY: u64 = 86_400;
/// Seconds per hour.
pub const HOUR: u64 = 3_600;
/// Seconds per minute.
pub const MINUTE: u64 = 60;
/// The study length in days (March 2 – May 4, 2016 = 63 days).
pub const STUDY_DAYS: u64 = 63;

/// A virtual clock. Plain value type — the simulation threads one through
/// explicitly rather than hiding global state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Clock {
    now: u64,
}

impl Clock {
    /// Start of time.
    pub fn new() -> Self {
        Clock { now: 0 }
    }

    /// A clock at an absolute second.
    pub fn at(now: u64) -> Self {
        Clock { now }
    }

    /// Current virtual second.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance by `secs`.
    pub fn advance(&mut self, secs: u64) {
        self.now += secs;
    }

    /// Advance to an absolute time (no-op if already past).
    pub fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Day index (0-based).
    pub fn day(&self) -> u64 {
        self.now / DAY
    }

    /// Seconds since local midnight.
    pub fn time_of_day(&self) -> u64 {
        self.now % DAY
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

/// Render a duration in the paper's figure units ("5 minutes", "24 hours",
/// "63 days") for report output.
pub fn human_duration(secs: u64) -> String {
    if secs == 0 {
        return "0s".into();
    }
    if secs % DAY == 0 {
        return format!("{}d", secs / DAY);
    }
    if secs % HOUR == 0 {
        return format!("{}h", secs / HOUR);
    }
    if secs % MINUTE == 0 {
        return format!("{}m", secs / MINUTE);
    }
    format!("{secs}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_day_math() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.day(), 0);
        c.advance(DAY - 1);
        assert_eq!(c.day(), 0);
        c.advance(1);
        assert_eq!(c.day(), 1);
        assert_eq!(c.time_of_day(), 0);
        c.advance(HOUR * 3 + 30);
        assert_eq!(c.time_of_day(), HOUR * 3 + 30);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = Clock::at(100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
        c.advance_to(200);
        assert_eq!(c.now(), 200);
    }

    #[test]
    fn human_durations() {
        assert_eq!(human_duration(0), "0s");
        assert_eq!(human_duration(45), "45s");
        assert_eq!(human_duration(300), "5m");
        assert_eq!(human_duration(HOUR), "1h");
        assert_eq!(human_duration(18 * HOUR), "18h");
        assert_eq!(human_duration(DAY), "1d");
        assert_eq!(human_duration(63 * DAY), "63d");
        assert_eq!(human_duration(90061), "90061s");
    }
}
