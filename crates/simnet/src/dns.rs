//! DNS: A records, MX records, and resolution jitter.
//!
//! Two paper-relevant behaviours live here. First, domains can map to
//! *multiple* A records and the resolver picks one per query — the "ZMap
//! tool-chain's choice of A-record entries between days" that §4.3 cites as
//! a jitter source the first/last-seen STEK estimator must absorb. Second,
//! MX records let the §7.2 analysis count domains whose mail flows through
//! a provider's SMTP endpoints.

use crate::addr::Ip;
use std::collections::BTreeMap;
use ts_crypto::drbg::HmacDrbg;
use ts_telemetry::{emit, Counter, Event};

static DNS_HIT: Counter = Counter::new("simnet.dns.hit");
static DNS_MISS: Counter = Counter::new("simnet.dns.miss");

/// The simulation's DNS zone.
#[derive(Debug, Default)]
pub struct Dns {
    // Ordered: `domains_with_mx` scans mx_records for the §7.2 census, so
    // the zone's walk order must not depend on the hash seed.
    a_records: BTreeMap<String, Vec<Ip>>,
    mx_records: BTreeMap<String, String>,
}

impl Dns {
    /// Empty zone.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register A records for `domain` (replaces existing).
    pub fn set_a(&mut self, domain: &str, ips: Vec<Ip>) {
        assert!(!ips.is_empty(), "a domain needs at least one A record");
        self.a_records.insert(domain.to_ascii_lowercase(), ips);
    }

    /// Register an MX record: mail for `domain` handled by `mail_host`.
    pub fn set_mx(&mut self, domain: &str, mail_host: &str) {
        self.mx_records
            .insert(domain.to_ascii_lowercase(), mail_host.to_ascii_lowercase());
    }

    /// All A records for `domain`.
    pub fn lookup_all(&self, domain: &str) -> Option<&[Ip]> {
        self.a_records
            .get(&domain.to_ascii_lowercase())
            .map(|v| v.as_slice())
    }

    /// Resolve one A record, picking uniformly — the per-query jitter.
    pub fn resolve(&self, domain: &str, rng: &mut HmacDrbg) -> Option<Ip> {
        let ips = match self.lookup_all(domain) {
            Some(ips) => {
                DNS_HIT.inc();
                emit(Event::DnsLookup { hit: true });
                ips
            }
            None => {
                DNS_MISS.inc();
                emit(Event::DnsLookup { hit: false });
                return None;
            }
        };
        Some(ips[rng.gen_range(ips.len() as u64) as usize])
    }

    /// The MX target for `domain`.
    pub fn lookup_mx(&self, domain: &str) -> Option<&str> {
        self.mx_records
            .get(&domain.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// Domains whose MX points at `mail_host` (the §7.2 census), in name
    /// order — the zone map is ordered, so no explicit sort is needed.
    pub fn domains_with_mx(&self, mail_host: &str) -> Vec<&str> {
        let needle = mail_host.to_ascii_lowercase();
        self.mx_records
            .iter()
            .filter(|(_, target)| **target == needle)
            .map(|(d, _)| d.as_str())
            .collect()
    }

    /// Number of registered domains (A records).
    pub fn len(&self) -> usize {
        self.a_records.len()
    }

    /// True if the zone is empty.
    pub fn is_empty(&self) -> bool {
        self.a_records.is_empty()
    }

    /// A restricted copy of the zone covering only `domains` — the DNS
    /// view a population shard hands its workers. A and MX records carry
    /// over verbatim; lookups outside the subset miss, exactly as if the
    /// shard's resolver knew nothing beyond its slice of the world.
    pub fn subzone<'a>(&self, domains: impl IntoIterator<Item = &'a str>) -> Dns {
        let mut out = Dns::new();
        for d in domains {
            let key = d.to_ascii_lowercase();
            if let Some(ips) = self.a_records.get(&key) {
                out.a_records.insert(key.clone(), ips.clone());
            }
            if let Some(mx) = self.mx_records.get(&key) {
                out.mx_records.insert(key, mx.clone());
            }
        }
        out
    }

    /// Remove a domain entirely (churn).
    pub fn remove(&mut self, domain: &str) {
        let key = domain.to_ascii_lowercase();
        self.a_records.remove(&key);
        self.mx_records.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_resolve() {
        let mut dns = Dns::new();
        dns.set_a("Example.SIM", vec![Ip(1), Ip(2)]);
        let mut rng = HmacDrbg::new(b"dns");
        let ip = dns.resolve("example.sim", &mut rng).unwrap();
        assert!(ip == Ip(1) || ip == Ip(2));
        assert_eq!(dns.lookup_all("EXAMPLE.sim").unwrap().len(), 2);
        assert!(dns.resolve("missing.sim", &mut rng).is_none());
    }

    #[test]
    fn multi_a_record_jitter_covers_all_records() {
        let mut dns = Dns::new();
        dns.set_a("lb.sim", vec![Ip(1), Ip(2), Ip(3)]);
        let mut rng = HmacDrbg::new(b"jitter");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(dns.resolve("lb.sim", &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3, "all A records eventually chosen");
    }

    #[test]
    fn mx_census() {
        let mut dns = Dns::new();
        dns.set_a("a.sim", vec![Ip(1)]);
        dns.set_mx("a.sim", "smtp.bigmail.sim");
        dns.set_mx("b.sim", "smtp.bigmail.sim");
        dns.set_mx("c.sim", "mail.other.sim");
        assert_eq!(dns.lookup_mx("a.sim"), Some("smtp.bigmail.sim"));
        assert_eq!(
            dns.domains_with_mx("smtp.bigmail.sim"),
            vec!["a.sim", "b.sim"]
        );
        assert_eq!(dns.domains_with_mx("SMTP.BIGMAIL.SIM").len(), 2);
        assert!(dns.domains_with_mx("none.sim").is_empty());
    }

    #[test]
    fn subzone_covers_exactly_the_subset() {
        let mut dns = Dns::new();
        dns.set_a("a.sim", vec![Ip(1), Ip(2)]);
        dns.set_a("b.sim", vec![Ip(3)]);
        dns.set_a("c.sim", vec![Ip(4)]);
        dns.set_mx("a.sim", "smtp.bigmail.sim");
        dns.set_mx("b.sim", "smtp.bigmail.sim");
        let sub = dns.subzone(["a.sim", "b.sim", "nosuch.sim"]);
        assert_eq!(sub.len(), 2);
        assert_eq!(
            sub.lookup_all("a.sim").unwrap(),
            dns.lookup_all("a.sim").unwrap()
        );
        assert_eq!(sub.lookup_mx("b.sim"), Some("smtp.bigmail.sim"));
        assert!(sub.lookup_all("c.sim").is_none(), "outside the subset");
        assert!(sub.lookup_all("nosuch.sim").is_none());
        // The parent zone is untouched.
        assert_eq!(dns.len(), 3);
    }

    #[test]
    fn removal_churns_both_tables() {
        let mut dns = Dns::new();
        dns.set_a("gone.sim", vec![Ip(9)]);
        dns.set_mx("gone.sim", "mx.sim");
        dns.remove("gone.sim");
        assert!(dns.lookup_all("gone.sim").is_none());
        assert!(dns.lookup_mx("gone.sim").is_none());
        assert!(dns.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one A record")]
    fn empty_a_record_set_panics() {
        Dns::new().set_a("bad.sim", vec![]);
    }
}
