//! # ts-simnet — a deterministic in-memory Internet for TLS measurement
//!
//! The paper's substrate is the live Internet; ours is this crate. It
//! provides exactly the network behaviours the measurement methodology
//! interacts with:
//!
//! * [`clock`] — virtual time (seconds), with day arithmetic matching the
//!   paper's daily-scan cadence
//! * [`addr`] — IPv4 addresses grouped into autonomous systems (the §5.1
//!   cross-domain experiment samples "up to five other sites in its AS")
//! * [`dns`] — A records (multiple per domain, randomized selection — the
//!   jitter source §4.3 discusses), MX records (the §7.2 Google-SMTP
//!   analysis), and churn-able zones
//! * [`net`] — the network itself: IPs bound to [`TlsResponder`]s (SSL
//!   terminators), per-endpoint reliability, and a [`SimNet::connect`]
//!   that runs a real TLS handshake from the `ts-tls` stack and returns
//!   both the client connection and a passive wire capture
//!
//! Everything is seeded: a campaign replays byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod clock;
pub mod dns;
pub mod net;

pub use addr::{AsId, Ip};
pub use clock::Clock;
pub use dns::Dns;
pub use net::{ConnectError, SimNet, TlsResponder};
