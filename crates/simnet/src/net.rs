//! The network: IPs bound to TLS responders, connection establishment,
//! and failure injection.
//!
//! A [`TlsResponder`] models an SSL terminator or origin server: given the
//! SNI a client presents, it yields the `ServerConfig` for that virtual
//! host (sharing caches/STEKs/ephemeral values across its domains — that
//! sharing *is* the paper's §5 phenomenon, and it lives in the responder
//! implementations in `ts-population`).

use crate::addr::Ip;
use std::collections::HashMap;
use std::sync::Arc;
use ts_crypto::drbg::HmacDrbg;
use ts_telemetry::{emit, Counter, Event};
use ts_tls::config::{ClientConfig, ServerConfig};
use ts_tls::pump::{pump, WireCapture};
use ts_tls::{ClientConn, ServerConn, TlsError};

static CONNECT_ATTEMPTS: Counter = Counter::new("simnet.connect.attempts");
static CONNECT_OK: Counter = Counter::new("simnet.connect.ok");
static CONNECT_REFUSED: Counter = Counter::new("simnet.connect.refused");
static CONNECT_FLAKY_DROP: Counter = Counter::new("simnet.connect.flaky_drop");
static CONNECT_UNKNOWN_SNI: Counter = Counter::new("simnet.connect.unknown_sni");
static CONNECT_TLS_FAIL: Counter = Counter::new("simnet.connect.tls_fail");

fn count_outcome(counter: &'static Counter, outcome: &'static str) {
    counter.inc();
    emit(Event::ConnectAttempt { outcome });
}

/// Something listening on TCP/443 at an IP.
pub trait TlsResponder: Send + Sync {
    /// The server configuration to use for a connection carrying `sni`,
    /// or `None` to refuse the connection (no such virtual host).
    fn server_config(&self, sni: &str, now: u64) -> Option<ServerConfig>;
}

/// Why a connection failed.
#[derive(Debug)]
pub enum ConnectError {
    /// No responder at the IP (connection refused / port closed).
    Refused,
    /// Transient network failure (the §4.3 "server failing to respond to
    /// one of our connections" jitter).
    Timeout,
    /// The responder has no virtual host for the SNI.
    UnknownHost,
    /// The TLS handshake itself failed.
    Tls(TlsError),
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Refused => write!(f, "connection refused"),
            ConnectError::Timeout => write!(f, "connection timed out"),
            ConnectError::UnknownHost => write!(f, "no such virtual host"),
            ConnectError::Tls(e) => write!(f, "TLS failure: {e}"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// A successful connection: the established client side, the server side
/// (for white-box assertions), and the passive capture.
pub struct Connection {
    /// Established client connection (query `summary()` for observations).
    pub client: ClientConn,
    /// The server's end.
    pub server: ServerConn,
    /// Every byte both directions exchanged.
    pub capture: WireCapture,
}

/// The simulated network.
pub struct SimNet {
    responders: HashMap<Ip, Arc<dyn TlsResponder>>,
    /// Per-IP probability a connection transiently fails.
    flakiness: HashMap<Ip, f64>,
    /// Default flakiness for IPs without an override.
    default_flakiness: f64,
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNet {
    /// Empty network with no baseline flakiness.
    pub fn new() -> Self {
        SimNet {
            responders: HashMap::new(),
            flakiness: HashMap::new(),
            default_flakiness: 0.0,
        }
    }

    /// Set the network-wide default transient-failure probability.
    pub fn set_default_flakiness(&mut self, p: f64) {
        self.default_flakiness = p.clamp(0.0, 1.0);
    }

    /// Override flakiness for one IP.
    pub fn set_flakiness(&mut self, ip: Ip, p: f64) {
        self.flakiness.insert(ip, p.clamp(0.0, 1.0));
    }

    /// Bind a responder to an IP (replaces any previous binding).
    pub fn bind(&mut self, ip: Ip, responder: Arc<dyn TlsResponder>) {
        self.responders.insert(ip, responder);
    }

    /// Remove a binding.
    pub fn unbind(&mut self, ip: Ip) {
        self.responders.remove(&ip);
    }

    /// Number of bound IPs.
    pub fn len(&self) -> usize {
        self.responders.len()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.responders.is_empty()
    }

    /// Establish a TLS connection to `ip` with the given client config.
    ///
    /// `rng` drives both failure injection and the two endpoints' secret
    /// generation; `now` is the virtual time of the whole exchange.
    pub fn connect(
        &self,
        ip: Ip,
        client_config: ClientConfig,
        now: u64,
        rng: &mut HmacDrbg,
    ) -> Result<Connection, ConnectError> {
        CONNECT_ATTEMPTS.inc();
        let responder = match self.responders.get(&ip) {
            Some(r) => r,
            None => {
                count_outcome(&CONNECT_REFUSED, "refused");
                return Err(ConnectError::Refused);
            }
        };
        let p_fail = self
            .flakiness
            .get(&ip)
            .copied()
            .unwrap_or(self.default_flakiness);
        if p_fail > 0.0 && rng.gen_bool(p_fail) {
            count_outcome(&CONNECT_FLAKY_DROP, "flaky-drop");
            return Err(ConnectError::Timeout);
        }
        let server_config = match responder.server_config(&client_config.server_name, now) {
            Some(cfg) => cfg,
            None => {
                count_outcome(&CONNECT_UNKNOWN_SNI, "unknown-sni");
                return Err(ConnectError::UnknownHost);
            }
        };
        let client_rng = rng.fork("client");
        let server_rng = rng.fork("server");
        let mut client = ClientConn::new(client_config, client_rng);
        let mut server = ServerConn::new(server_config, server_rng, now);
        let result = match pump(&mut client, &mut server) {
            Ok(r) => r,
            Err(e) => {
                count_outcome(&CONNECT_TLS_FAIL, "tls-fail");
                return Err(ConnectError::Tls(e));
            }
        };
        if !client.is_established() || !server.is_established() {
            count_outcome(&CONNECT_TLS_FAIL, "tls-fail");
            return Err(ConnectError::Tls(TlsError::NotReady));
        }
        count_outcome(&CONNECT_OK, "ok");
        Ok(Connection {
            client,
            server,
            capture: result.capture,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ts_crypto::rsa::RsaPrivateKey;
    use ts_tls::config::ServerIdentity;
    use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
    use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

    struct FixedResponder {
        config: ServerConfig,
        host: String,
    }

    impl TlsResponder for FixedResponder {
        fn server_config(&self, sni: &str, _now: u64) -> Option<ServerConfig> {
            (sni == self.host).then(|| self.config.clone())
        }
    }

    fn setup() -> (SimNet, Arc<RootStore>) {
        let mut rng = HmacDrbg::new(b"simnet-test");
        let ca_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let ca_name = DistinguishedName::cn("SimNet CA");
        let ca = Certificate::issue(
            &CertificateParams {
                serial: 1,
                subject: ca_name.clone(),
                validity: Validity {
                    not_before: 0,
                    not_after: u32::MAX as u64,
                },
                dns_names: vec![],
                is_ca: true,
            },
            &ca_key.public,
            &ca_name,
            &ca_key,
        );
        let leaf_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let leaf = Certificate::issue(
            &CertificateParams {
                serial: 2,
                subject: DistinguishedName::cn("host.sim"),
                validity: Validity {
                    not_before: 0,
                    not_after: u32::MAX as u64,
                },
                dns_names: vec!["host.sim".into()],
                is_ca: false,
            },
            &leaf_key.public,
            &ca_name,
            &ca_key,
        );
        let mut store = RootStore::new();
        store.add_root(ca);
        let identity = Arc::new(ServerIdentity {
            chain: vec![leaf],
            key: leaf_key,
        });
        let eph = EphemeralCache::new(
            EphemeralPolicy::FreshPerHandshake,
            ts_crypto::dh::DhGroup::Sim256,
            HmacDrbg::new(b"eph"),
        );
        let config = ServerConfig::new(identity, eph);
        let mut net = SimNet::new();
        net.bind(
            Ip(100),
            Arc::new(FixedResponder {
                config,
                host: "host.sim".into(),
            }),
        );
        (net, Arc::new(store))
    }

    #[test]
    fn connect_succeeds_and_captures() {
        let (net, store) = setup();
        let mut rng = HmacDrbg::new(b"conn");
        let cfg = ClientConfig::new(store, "host.sim", 100);
        let conn = net.connect(Ip(100), cfg, 100, &mut rng).unwrap();
        assert!(conn.client.is_established());
        assert!(conn.server.is_established());
        assert!(!conn.capture.client_to_server.is_empty());
        assert!(!conn.capture.server_to_client.is_empty());
    }

    #[test]
    fn unbound_ip_refused() {
        let (net, store) = setup();
        let mut rng = HmacDrbg::new(b"refused");
        let cfg = ClientConfig::new(store, "host.sim", 100);
        assert!(matches!(
            net.connect(Ip(999), cfg, 100, &mut rng),
            Err(ConnectError::Refused)
        ));
    }

    #[test]
    fn unknown_sni_rejected() {
        let (net, store) = setup();
        let mut rng = HmacDrbg::new(b"sni");
        let cfg = ClientConfig::new(store, "other.sim", 100);
        assert!(matches!(
            net.connect(Ip(100), cfg, 100, &mut rng),
            Err(ConnectError::UnknownHost)
        ));
    }

    #[test]
    fn flakiness_injects_timeouts() {
        let (mut net, store) = setup();
        net.set_flakiness(Ip(100), 1.0);
        let mut rng = HmacDrbg::new(b"flaky");
        let cfg = ClientConfig::new(store.clone(), "host.sim", 100);
        assert!(matches!(
            net.connect(Ip(100), cfg, 100, &mut rng),
            Err(ConnectError::Timeout)
        ));
        // Partial flakiness: some succeed, some fail.
        net.set_flakiness(Ip(100), 0.5);
        let mut ok = 0;
        let mut timeout = 0;
        for i in 0..40 {
            let cfg = ClientConfig::new(store.clone(), "host.sim", 100 + i);
            match net.connect(Ip(100), cfg, 100 + i, &mut rng) {
                Ok(_) => ok += 1,
                Err(ConnectError::Timeout) => timeout += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(ok > 5, "some succeed ({ok})");
        assert!(timeout > 5, "some time out ({timeout})");
    }

    #[test]
    fn unbind_refuses_future_connections() {
        let (mut net, store) = setup();
        net.unbind(Ip(100));
        assert!(net.is_empty());
        let mut rng = HmacDrbg::new(b"unbind");
        let cfg = ClientConfig::new(store, "host.sim", 100);
        assert!(matches!(
            net.connect(Ip(100), cfg, 100, &mut rng),
            Err(ConnectError::Refused)
        ));
    }

    #[test]
    fn deterministic_replay() {
        // Two identical nets + seeds produce byte-identical captures.
        let run = || {
            let (net, store) = setup();
            let mut rng = HmacDrbg::new(b"replay");
            let cfg = ClientConfig::new(store, "host.sim", 100);
            let conn = net.connect(Ip(100), cfg, 100, &mut rng).unwrap();
            (conn.capture.client_to_server, conn.capture.server_to_client)
        };
        assert_eq!(run(), run());
    }
}
