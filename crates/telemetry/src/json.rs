//! Snapshot (de)serialization through `ts_core::json`.
//!
//! Two forms: the *deterministic* form (no wall-clock data) used by
//! `repro --telemetry-json` — byte-identical across runs at the same seed
//! — and the *full* form carrying wall nanoseconds for perf trajectories.

use ts_core::json::{Json, JsonError};

use crate::registry::{CounterSnapshot, HistogramSnapshot, Snapshot, SpanSnapshot};

fn uints(values: &[u64]) -> Json {
    Json::Array(values.iter().map(|&v| Json::uint(v)).collect())
}

fn parse_uints(v: &Json) -> Result<Vec<u64>, JsonError> {
    v.as_array()?.iter().map(|x| x.as_u64()).collect()
}

impl Snapshot {
    /// Serialize. `include_wall` adds the nondeterministic wall-clock
    /// totals; leave it `false` for byte-identical archives.
    pub fn to_json(&self, include_wall: bool) -> Json {
        let counters = Json::Array(
            self.counters
                .iter()
                .map(|c| {
                    Json::obj(vec![
                        ("name", Json::str(&c.name)),
                        ("value", Json::uint(c.value)),
                    ])
                })
                .collect(),
        );
        let histograms = Json::Array(
            self.histograms
                .iter()
                // Wall-clock histograms are nondeterministic in toto
                // (counts included — they depend on timer resolution), so
                // the deterministic form drops them entirely.
                .filter(|h| include_wall || !h.wall)
                .map(|h| {
                    let mut pairs = vec![
                        ("name", Json::str(&h.name)),
                        ("bounds", uints(&h.bounds)),
                        ("buckets", uints(&h.buckets)),
                        ("count", Json::uint(h.count)),
                        ("sum", Json::uint(h.sum)),
                    ];
                    if h.wall {
                        pairs.push(("wall", Json::uint(1)));
                    }
                    Json::obj(pairs)
                })
                .collect(),
        );
        let spans = Json::Array(
            self.spans
                .iter()
                .map(|s| {
                    let mut pairs = vec![
                        ("name", Json::str(&s.name)),
                        ("count", Json::uint(s.count)),
                        ("virtual_secs", Json::uint(s.virtual_secs)),
                    ];
                    if include_wall {
                        pairs.push(("wall_nanos", Json::uint(s.wall_nanos)));
                    }
                    Json::obj(pairs)
                })
                .collect(),
        );
        Json::obj(vec![
            ("counters", counters),
            ("histograms", histograms),
            ("spans", spans),
        ])
    }

    /// Parse a snapshot back (wall totals default to 0 when absent, as in
    /// the deterministic form).
    pub fn from_json(v: &Json) -> Result<Snapshot, JsonError> {
        let mut snap = Snapshot::default();
        for c in v.field("counters")?.as_array()? {
            snap.counters.push(CounterSnapshot {
                name: c.field("name")?.as_str()?.to_string(),
                value: c.field("value")?.as_u64()?,
            });
        }
        for h in v.field("histograms")?.as_array()? {
            snap.histograms.push(HistogramSnapshot {
                name: h.field("name")?.as_str()?.to_string(),
                bounds: parse_uints(h.field("bounds")?)?,
                buckets: parse_uints(h.field("buckets")?)?,
                count: h.field("count")?.as_u64()?,
                sum: h.field("sum")?.as_u64()?,
                wall: h.get("wall").is_some(),
            });
        }
        for s in v.field("spans")?.as_array()? {
            snap.spans.push(SpanSnapshot {
                name: s.field("name")?.as_str()?.to_string(),
                count: s.field("count")?.as_u64()?,
                virtual_secs: s.field("virtual_secs")?.as_u64()?,
                wall_nanos: match s.get("wall_nanos") {
                    Some(w) => w.as_u64()?,
                    None => 0,
                },
            });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot {
                name: "a.ok".into(),
                value: 7,
            }],
            histograms: vec![HistogramSnapshot {
                name: "a.delays".into(),
                bounds: vec![1, 300],
                buckets: vec![2, 1, 0],
                count: 3,
                sum: 302,
                wall: false,
            }],
            spans: vec![SpanSnapshot {
                name: "a.scan".into(),
                count: 1,
                virtual_secs: 3_600,
                wall_nanos: 123_456,
            }],
        }
    }

    #[test]
    fn full_form_round_trips() {
        let snap = sample();
        let text = snap.to_json(true).to_json_string();
        let back = Snapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn deterministic_form_drops_wall_histograms() {
        let mut snap = sample();
        snap.histograms.push(HistogramSnapshot {
            name: "a.latency_us".into(),
            bounds: vec![100, 1_000],
            buckets: vec![1, 1, 0],
            count: 2,
            sum: 600,
            wall: true,
        });
        let det = snap.to_json(false).to_json_string();
        assert!(!det.contains("a.latency_us"));
        // The full form keeps it, flagged, and round-trips the flag.
        let full = snap.to_json(true).to_json_string();
        assert!(full.contains("a.latency_us"));
        let back = Snapshot::from_json(&Json::parse(&full).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn deterministic_form_omits_wall() {
        let snap = sample();
        let text = snap.to_json(false).to_json_string();
        assert!(!text.contains("wall_nanos"));
        let back = Snapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.spans[0].wall_nanos, 0);
        assert_eq!(back.spans[0].virtual_secs, 3_600);
        assert_eq!(back.counters, snap.counters);
    }
}
