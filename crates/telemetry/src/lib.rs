//! # ts-telemetry — scan observability for the whole workspace
//!
//! The paper's credibility rests on throughput numbers it can only assert
//! ("33.6M successful handshakes", per-day success rates); this crate is
//! how the reproduction *measures* instead of asserting. It provides:
//!
//! * [`Counter`] — static-named monotonic counters, sharded across a fixed
//!   number of relaxed atomic cells so `parallel_map` workers never
//!   contend on one cache line; reads merge the shards.
//! * [`Histogram`] — fixed-bucket histograms with the same sharding.
//! * [`SpanStat`] — span timers recording *both* wall-clock nanoseconds
//!   and simnet virtual-clock seconds. Virtual durations are deterministic
//!   for a fixed seed; wall durations are not, and are therefore excluded
//!   from the deterministic snapshot serialization.
//! * [`Snapshot`] — a point-in-time merge of every registered metric,
//!   sorted by name, serializable through `ts_core::json`.
//! * [`TelemetrySink`] — an optional per-connection event stream. The
//!   default is no sink at all: with nothing installed, the entire event
//!   path is one relaxed atomic load.
//!
//! ## The no-secret-bytes rule
//!
//! Telemetry values are *public by construction*: counter/histogram values
//! are `u64` tallies, span durations are times, and [`Event`] variants
//! carry only `Copy` scalars and `&'static str` labels — never byte
//! buffers, session IDs, tickets, or key material. `ts-lint` enforces this
//! shape: a secret-tainted expression reaching a telemetry sink method
//! (`inc`/`add`-free by design — the sinks are `observe`, `emit`,
//! `record`) fails the workspace lint.
//!
//! ## Determinism
//!
//! Counters and histograms are commutative sums, so their totals are
//! identical no matter how work is chunked across workers — the property
//! `tests/telemetry_determinism.rs` (workspace root) locks in. Metrics
//! self-register into a global registry on first touch; an untouched
//! metric does not appear in snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod registry;
mod sink;
mod span;

pub use metrics::{Counter, Histogram, SHARDS};
pub use registry::{snapshot, CounterSnapshot, HistogramSnapshot, Snapshot, SpanSnapshot};
pub use sink::{clear_sink, emit, set_sink, Event, NoopSink, TelemetrySink};
pub use span::{SpanGuard, SpanStat};
