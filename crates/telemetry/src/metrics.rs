//! Sharded counters and fixed-bucket histograms.
//!
//! Both metric kinds keep one atomic cell (or cell row) per *shard*;
//! threads are assigned shards round-robin, so `parallel_map` workers
//! rarely touch the same cache line. All writes are `Relaxed` — the
//! values are tallies, not synchronization — and reads merge the shards.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::registry::{self, MetricRef};

/// Number of write shards per metric. Small enough that merging is cheap,
/// large enough that a typical worker pool spreads out.
pub const SHARDS: usize = 8;

/// Cache-line-sized counter cell so neighbouring shards don't false-share.
#[repr(align(64))]
struct PaddedCell(AtomicU64);

impl PaddedCell {
    const fn zero() -> Self {
        PaddedCell(AtomicU64::new(0))
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The shard this thread writes to (assigned round-robin on first use).
fn shard_index() -> usize {
    MY_SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(idx);
        }
        idx
    })
}

/// A static-named monotonic counter.
///
/// Declare as a `static` and bump with [`Counter::inc`] / [`Counter::add`]:
///
/// ```
/// use ts_telemetry::Counter;
/// static CONNECTS: Counter = Counter::new("example.connects");
/// CONNECTS.inc();
/// assert_eq!(CONNECTS.value(), 1);
/// ```
pub struct Counter {
    name: &'static str,
    registered: AtomicBool,
    cells: [PaddedCell; SHARDS],
}

impl Counter {
    /// A new zeroed counter (const, so it can initialize a `static`).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            registered: AtomicBool::new(false),
            cells: [const { PaddedCell::zero() }; SHARDS],
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&'static self, n: u64) {
        self.ensure_registered();
        self.cells[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total, merged across shards.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            registry::register(MetricRef::Counter(self));
        }
    }
}

/// Maximum number of bucket bounds a histogram may declare (the per-shard
/// bucket rows are fixed-size arrays; slot `bounds.len()` is the overflow
/// bucket).
pub(crate) const MAX_BOUNDS: usize = 15;

struct HistShard {
    // buckets[i] counts observations <= bounds[i]; buckets[bounds.len()]
    // is the overflow bucket.
    buckets: [AtomicU64; MAX_BOUNDS + 1],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    const fn zero() -> Self {
        HistShard {
            buckets: [const { AtomicU64::new(0) }; MAX_BOUNDS + 1],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A static-named fixed-bucket histogram over `u64` values.
///
/// Bounds are inclusive upper edges in ascending order; values above the
/// last bound land in an implicit overflow bucket.
///
/// ```
/// use ts_telemetry::Histogram;
/// static DELAYS: Histogram = Histogram::new("example.delays", &[1, 300, 3_600]);
/// DELAYS.observe(250);
/// ```
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    /// Observations are wall-clock-derived: excluded from the
    /// deterministic JSON form (like spans' `wall_nanos`).
    wall: bool,
    registered: AtomicBool,
    cells: [HistShard; SHARDS],
}

impl Histogram {
    /// A new zeroed histogram (const; panics at compile time when used to
    /// initialize a `static` with too many or unsorted bounds).
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        assert!(bounds.len() <= MAX_BOUNDS, "too many histogram bounds");
        let mut i = 1;
        while i < bounds.len() {
            assert!(bounds[i - 1] < bounds[i], "histogram bounds must ascend");
            i += 1;
        }
        Histogram {
            name,
            bounds,
            wall: false,
            registered: AtomicBool::new(false),
            cells: [const { HistShard::zero() }; SHARDS],
        }
    }

    /// A histogram whose observations come from the wall clock (latency
    /// timers). Wall histograms are dropped from the deterministic JSON
    /// form, the same way span `wall_nanos` are — so a load generator can
    /// record real latencies without breaking byte-identical archives.
    pub const fn new_wall(name: &'static str, bounds: &'static [u64]) -> Self {
        let mut h = Histogram::new(name, bounds);
        h.wall = true;
        h
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether observations are wall-clock-derived (nondeterministic).
    pub fn is_wall(&self) -> bool {
        self.wall
    }

    /// The configured bucket bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Record one observation.
    pub fn observe(&'static self, v: u64) {
        self.ensure_registered();
        let shard = &self.cells[shard_index()];
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations, merged across shards.
    pub fn count(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observed values, merged across shards.
    pub fn sum(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.sum.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        (0..=self.bounds.len())
            .map(|i| {
                self.cells
                    .iter()
                    .map(|c| c.buckets[i].load(Ordering::Relaxed))
                    .sum()
            })
            .collect()
    }

    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            registry::register(MetricRef::Histogram(self));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        static C: Counter = Counter::new("test.metrics.counter_threads");
        let before = C.value();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.value() - before, 4_000);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        static H: Histogram = Histogram::new("test.metrics.hist", &[10, 100]);
        H.observe(5);
        H.observe(10);
        H.observe(99);
        H.observe(1_000);
        assert_eq!(H.count(), 4);
        assert_eq!(H.sum(), 5 + 10 + 99 + 1_000);
        assert_eq!(H.bucket_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn counter_add_bulk() {
        static C: Counter = Counter::new("test.metrics.counter_add");
        C.add(41);
        C.inc();
        assert_eq!(C.value(), 42);
    }
}
