//! The global metric registry and point-in-time snapshots.
//!
//! Metrics self-register on first touch, so a snapshot contains exactly
//! the metrics the run exercised. Snapshots sort by name and merge all
//! shards, making them a pure function of the work performed — the basis
//! of the byte-identical `repro --telemetry-json` guarantee.

use std::sync::Mutex;

use crate::metrics::{Counter, Histogram};
use crate::span::SpanStat;

/// A registered metric (statics only, hence `'static`).
pub(crate) enum MetricRef {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
    Span(&'static SpanStat),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

pub(crate) fn register(m: MetricRef) {
    REGISTRY
        .lock()
        .expect("telemetry registry poisoned")
        .push(m);
}

/// One counter's merged state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name.
    pub name: String,
    /// Merged total.
    pub value: u64,
}

/// One histogram's merged state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Inclusive upper bucket edges.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `bounds.len() + 1` entries, last is overflow.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// One span timer's merged state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Registry name.
    pub name: String,
    /// Completed spans.
    pub count: u64,
    /// Total virtual-clock seconds across spans (deterministic).
    pub virtual_secs: u64,
    /// Total wall-clock nanoseconds across spans (NOT deterministic; never
    /// part of the deterministic JSON form).
    pub wall_nanos: u64,
}

/// A point-in-time merge of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All touched counters.
    pub counters: Vec<CounterSnapshot>,
    /// All touched histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// All touched span timers.
    pub spans: Vec<SpanSnapshot>,
}

/// Capture the current state of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = REGISTRY.lock().expect("telemetry registry poisoned");
    let mut snap = Snapshot::default();
    for m in reg.iter() {
        match m {
            MetricRef::Counter(c) => snap.counters.push(CounterSnapshot {
                name: c.name().to_string(),
                value: c.value(),
            }),
            MetricRef::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                name: h.name().to_string(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
            }),
            MetricRef::Span(s) => snap.spans.push(SpanSnapshot {
                name: s.name().to_string(),
                count: s.count(),
                virtual_secs: s.virtual_secs(),
                wall_nanos: s.wall_nanos(),
            }),
        }
    }
    drop(reg);
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap.spans.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

impl Snapshot {
    /// Lookup a counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// The difference `self - base`, dropping metrics that did not move.
    ///
    /// Metrics are global and monotone, so tests isolate their own
    /// contribution by snapshotting before and after and diffing.
    pub fn delta_since(&self, base: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name.clone(),
                value: c.value - base.counter(&c.name),
            })
            .filter(|c| c.value != 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let base_h = base.histograms.iter().find(|b| b.name == h.name);
                let (bc, bs, bb) = match base_h {
                    Some(b) => (b.count, b.sum, b.buckets.as_slice()),
                    None => (0, 0, &[] as &[u64]),
                };
                let buckets: Vec<u64> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v - bb.get(i).copied().unwrap_or(0))
                    .collect();
                (h.count != bc).then(|| HistogramSnapshot {
                    name: h.name.clone(),
                    bounds: h.bounds.clone(),
                    buckets,
                    count: h.count - bc,
                    sum: h.sum - bs,
                })
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let base_s = base.spans.iter().find(|b| b.name == s.name);
                let (bc, bv, bw) = match base_s {
                    Some(b) => (b.count, b.virtual_secs, b.wall_nanos),
                    None => (0, 0, 0),
                };
                (s.count != bc).then(|| SpanSnapshot {
                    name: s.name.clone(),
                    count: s.count - bc,
                    virtual_secs: s.virtual_secs - bv,
                    wall_nanos: s.wall_nanos.saturating_sub(bw),
                })
            })
            .collect();
        Snapshot {
            counters,
            histograms,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Histogram};

    #[test]
    fn snapshot_sees_touched_metrics_sorted() {
        static B: Counter = Counter::new("test.sorted.b");
        static A: Counter = Counter::new("test.sorted.a");
        B.inc();
        A.inc();
        let snap = snapshot();
        let names: Vec<&str> = snap
            .counters
            .iter()
            .map(|c| c.name.as_str())
            .filter(|n| n.starts_with("test.sorted."))
            .collect();
        assert_eq!(names, vec!["test.sorted.a", "test.sorted.b"]);
        assert!(snap.counter("test.sorted.a") >= 1);
        assert_eq!(snap.counter("test.sorted.never-touched"), 0);
    }

    #[test]
    fn delta_drops_unmoved_metrics() {
        static C: Counter = Counter::new("test.registry.delta");
        static H: Histogram = Histogram::new("test.registry.delta_hist", &[10]);
        C.inc(); // ensure registered
        H.observe(3);
        let base = snapshot();
        let quiet = snapshot().delta_since(&base);
        assert!(quiet
            .counters
            .iter()
            .all(|c| c.name != "test.registry.delta"));
        C.add(5);
        H.observe(42);
        let moved = snapshot().delta_since(&base);
        assert_eq!(moved.counter("test.registry.delta"), 5);
        let h = moved
            .histograms
            .iter()
            .find(|h| h.name == "test.registry.delta_hist")
            .expect("histogram delta present");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 42);
        assert_eq!(h.buckets, vec![0, 1]);
    }
}
