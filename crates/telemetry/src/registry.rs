//! The global metric registry and point-in-time snapshots.
//!
//! Metrics self-register on first touch, so a snapshot contains exactly
//! the metrics the run exercised. Snapshots sort by name and merge all
//! shards, making them a pure function of the work performed — the basis
//! of the byte-identical `repro --telemetry-json` guarantee.

use std::sync::Mutex;

use crate::metrics::{Counter, Histogram};
use crate::span::SpanStat;

/// A registered metric (statics only, hence `'static`).
pub(crate) enum MetricRef {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
    Span(&'static SpanStat),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

pub(crate) fn register(m: MetricRef) {
    REGISTRY
        .lock()
        .expect("telemetry registry poisoned")
        .push(m);
}

/// One counter's merged state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name.
    pub name: String,
    /// Merged total.
    pub value: u64,
}

/// One histogram's merged state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Inclusive upper bucket edges.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `bounds.len() + 1` entries, last is overflow.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Observations are wall-clock-derived: excluded from the
    /// deterministic JSON form.
    pub wall: bool,
}

impl HistogramSnapshot {
    /// Estimate the `p`-th percentile (0.0–100.0) by linear interpolation
    /// within the owning bucket, Prometheus-style. The overflow bucket has
    /// no upper edge, so estimates are clamped to the last bound. Returns
    /// `None` when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || self.bounds.is_empty() {
            return None;
        }
        let rank = (p / 100.0).clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = seen + n;
            if (next as f64) >= rank {
                // Rank falls in bucket i: interpolate between its edges.
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: no upper edge to interpolate to.
                    None => return Some(*self.bounds.last().expect("bounds nonempty")),
                };
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let frac = ((rank - seen as f64) / n as f64).clamp(0.0, 1.0);
                return Some(lower + ((upper - lower) as f64 * frac).round() as u64);
            }
            seen = next;
        }
        Some(*self.bounds.last().expect("bounds nonempty"))
    }
}

/// One span timer's merged state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Registry name.
    pub name: String,
    /// Completed spans.
    pub count: u64,
    /// Total virtual-clock seconds across spans (deterministic).
    pub virtual_secs: u64,
    /// Total wall-clock nanoseconds across spans (NOT deterministic; never
    /// part of the deterministic JSON form).
    pub wall_nanos: u64,
}

/// A point-in-time merge of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All touched counters.
    pub counters: Vec<CounterSnapshot>,
    /// All touched histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// All touched span timers.
    pub spans: Vec<SpanSnapshot>,
}

/// Capture the current state of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = REGISTRY.lock().expect("telemetry registry poisoned");
    let mut snap = Snapshot::default();
    for m in reg.iter() {
        match m {
            MetricRef::Counter(c) => snap.counters.push(CounterSnapshot {
                name: c.name().to_string(),
                value: c.value(),
            }),
            MetricRef::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                name: h.name().to_string(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
                wall: h.is_wall(),
            }),
            MetricRef::Span(s) => snap.spans.push(SpanSnapshot {
                name: s.name().to_string(),
                count: s.count(),
                virtual_secs: s.virtual_secs(),
                wall_nanos: s.wall_nanos(),
            }),
        }
    }
    drop(reg);
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap.spans.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

impl Snapshot {
    /// Lookup a counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// The difference `self - base`, dropping metrics that did not move.
    ///
    /// Metrics are global and monotone, so tests isolate their own
    /// contribution by snapshotting before and after and diffing.
    pub fn delta_since(&self, base: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name.clone(),
                value: c.value - base.counter(&c.name),
            })
            .filter(|c| c.value != 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let base_h = base.histograms.iter().find(|b| b.name == h.name);
                let (bc, bs, bb) = match base_h {
                    Some(b) => (b.count, b.sum, b.buckets.as_slice()),
                    None => (0, 0, &[] as &[u64]),
                };
                let buckets: Vec<u64> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v - bb.get(i).copied().unwrap_or(0))
                    .collect();
                (h.count != bc).then(|| HistogramSnapshot {
                    name: h.name.clone(),
                    bounds: h.bounds.clone(),
                    buckets,
                    count: h.count - bc,
                    sum: h.sum - bs,
                    wall: h.wall,
                })
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let base_s = base.spans.iter().find(|b| b.name == s.name);
                let (bc, bv, bw) = match base_s {
                    Some(b) => (b.count, b.virtual_secs, b.wall_nanos),
                    None => (0, 0, 0),
                };
                (s.count != bc).then(|| SpanSnapshot {
                    name: s.name.clone(),
                    count: s.count - bc,
                    virtual_secs: s.virtual_secs - bv,
                    wall_nanos: s.wall_nanos.saturating_sub(bw),
                })
            })
            .collect();
        Snapshot {
            counters,
            histograms,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Histogram};

    #[test]
    fn snapshot_sees_touched_metrics_sorted() {
        static B: Counter = Counter::new("test.sorted.b");
        static A: Counter = Counter::new("test.sorted.a");
        B.inc();
        A.inc();
        let snap = snapshot();
        let names: Vec<&str> = snap
            .counters
            .iter()
            .map(|c| c.name.as_str())
            .filter(|n| n.starts_with("test.sorted."))
            .collect();
        assert_eq!(names, vec!["test.sorted.a", "test.sorted.b"]);
        assert!(snap.counter("test.sorted.a") >= 1);
        assert_eq!(snap.counter("test.sorted.never-touched"), 0);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let h = HistogramSnapshot {
            name: "t".into(),
            bounds: vec![10, 100, 1_000],
            // 10 obs <=10, 80 in (10,100], 10 in (100,1000], 0 overflow.
            buckets: vec![10, 80, 10, 0],
            count: 100,
            sum: 0,
            wall: false,
        };
        // p50: rank 50 → 40th of 80 obs in (10,100] → 10 + 90*(40/80) = 55.
        assert_eq!(h.percentile(50.0), Some(55));
        // p99: rank 99 → 9th of 10 obs in (100,1000] → 100 + 900*0.9 = 910.
        assert_eq!(h.percentile(99.0), Some(910));
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(1_000));
        let empty = HistogramSnapshot {
            name: "e".into(),
            bounds: vec![10],
            buckets: vec![0, 0],
            count: 0,
            sum: 0,
            wall: false,
        };
        assert_eq!(empty.percentile(50.0), None);
        // Overflow-heavy data clamps to the last bound.
        let over = HistogramSnapshot {
            name: "o".into(),
            bounds: vec![10],
            buckets: vec![0, 5],
            count: 5,
            sum: 0,
            wall: false,
        };
        assert_eq!(over.percentile(99.0), Some(10));
    }

    #[test]
    fn wall_histograms_are_flagged_in_snapshots() {
        static W: Histogram = Histogram::new_wall("test.registry.wallhist", &[10]);
        W.observe(3);
        let snap = snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.registry.wallhist")
            .expect("registered");
        assert!(h.wall);
    }

    #[test]
    fn delta_drops_unmoved_metrics() {
        static C: Counter = Counter::new("test.registry.delta");
        static H: Histogram = Histogram::new("test.registry.delta_hist", &[10]);
        C.inc(); // ensure registered
        H.observe(3);
        let base = snapshot();
        let quiet = snapshot().delta_since(&base);
        assert!(quiet
            .counters
            .iter()
            .all(|c| c.name != "test.registry.delta"));
        C.add(5);
        H.observe(42);
        let moved = snapshot().delta_since(&base);
        assert_eq!(moved.counter("test.registry.delta"), 5);
        let h = moved
            .histograms
            .iter()
            .find(|h| h.name == "test.registry.delta_hist")
            .expect("histogram delta present");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 42);
        assert_eq!(h.buckets, vec![0, 1]);
    }
}
