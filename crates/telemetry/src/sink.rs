//! The per-connection event stream.
//!
//! Counters answer "how many"; the sink answers "what happened, in
//! order". Nothing is installed by default, and the disabled path is a
//! single relaxed atomic load, so instrumented code pays nothing unless a
//! consumer opts in (the Sy et al. style resumption-tracking studies in
//! PAPERS.md are exactly such consumers).
//!
//! Events carry only `Copy` scalars and `&'static str` labels — the
//! no-secret-bytes rule. Session IDs, tickets, and key material never
//! enter an [`Event`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// One observable moment in the scan pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// `SimNet::connect` resolved to an outcome
    /// (`ok` / `refused` / `flaky-drop` / `unknown-sni` / `tls-fail`).
    ConnectAttempt {
        /// Outcome label.
        outcome: &'static str,
    },
    /// A DNS A-record query resolved (or not).
    DnsLookup {
        /// Did the zone know the name?
        hit: bool,
    },
    /// The server accepted a resumption offer.
    ResumptionHit {
        /// `"ticket"` or `"session-id"`.
        kind: &'static str,
    },
    /// The server declined a resumption offer and fell back to a full
    /// handshake.
    ResumptionMiss {
        /// `"ticket"` or `"session-id"`.
        kind: &'static str,
    },
    /// The server issued a NewSessionTicket.
    TicketIssued {
        /// True when issued during an (already resumed) handshake.
        reissue: bool,
        /// The advertised lifetime hint (cleartext on the wire).
        lifetime_hint: u32,
    },
    /// A STEK manager rotated to a fresh key.
    StekRotation {
        /// Virtual time of the rotation.
        now: u64,
    },
    /// The server sent a fatal alert.
    AlertSent {
        /// TLS alert description code (cleartext on the wire).
        code: u8,
    },
    /// One scanner grab concluded.
    GrabOutcome {
        /// `"ok"` or the `GrabFailure` class label.
        class: &'static str,
        /// Connection attempts spent (1 + retries used).
        attempts: u32,
    },
    /// One campaign day finished scanning.
    CampaignDay {
        /// The day index.
        day: u64,
    },
}

/// A consumer of [`Event`]s. Implementations must be cheap and
/// thread-safe: events fire from inside `parallel_map` workers.
pub trait TelemetrySink: Send + Sync {
    /// Observe one event. The default is a no-op, so implementations can
    /// subscribe to just the variants they care about.
    fn record(&self, event: Event) {
        let _ = event;
    }
}

/// The do-nothing sink (what you get semantically when none is installed).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn TelemetrySink>>> = RwLock::new(None);

/// Deliver an event to the installed sink, if any.
#[inline]
pub fn emit(event: Event) {
    if SINK_ACTIVE.load(Ordering::Relaxed) {
        if let Ok(guard) = SINK.read() {
            if let Some(sink) = guard.as_ref() {
                sink.record(event);
            }
        }
    }
}

/// Install a global sink (replaces any previous one).
pub fn set_sink(sink: Arc<dyn TelemetrySink>) {
    *SINK.write().expect("telemetry sink lock") = Some(sink);
    SINK_ACTIVE.store(true, Ordering::SeqCst);
}

/// Remove the installed sink, restoring the free disabled path.
pub fn clear_sink() {
    SINK_ACTIVE.store(false, Ordering::SeqCst);
    *SINK.write().expect("telemetry sink lock") = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Recorder(Mutex<Vec<Event>>);

    impl TelemetrySink for Recorder {
        fn record(&self, event: Event) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn events_reach_installed_sink_and_stop_after_clear() {
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        emit(Event::DnsLookup { hit: true }); // no sink: dropped
        set_sink(rec.clone());
        emit(Event::ConnectAttempt { outcome: "ok" });
        emit(Event::StekRotation { now: 86_400 });
        clear_sink();
        emit(Event::DnsLookup { hit: false }); // dropped again
        let seen = rec.0.lock().unwrap().clone();
        assert_eq!(
            seen,
            vec![
                Event::ConnectAttempt { outcome: "ok" },
                Event::StekRotation { now: 86_400 },
            ]
        );
    }

    #[test]
    fn default_trait_method_is_noop() {
        // NoopSink relies entirely on the default method body.
        NoopSink.record(Event::CampaignDay { day: 1 });
    }
}
