//! Span timers: wall-clock *and* virtual-clock durations.
//!
//! The simulation runs on a virtual clock (`u64` seconds), so an
//! experiment has two durations: how long the simulated world took
//! (deterministic — part of snapshots' comparable payload) and how long
//! the host machine took (useful, but excluded from deterministic
//! serialization).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::registry::{self, MetricRef};

/// A static-named span timer.
///
/// ```
/// use ts_telemetry::SpanStat;
/// static SCAN: SpanStat = SpanStat::new("example.scan");
/// let span = SCAN.start(1_000); // virtual start time
/// // ... do the work ...
/// span.finish(4_600); // virtual end time: records 3600 virtual seconds
/// ```
pub struct SpanStat {
    name: &'static str,
    registered: AtomicBool,
    count: AtomicU64,
    virtual_secs: AtomicU64,
    wall_nanos: AtomicU64,
}

impl SpanStat {
    /// A new zeroed span timer (const, for `static` initializers).
    pub const fn new(name: &'static str) -> Self {
        SpanStat {
            name,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            virtual_secs: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
        }
    }

    /// The timer's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Begin a span at virtual time `virtual_now`.
    pub fn start(&'static self, virtual_now: u64) -> SpanGuard {
        SpanGuard {
            stat: self,
            wall_start: Instant::now(),
            virtual_start: virtual_now,
            finished: false,
        }
    }

    /// Record one completed span directly.
    pub fn record(&'static self, virtual_elapsed: u64, wall_nanos: u64) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            registry::register(MetricRef::Span(self));
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.virtual_secs
            .fetch_add(virtual_elapsed, Ordering::Relaxed);
        self.wall_nanos.fetch_add(wall_nanos, Ordering::Relaxed);
    }

    /// Completed span count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total virtual seconds across completed spans.
    pub fn virtual_secs(&self) -> u64 {
        self.virtual_secs.load(Ordering::Relaxed)
    }

    /// Total wall nanoseconds across completed spans.
    pub fn wall_nanos(&self) -> u64 {
        self.wall_nanos.load(Ordering::Relaxed)
    }
}

/// An in-flight span. [`SpanGuard::finish`] records both clocks; dropping
/// without finishing records wall time with zero virtual progress (the
/// span ended where it started, e.g. on an early return).
pub struct SpanGuard {
    stat: &'static SpanStat,
    wall_start: Instant,
    virtual_start: u64,
    finished: bool,
}

impl SpanGuard {
    /// End the span at virtual time `virtual_now`.
    pub fn finish(mut self, virtual_now: u64) {
        self.finished = true;
        self.stat.record(
            virtual_now.saturating_sub(self.virtual_start),
            self.wall_start.elapsed().as_nanos() as u64,
        );
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            self.stat
                .record(0, self.wall_start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_virtual_elapsed() {
        static S: SpanStat = SpanStat::new("test.span.finish");
        let g = S.start(100);
        g.finish(4_100);
        assert_eq!(S.count(), 1);
        assert_eq!(S.virtual_secs(), 4_000);
    }

    #[test]
    fn drop_without_finish_still_counts() {
        static S: SpanStat = SpanStat::new("test.span.drop");
        {
            let _g = S.start(50);
        }
        assert_eq!(S.count(), 1);
        assert_eq!(S.virtual_secs(), 0);
    }
}
