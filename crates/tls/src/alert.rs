//! TLS alert protocol (RFC 5246 §7.2) — the subset the stack emits.

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertLevel {
    /// Connection may continue.
    Warning,
    /// Connection must terminate.
    Fatal,
}

impl AlertLevel {
    /// Encode to the wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            AlertLevel::Warning => 1,
            AlertLevel::Fatal => 2,
        }
    }

    /// Decode from the wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(AlertLevel::Warning),
            2 => Some(AlertLevel::Fatal),
            _ => None,
        }
    }
}

/// Alert descriptions the stack uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertDescription {
    /// close_notify(0)
    CloseNotify,
    /// unexpected_message(10)
    UnexpectedMessage,
    /// bad_record_mac(20)
    BadRecordMac,
    /// handshake_failure(40)
    HandshakeFailure,
    /// bad_certificate(42)
    BadCertificate,
    /// certificate_expired(45)
    CertificateExpired,
    /// unknown_ca(48)
    UnknownCa,
    /// decode_error(50)
    DecodeError,
    /// decrypt_error(51)
    DecryptError,
    /// internal_error(80)
    InternalError,
    /// Anything else.
    Other(u8),
}

impl AlertDescription {
    /// Encode to the wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            AlertDescription::CloseNotify => 0,
            AlertDescription::UnexpectedMessage => 10,
            AlertDescription::BadRecordMac => 20,
            AlertDescription::HandshakeFailure => 40,
            AlertDescription::BadCertificate => 42,
            AlertDescription::CertificateExpired => 45,
            AlertDescription::UnknownCa => 48,
            AlertDescription::DecodeError => 50,
            AlertDescription::DecryptError => 51,
            AlertDescription::InternalError => 80,
            AlertDescription::Other(b) => b,
        }
    }

    /// Decode from the wire byte.
    pub fn from_byte(b: u8) -> Self {
        match b {
            0 => AlertDescription::CloseNotify,
            10 => AlertDescription::UnexpectedMessage,
            20 => AlertDescription::BadRecordMac,
            40 => AlertDescription::HandshakeFailure,
            42 => AlertDescription::BadCertificate,
            45 => AlertDescription::CertificateExpired,
            48 => AlertDescription::UnknownCa,
            50 => AlertDescription::DecodeError,
            51 => AlertDescription::DecryptError,
            80 => AlertDescription::InternalError,
            other => AlertDescription::Other(other),
        }
    }
}

/// A complete alert message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// Severity.
    pub level: AlertLevel,
    /// Description.
    pub description: AlertDescription,
}

impl Alert {
    /// A fatal alert.
    pub fn fatal(description: AlertDescription) -> Self {
        Alert {
            level: AlertLevel::Fatal,
            description,
        }
    }

    /// The close_notify warning.
    pub fn close_notify() -> Self {
        Alert {
            level: AlertLevel::Warning,
            description: AlertDescription::CloseNotify,
        }
    }

    /// Encode to two bytes.
    pub fn encode(&self) -> [u8; 2] {
        [self.level.to_byte(), self.description.to_byte()]
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Option<Alert> {
        if payload.len() != 2 {
            return None;
        }
        Some(Alert {
            level: AlertLevel::from_byte(payload[0])?,
            description: AlertDescription::from_byte(payload[1]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_known_alerts() {
        for desc in [
            AlertDescription::CloseNotify,
            AlertDescription::BadRecordMac,
            AlertDescription::HandshakeFailure,
            AlertDescription::UnknownCa,
            AlertDescription::Other(99),
        ] {
            let a = Alert::fatal(desc);
            let enc = a.encode();
            assert_eq!(Alert::decode(&enc), Some(a));
        }
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(Alert::decode(&[]), None);
        assert_eq!(Alert::decode(&[1]), None);
        assert_eq!(Alert::decode(&[3, 0]), None, "invalid level");
        assert_eq!(Alert::decode(&[1, 2, 3]), None, "too long");
    }

    #[test]
    fn unknown_description_preserved() {
        let a = Alert::decode(&[2, 200]).unwrap();
        assert_eq!(a.description, AlertDescription::Other(200));
        assert_eq!(a.description.to_byte(), 200);
    }
}
