//! Server-side session-ID caches (RFC 5246 resumption).
//!
//! The cache maps session IDs to [`SessionState`] with a configurable
//! lifetime — the knob whose defaults (Apache/Nginx 5 min, IIS 10 h,
//! Google >24 h) produce the discrete steps in the paper's Figure 1.
//!
//! A [`SharedSessionCache`] can be handed to many servers; that is exactly
//! the SSL-terminator behaviour that creates the paper's §5.1 session-cache
//! "service groups" (CloudFlare's 30,163-domain cache being the largest).

use crate::session::SessionState;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A server-side session cache with TTL and capacity bounds.
///
/// Declared `lifetime(process)`: the cache outlives every connection whose
/// master secret it stores — the paper's session-ID shortcut. The
/// violations this declaration surfaces are waived under `[[lifetime]]`
/// with the measured retention windows as the reasons.
// ctlint: lifetime(process)
pub struct SessionCache {
    // Ordered: eviction breaks stored_at ties by scan order and
    // `dump_secrets` feeds the §6.2 attacker analysis, so both must be
    // independent of the hash seed.
    entries: BTreeMap<Vec<u8>, CacheEntry>,
    lifetime_secs: u64,
    capacity: usize,
}

struct CacheEntry {
    state: SessionState,
    stored_at: u64,
}

impl SessionCache {
    /// Create a cache holding entries for `lifetime_secs`, at most
    /// `capacity` at a time.
    pub fn new(lifetime_secs: u64, capacity: usize) -> Self {
        SessionCache {
            entries: BTreeMap::new(),
            lifetime_secs,
            capacity,
        }
    }

    /// The configured lifetime.
    pub fn lifetime_secs(&self) -> u64 {
        self.lifetime_secs
    }

    /// Store a session under `session_id` at virtual time `now`.
    pub fn insert(&mut self, session_id: Vec<u8>, state: SessionState, now: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&session_id) {
            // Evict the oldest entry — a simple approximation of the LRU
            // behaviour real caches show under pressure.
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stored_at)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            session_id,
            CacheEntry {
                state,
                stored_at: now,
            },
        );
    }

    /// Look up a session; returns it only if still within lifetime.
    pub fn lookup(&self, session_id: &[u8], now: u64) -> Option<SessionState> {
        let entry = self.entries.get(session_id)?;
        if now.saturating_sub(entry.stored_at) <= self.lifetime_secs {
            Some(entry.state.clone())
        } else {
            None
        }
    }

    /// Drop expired entries (servers do this opportunistically).
    pub fn sweep(&mut self, now: u64) {
        let lifetime = self.lifetime_secs;
        self.entries
            .retain(|_, e| now.saturating_sub(e.stored_at) <= lifetime);
    }

    /// Number of live + expired entries currently held.
    ///
    /// Expired-but-unswept entries matter to the attack model: their
    /// secrets are still in memory even though resumption is refused.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Attacker's view (§6.2): every master secret currently in memory,
    /// expired or not.
    pub fn dump_secrets(&self) -> Vec<(Vec<u8>, SessionState)> {
        self.entries
            .iter()
            .map(|(id, e)| (id.clone(), e.state.clone()))
            .collect()
    }

    /// Securely erase everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A session cache shareable across servers (an SSL terminator's cache).
#[derive(Clone)]
pub struct SharedSessionCache(Arc<Mutex<SessionCache>>);

impl SharedSessionCache {
    /// Wrap a new cache.
    pub fn new(lifetime_secs: u64, capacity: usize) -> Self {
        SharedSessionCache(Arc::new(Mutex::new(SessionCache::new(
            lifetime_secs,
            capacity,
        ))))
    }

    /// Insert (see [`SessionCache::insert`]).
    pub fn insert(&self, session_id: Vec<u8>, state: SessionState, now: u64) {
        self.0.lock().insert(session_id, state, now);
    }

    /// Lookup (see [`SessionCache::lookup`]).
    pub fn lookup(&self, session_id: &[u8], now: u64) -> Option<SessionState> {
        self.0.lock().lookup(session_id, now)
    }

    /// Configured lifetime.
    pub fn lifetime_secs(&self) -> u64 {
        self.0.lock().lifetime_secs()
    }

    /// Sweep expired entries.
    pub fn sweep(&self, now: u64) {
        self.0.lock().sweep(now);
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }

    /// Attacker dump (§6.2).
    pub fn dump_secrets(&self) -> Vec<(Vec<u8>, SessionState)> {
        self.0.lock().dump_secrets()
    }

    /// Secure erase.
    pub fn clear(&self) {
        self.0.lock().clear();
    }

    /// Two handles to the same underlying cache?
    pub fn same_cache(&self, other: &SharedSessionCache) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::CipherSuite;

    fn state(tag: u8) -> SessionState {
        SessionState {
            master_secret: [tag; 48],
            cipher_suite: CipherSuite::EcdheRsaAes128CbcSha256,
            established_at: 0,
            server_name: "s.sim".into(),
        }
    }

    #[test]
    fn insert_lookup_within_lifetime() {
        let mut c = SessionCache::new(300, 100);
        c.insert(vec![1], state(1), 1000);
        assert_eq!(c.lookup(&[1], 1000), Some(state(1)));
        assert_eq!(c.lookup(&[1], 1300), Some(state(1)), "at exactly lifetime");
        assert_eq!(c.lookup(&[1], 1301), None, "past lifetime");
        assert_eq!(c.lookup(&[2], 1000), None, "unknown id");
    }

    #[test]
    fn expired_entries_remain_until_sweep() {
        let mut c = SessionCache::new(300, 100);
        c.insert(vec![1], state(1), 0);
        assert_eq!(c.lookup(&[1], 1000), None);
        // Secret still recoverable by an attacker until swept.
        assert_eq!(c.len(), 1);
        assert_eq!(c.dump_secrets().len(), 1);
        c.sweep(1000);
        assert_eq!(c.len(), 0);
        assert!(c.dump_secrets().is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut c = SessionCache::new(1000, 2);
        c.insert(vec![1], state(1), 10);
        c.insert(vec![2], state(2), 20);
        c.insert(vec![3], state(3), 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&[1], 30), None, "oldest evicted");
        assert!(c.lookup(&[2], 30).is_some());
        assert!(c.lookup(&[3], 30).is_some());
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = SessionCache::new(300, 0);
        c.insert(vec![1], state(1), 0);
        assert!(c.is_empty());
        assert_eq!(c.lookup(&[1], 0), None);
    }

    #[test]
    fn reinsert_same_id_updates() {
        let mut c = SessionCache::new(300, 10);
        c.insert(vec![1], state(1), 0);
        c.insert(vec![1], state(2), 100);
        assert_eq!(c.lookup(&[1], 350), Some(state(2)), "refreshed timestamp");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shared_cache_is_shared() {
        let a = SharedSessionCache::new(300, 10);
        let b = a.clone();
        a.insert(vec![7], state(7), 0);
        assert_eq!(b.lookup(&[7], 10), Some(state(7)));
        assert!(a.same_cache(&b));
        let c = SharedSessionCache::new(300, 10);
        assert!(!a.same_cache(&c));
        assert_eq!(c.lookup(&[7], 10), None);
    }

    #[test]
    fn clear_erases_secrets() {
        let a = SharedSessionCache::new(300, 10);
        a.insert(vec![7], state(7), 0);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.lookup(&[7], 0), None);
    }
}
