//! Server-side session-ID caches (RFC 5246 resumption).
//!
//! The cache maps session IDs to [`SessionState`] with a configurable
//! lifetime — the knob whose defaults (Apache/Nginx 5 min, IIS 10 h,
//! Google >24 h) produce the discrete steps in the paper's Figure 1.
//!
//! A [`SharedSessionCache`] can be handed to many servers; that is exactly
//! the SSL-terminator behaviour that creates the paper's §5.1 session-cache
//! "service groups" (CloudFlare's 30,163-domain cache being the largest).

use crate::session::SessionState;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A server-side session cache with TTL and capacity bounds.
///
/// Declared `lifetime(process)`: the cache outlives every connection whose
/// master secret it stores — the paper's session-ID shortcut. The
/// violations this declaration surfaces are waived under `[[lifetime]]`
/// with the measured retention windows as the reasons.
// ctlint: lifetime(process)
pub struct SessionCache {
    // Ordered: eviction breaks stored_at ties by scan order and
    // `dump_secrets` feeds the §6.2 attacker analysis, so both must be
    // independent of the hash seed.
    entries: BTreeMap<Vec<u8>, CacheEntry>,
    lifetime_secs: u64,
    capacity: usize,
}

struct CacheEntry {
    state: SessionState,
    stored_at: u64,
}

impl SessionCache {
    /// Create a cache holding entries for `lifetime_secs`, at most
    /// `capacity` at a time.
    pub fn new(lifetime_secs: u64, capacity: usize) -> Self {
        SessionCache {
            entries: BTreeMap::new(),
            lifetime_secs,
            capacity,
        }
    }

    /// The configured lifetime.
    pub fn lifetime_secs(&self) -> u64 {
        self.lifetime_secs
    }

    /// Store a session under `session_id` at virtual time `now`.
    pub fn insert(&mut self, session_id: Vec<u8>, state: SessionState, now: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&session_id) {
            // Evict the oldest entry — a simple approximation of the LRU
            // behaviour real caches show under pressure.
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stored_at)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            session_id,
            CacheEntry {
                state,
                stored_at: now,
            },
        );
    }

    /// Look up a session; returns it only if still within lifetime.
    pub fn lookup(&self, session_id: &[u8], now: u64) -> Option<SessionState> {
        let entry = self.entries.get(session_id)?;
        if now.saturating_sub(entry.stored_at) <= self.lifetime_secs {
            Some(entry.state.clone())
        } else {
            None
        }
    }

    /// Drop expired entries (servers do this opportunistically).
    pub fn sweep(&mut self, now: u64) {
        let lifetime = self.lifetime_secs;
        self.entries
            .retain(|_, e| now.saturating_sub(e.stored_at) <= lifetime);
    }

    /// Number of live + expired entries currently held.
    ///
    /// Expired-but-unswept entries matter to the attack model: their
    /// secrets are still in memory even though resumption is refused.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Attacker's view (§6.2): every master secret currently in memory,
    /// expired or not.
    pub fn dump_secrets(&self) -> Vec<(Vec<u8>, SessionState)> {
        self.entries
            .iter()
            .map(|(id, e)| (id.clone(), e.state.clone()))
            .collect()
    }

    /// Securely erase everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Number of independently locked shards in a [`SharedSessionCache`].
pub const SHARD_COUNT: usize = 8;

/// Deterministic FNV-1a over the SNI — shard selection must be a pure
/// function of the hostname (no ambient hash seed), or the repro's
/// eviction order would vary run to run.
fn shard_for(sni: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sni.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

/// A session cache shareable across servers (an SSL terminator's cache).
///
/// Sharded by SNI hash with a lock per shard: concurrent handshakes for
/// different hostnames never contend. A connection resuming under the
/// hostname that stored the session (the overwhelmingly common case, and
/// the whole loadgen hot path) touches exactly one shard. A home-shard
/// miss falls back to scanning the remaining shards in fixed order — that
/// is what keeps the §5.1 cross-domain probe working: a session stored
/// under `a.example` still resumes when presented under `b.example`, and
/// the extra scan is only paid on misses, where a full handshake (three
/// orders of magnitude more work) was due anyway.
#[derive(Clone)]
pub struct SharedSessionCache {
    shards: Arc<[Mutex<SessionCache>; SHARD_COUNT]>,
    lifetime_secs: u64,
}

impl SharedSessionCache {
    /// Wrap a new cache. `capacity` is the total bound, split evenly
    /// across shards.
    pub fn new(lifetime_secs: u64, capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARD_COUNT);
        SharedSessionCache {
            shards: Arc::new(std::array::from_fn(|_| {
                Mutex::new(SessionCache::new(lifetime_secs, per_shard))
            })),
            lifetime_secs,
        }
    }

    /// Insert under the shard of `sni` (see [`SessionCache::insert`]).
    pub fn insert(&self, sni: &str, session_id: Vec<u8>, state: SessionState, now: u64) {
        self.shards[shard_for(sni)]
            .lock()
            .insert(session_id, state, now);
    }

    /// Lookup: home shard of `sni` first, then the cross-domain fallback
    /// scan (see [`SessionCache::lookup`]).
    pub fn lookup(&self, sni: &str, session_id: &[u8], now: u64) -> Option<SessionState> {
        let home = shard_for(sni);
        if let Some(state) = self.shards[home].lock().lookup(session_id, now) {
            return Some(state);
        }
        for (i, shard) in self.shards.iter().enumerate() {
            if i == home {
                continue;
            }
            if let Some(state) = shard.lock().lookup(session_id, now) {
                return Some(state);
            }
        }
        None
    }

    /// Configured lifetime.
    pub fn lifetime_secs(&self) -> u64 {
        self.lifetime_secs
    }

    /// Sweep expired entries in every shard.
    pub fn sweep(&self, now: u64) {
        for shard in self.shards.iter() {
            shard.lock().sweep(now);
        }
    }

    /// Entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Attacker dump (§6.2), merged across shards and ordered by session
    /// ID so the analysis is independent of shard layout.
    pub fn dump_secrets(&self) -> Vec<(Vec<u8>, SessionState)> {
        let mut out: Vec<(Vec<u8>, SessionState)> = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.lock().dump_secrets());
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Secure erase of every shard.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Two handles to the same underlying cache?
    pub fn same_cache(&self, other: &SharedSessionCache) -> bool {
        Arc::ptr_eq(&self.shards, &other.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::CipherSuite;

    fn state(tag: u8) -> SessionState {
        SessionState {
            master_secret: [tag; 48],
            cipher_suite: CipherSuite::EcdheRsaAes128CbcSha256,
            established_at: 0,
            server_name: "s.sim".into(),
        }
    }

    #[test]
    fn insert_lookup_within_lifetime() {
        let mut c = SessionCache::new(300, 100);
        c.insert(vec![1], state(1), 1000);
        assert_eq!(c.lookup(&[1], 1000), Some(state(1)));
        assert_eq!(c.lookup(&[1], 1300), Some(state(1)), "at exactly lifetime");
        assert_eq!(c.lookup(&[1], 1301), None, "past lifetime");
        assert_eq!(c.lookup(&[2], 1000), None, "unknown id");
    }

    #[test]
    fn expired_entries_remain_until_sweep() {
        let mut c = SessionCache::new(300, 100);
        c.insert(vec![1], state(1), 0);
        assert_eq!(c.lookup(&[1], 1000), None);
        // Secret still recoverable by an attacker until swept.
        assert_eq!(c.len(), 1);
        assert_eq!(c.dump_secrets().len(), 1);
        c.sweep(1000);
        assert_eq!(c.len(), 0);
        assert!(c.dump_secrets().is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut c = SessionCache::new(1000, 2);
        c.insert(vec![1], state(1), 10);
        c.insert(vec![2], state(2), 20);
        c.insert(vec![3], state(3), 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&[1], 30), None, "oldest evicted");
        assert!(c.lookup(&[2], 30).is_some());
        assert!(c.lookup(&[3], 30).is_some());
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = SessionCache::new(300, 0);
        c.insert(vec![1], state(1), 0);
        assert!(c.is_empty());
        assert_eq!(c.lookup(&[1], 0), None);
    }

    #[test]
    fn reinsert_same_id_updates() {
        let mut c = SessionCache::new(300, 10);
        c.insert(vec![1], state(1), 0);
        c.insert(vec![1], state(2), 100);
        assert_eq!(c.lookup(&[1], 350), Some(state(2)), "refreshed timestamp");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shared_cache_is_shared() {
        let a = SharedSessionCache::new(300, 10);
        let b = a.clone();
        a.insert("x.sim", vec![7], state(7), 0);
        assert_eq!(b.lookup("x.sim", &[7], 10), Some(state(7)));
        assert!(a.same_cache(&b));
        let c = SharedSessionCache::new(300, 10);
        assert!(!a.same_cache(&c));
        assert_eq!(c.lookup("x.sim", &[7], 10), None);
    }

    #[test]
    fn clear_erases_secrets() {
        let a = SharedSessionCache::new(300, 10);
        a.insert("x.sim", vec![7], state(7), 0);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.lookup("x.sim", &[7], 0), None);
    }

    #[test]
    fn cross_domain_lookup_falls_back_across_shards() {
        // §5.1: a session stored under one hostname must resume when the
        // same cache is probed under any other hostname, regardless of
        // which shard each hashes to.
        let cache = SharedSessionCache::new(300, 100);
        cache.insert("origin.sim", vec![42], state(1), 0);
        for sni in ["a.sim", "b.sim", "c.sim", "d.sim", "e.sim", "f.sim"] {
            assert_eq!(cache.lookup(sni, &[42], 10), Some(state(1)), "{sni}");
        }
        assert_eq!(cache.lookup("a.sim", &[43], 10), None, "unknown id");
    }

    #[test]
    fn shard_layout_is_deterministic_and_spread() {
        // The shard function is a pure function of the SNI...
        assert_eq!(shard_for("host-0.sim"), shard_for("host-0.sim"));
        // ...and a modest hostname population touches several shards.
        let mut seen = [false; SHARD_COUNT];
        for i in 0..64 {
            seen[shard_for(&format!("host-{i}.sim"))] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() >= SHARD_COUNT / 2);
    }

    #[test]
    fn dump_merges_shards_in_session_id_order() {
        let cache = SharedSessionCache::new(300, 100);
        for i in (0u8..32).rev() {
            cache.insert(&format!("host-{i}.sim"), vec![i], state(i), 0);
        }
        let dump = cache.dump_secrets();
        assert_eq!(dump.len(), 32);
        let ids: Vec<Vec<u8>> = dump.iter().map(|(id, _)| id.clone()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "dump ordered by session id, not shard");
    }

    /// Eight writer threads hammer the sharded cache concurrently; the
    /// final population and every inserted entry must be exactly what a
    /// serial execution would produce, regardless of interleaving.
    #[test]
    fn concurrent_inserts_and_lookups_are_linearizable_totals() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 64;
        // Capacity is split per shard and the SNIs below collide onto a
        // few shards, so size every shard for the full population.
        let cache = SharedSessionCache::new(3_600, THREADS * PER_THREAD * SHARD_COUNT);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Distinct ids per (thread, i); SNIs deliberately
                        // collide across threads to contend on shards.
                        let id = vec![t as u8, i as u8, 0xA5];
                        let sni = format!("host-{}.sim", i % 5);
                        cache.insert(&sni, id.clone(), state(t as u8), 100);
                        // Read own write through the home shard...
                        assert_eq!(
                            cache.lookup(&sni, &id, 100),
                            Some(state(t as u8)),
                            "own write visible"
                        );
                        // ...and through the cross-shard fallback path.
                        assert_eq!(
                            cache.lookup("elsewhere.sim", &id, 100),
                            Some(state(t as u8)),
                            "cross-shard fallback"
                        );
                    }
                });
            }
        });
        assert_eq!(cache.len(), THREADS * PER_THREAD);
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                let id = vec![t as u8, i as u8, 0xA5];
                assert_eq!(
                    cache.lookup(&format!("host-{}.sim", i % 5), &id, 100),
                    Some(state(t as u8))
                );
            }
        }
        assert_eq!(cache.dump_secrets().len(), THREADS * PER_THREAD);
    }
}
