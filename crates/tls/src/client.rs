//! The client-side TLS 1.2 state machine — also the scanner's probe.
//!
//! Beyond a normal client, this connection records everything the study
//! measures: the ServerHello session ID, issued tickets (and their STEK
//! identifiers), the server's key-exchange public value, the certificate
//! chain and its trust verdict, and — because the stack is white-box — the
//! master secret itself.

use crate::alert::{Alert, AlertDescription};
use crate::config::ClientConfig;
use crate::error::TlsError;
use crate::keys::{key_block, master_secret, verify_data, ConnectionKeys, Transcript};
use crate::server::{kex_signed_content, ResumeKind};
use crate::session::SessionState;
use crate::suites::{CipherSuite, KeyExchange};
use crate::wire::extensions::Extension;
use crate::wire::handshake::{
    CertificateMsg, ClientHello, ClientKeyExchange, Finished, HandshakeMessage,
    HandshakeReassembler, NewSessionTicket, ServerHello, ServerKexParams, ServerKeyExchange,
};
use crate::wire::record::{ContentType, RecordLayer};
use ts_crypto::bignum::Ub;
use ts_crypto::dh::{validate_public, DhGroup, DhKeyPair};
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::x25519::X25519KeyPair;
use ts_x509::{Certificate, TrustError};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    AwaitServerHello,
    AwaitServerFlight,
    AwaitServerKexOrDone,
    AwaitCcsAbbrev,
    AwaitFinishedAbbrev,
    AwaitNstOrCcsFull,
    AwaitFinishedFull,
    Established,
    Failed,
}

/// Everything the scanner extracts from one connection.
#[derive(Debug, Clone)]
pub struct HandshakeSummary {
    /// `None` = full handshake; otherwise how resumption happened.
    pub resumed: Option<ResumeKind>,
    /// Negotiated suite.
    pub cipher_suite: CipherSuite,
    /// Session ID from ServerHello (empty if none; cleartext on the wire).
    // ctlint: public
    pub server_session_id: Vec<u8>,
    /// NewSessionTicket received, if any.
    pub new_ticket: Option<NewSessionTicket>,
    /// The server's (EC)DHE public value, if a PFS exchange ran.
    // ctlint: public
    pub server_kex_public: Option<Vec<u8>>,
    /// Raw DER chain the server presented (cleartext on the wire).
    // ctlint: public
    pub chain_der: Vec<Vec<u8>>,
    /// Trust verdict (None when no chain was presented — resumption).
    pub trust: Option<Result<(), TrustError>>,
    /// The session state usable for future resumption offers.
    pub session: SessionState,
}

/// A client-side TLS connection.
pub struct ClientConn {
    config: ClientConfig,
    rng: HmacDrbg,
    records: RecordLayer,
    reasm: HandshakeReassembler,
    transcript: Transcript,
    // Outgoing wire bytes: anything here is already on the network.
    // ctlint: public
    out: Vec<u8>,
    state: State,
    suite: Option<CipherSuite>,
    // Randoms and session IDs travel cleartext in the hellos.
    // ctlint: public
    client_random: [u8; 32],
    // ctlint: public
    server_random: [u8; 32],
    // ctlint: public
    offered_session_id: Vec<u8>,
    offered_ticket_state: Option<SessionState>,
    // ctlint: public
    server_session_id: Vec<u8>,
    master: Option<[u8; 48]>,
    resumed: Option<ResumeKind>,
    new_ticket: Option<NewSessionTicket>,
    // ctlint: public
    server_kex_public: Option<Vec<u8>>,
    // ctlint: public
    chain_der: Vec<Vec<u8>>,
    leaf: Option<Certificate>,
    trust: Option<Result<(), TrustError>>,
    dh_group_hint: DhGroup,
    pending_keys: Option<ConnectionKeys>,
    app_in: Vec<u8>,
}

impl ClientConn {
    /// Create a connection and immediately queue the ClientHello.
    pub fn new(config: ClientConfig, mut rng: HmacDrbg) -> Self {
        let mut client_random = [0u8; 32];
        rng.fill_bytes(&mut client_random);
        let offered_session_id = config
            .resumption
            .session
            .as_ref()
            .map(|(id, _)| id.clone())
            .unwrap_or_default();
        let offered_ticket_state = config.resumption.ticket.as_ref().map(|(_, s)| s.clone());

        let mut extensions = vec![Extension::ServerName(config.server_name.clone())];
        if let Some((ticket, _)) = &config.resumption.ticket {
            extensions.push(Extension::SessionTicket(ticket.clone()));
        } else if config.offer_ticket_support {
            extensions.push(Extension::SessionTicket(Vec::new()));
        }
        extensions.push(Extension::SupportedGroups(vec![29]));

        let ch = HandshakeMessage::ClientHello(ClientHello {
            random: client_random,
            session_id: offered_session_id.clone(),
            cipher_suites: config.suites.iter().map(|s| s.id()).collect(),
            extensions,
        });

        let mut conn = ClientConn {
            config,
            rng,
            records: RecordLayer::new(),
            reasm: HandshakeReassembler::new(),
            transcript: Transcript::new(),
            out: Vec::new(),
            state: State::AwaitServerHello,
            suite: None,
            client_random,
            server_random: [0; 32],
            offered_session_id,
            offered_ticket_state,
            server_session_id: Vec::new(),
            master: None,
            resumed: None,
            new_ticket: None,
            server_kex_public: None,
            chain_der: Vec::new(),
            leaf: None,
            trust: None,
            dh_group_hint: DhGroup::Sim256,
            pending_keys: None,
            app_in: Vec::new(),
        };
        conn.send_handshake(&ch);
        conn
    }

    /// Drain bytes to ship to the server.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// True if the connection failed.
    pub fn is_failed(&self) -> bool {
        self.state == State::Failed
    }

    /// Scanner-facing summary; available once established.
    pub fn summary(&self) -> Result<HandshakeSummary, TlsError> {
        if self.state != State::Established {
            return Err(TlsError::NotReady);
        }
        let suite = self.suite.expect("established");
        Ok(HandshakeSummary {
            resumed: self.resumed,
            cipher_suite: suite,
            server_session_id: self.server_session_id.clone(),
            new_ticket: self.new_ticket.clone(),
            server_kex_public: self.server_kex_public.clone(),
            chain_der: self.chain_der.clone(),
            trust: self.trust.clone(),
            session: SessionState {
                master_secret: self.master.expect("established"),
                cipher_suite: suite,
                established_at: self.resumed_original_time(),
                server_name: self.config.server_name.clone(),
            },
        })
    }

    fn resumed_original_time(&self) -> u64 {
        match self.resumed {
            Some(ResumeKind::SessionId) => self
                .config
                .resumption
                .session
                .as_ref()
                .map(|(_, s)| s.established_at)
                .unwrap_or(self.config.now),
            Some(ResumeKind::Ticket) => self
                .offered_ticket_state
                .as_ref()
                .map(|s| s.established_at)
                .unwrap_or(self.config.now),
            None => self.config.now,
        }
    }

    /// Queue application data (post-handshake).
    pub fn send_app_data(&mut self, data: &[u8]) -> Result<(), TlsError> {
        if self.state != State::Established {
            return Err(TlsError::NotReady);
        }
        self.records
            .write_record(ContentType::ApplicationData, data, &mut self.out);
        Ok(())
    }

    /// Take decrypted application data received so far.
    pub fn take_app_data(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.app_in)
    }

    /// Feed transport bytes from the server.
    pub fn input(&mut self, data: &[u8]) -> Result<(), TlsError> {
        if self.state == State::Failed {
            return Err(TlsError::ConnectionClosed);
        }
        self.records.feed(data);
        loop {
            let record = match self.records.next_record() {
                Ok(Some(r)) => r,
                Ok(None) => return Ok(()),
                Err(e) => return self.fail(e, AlertDescription::DecodeError),
            };
            match record.content_type {
                ContentType::Handshake => {
                    self.reasm.feed(&record.payload);
                    loop {
                        match self.reasm.next(self.suite) {
                            Ok(Some(msg)) => {
                                if let Err(e) = self.handle_handshake(msg) {
                                    let desc = alert_for(&e);
                                    return self.fail(e, desc);
                                }
                            }
                            Ok(None) => break,
                            Err(e) => return self.fail(e, AlertDescription::DecodeError),
                        }
                    }
                }
                ContentType::ChangeCipherSpec => {
                    if record.payload != [1] {
                        return self.fail(
                            TlsError::Decode("bad ChangeCipherSpec"),
                            AlertDescription::DecodeError,
                        );
                    }
                    if let Err(e) = self.on_server_ccs() {
                        let desc = alert_for(&e);
                        return self.fail(e, desc);
                    }
                }
                ContentType::Alert => {
                    if let Some(alert) = Alert::decode(&record.payload) {
                        if alert.description != AlertDescription::CloseNotify {
                            self.state = State::Failed;
                            return Err(TlsError::PeerAlert(alert.description));
                        }
                    }
                    self.state = State::Failed;
                    return Ok(());
                }
                ContentType::ApplicationData => {
                    if self.state != State::Established {
                        return self.fail(
                            TlsError::UnexpectedMessage {
                                expected: "handshake completion",
                                got: "ApplicationData",
                            },
                            AlertDescription::UnexpectedMessage,
                        );
                    }
                    self.app_in.extend_from_slice(&record.payload);
                }
            }
        }
    }

    fn fail(&mut self, err: TlsError, desc: AlertDescription) -> Result<(), TlsError> {
        self.state = State::Failed;
        let alert = Alert::fatal(desc);
        self.records
            .write_record(ContentType::Alert, &alert.encode(), &mut self.out);
        Err(err)
    }

    fn send_handshake(&mut self, msg: &HandshakeMessage) {
        let encoded = msg.encode();
        self.transcript.add(&encoded);
        self.records
            .write_record(ContentType::Handshake, &encoded, &mut self.out);
    }

    fn on_server_ccs(&mut self) -> Result<(), TlsError> {
        match self.state {
            State::AwaitServerFlight | State::AwaitCcsAbbrev => {
                // Abbreviated handshake: server went straight to CCS.
                self.begin_abbreviated_keys()?;
                self.state = State::AwaitFinishedAbbrev;
                Ok(())
            }
            State::AwaitNstOrCcsFull => {
                let keys = self.pending_keys.as_ref().expect("keys derived");
                self.records.set_read_keys(keys.server_write.clone());
                self.state = State::AwaitFinishedFull;
                Ok(())
            }
            _ => Err(TlsError::UnexpectedMessage {
                expected: state_expectation(self.state),
                got: "ChangeCipherSpec",
            }),
        }
    }

    /// Derive abbreviated-handshake keys from the stored session state and
    /// activate the read direction.
    fn begin_abbreviated_keys(&mut self) -> Result<(), TlsError> {
        if self.master.is_none() {
            // Ticket-based resumption: the server signalled acceptance.
            let state = self
                .offered_ticket_state
                .as_ref()
                .ok_or(TlsError::UnexpectedMessage {
                    expected: "Certificate (no resumption offered)",
                    got: "abbreviated handshake",
                })?;
            if state.cipher_suite != self.suite.expect("suite set") {
                return Err(TlsError::Decode("resumed suite mismatch"));
            }
            self.master = Some(state.master_secret);
            self.resumed = Some(ResumeKind::Ticket);
        }
        let master = self.master.expect("set above");
        let suite = self.suite.expect("suite set");
        let keys = key_block(&master, &self.client_random, &self.server_random, suite);
        self.records.set_read_keys(keys.server_write.clone());
        self.pending_keys = Some(keys);
        Ok(())
    }

    fn handle_handshake(&mut self, msg: HandshakeMessage) -> Result<(), TlsError> {
        match (self.state, msg) {
            (State::AwaitServerHello, HandshakeMessage::ServerHello(sh)) => {
                self.transcript
                    .add(&HandshakeMessage::ServerHello(sh.clone()).encode());
                self.on_server_hello(sh)
            }
            (State::AwaitServerFlight, HandshakeMessage::Certificate(c)) => {
                self.transcript
                    .add(&HandshakeMessage::Certificate(c.clone()).encode());
                self.on_certificate(c)
            }
            (
                State::AwaitServerFlight | State::AwaitCcsAbbrev,
                HandshakeMessage::NewSessionTicket(nst),
            ) => {
                // Ticket reissue during abbreviated handshake.
                self.transcript
                    .add(&HandshakeMessage::NewSessionTicket(nst.clone()).encode());
                if self.resumed.is_none() {
                    // NST before CCS signals ticket acceptance.
                    self.resumed = Some(ResumeKind::Ticket);
                    let state =
                        self.offered_ticket_state
                            .as_ref()
                            .ok_or(TlsError::UnexpectedMessage {
                                expected: "Certificate",
                                got: "NewSessionTicket",
                            })?;
                    self.master = Some(state.master_secret);
                }
                self.new_ticket = Some(nst);
                self.state = State::AwaitCcsAbbrev;
                Ok(())
            }
            (State::AwaitServerKexOrDone, HandshakeMessage::ServerKeyExchange(ske)) => {
                self.transcript
                    .add(&HandshakeMessage::ServerKeyExchange(ske.clone()).encode());
                self.on_server_kex(ske)
            }
            (State::AwaitServerKexOrDone, HandshakeMessage::ServerHelloDone) => {
                self.transcript
                    .add(&HandshakeMessage::ServerHelloDone.encode());
                self.on_server_hello_done()
            }
            (State::AwaitNstOrCcsFull, HandshakeMessage::NewSessionTicket(nst)) => {
                self.transcript
                    .add(&HandshakeMessage::NewSessionTicket(nst.clone()).encode());
                self.new_ticket = Some(nst);
                Ok(())
            }
            (
                State::AwaitFinishedFull | State::AwaitFinishedAbbrev,
                HandshakeMessage::Finished(f),
            ) => self.on_server_finished(f),
            (_, other) => Err(TlsError::UnexpectedMessage {
                expected: state_expectation(self.state),
                got: other.name(),
            }),
        }
    }

    fn on_server_hello(&mut self, sh: ServerHello) -> Result<(), TlsError> {
        let suite = CipherSuite::from_id(sh.cipher_suite)
            .ok_or(TlsError::Decode("server chose unknown suite"))?;
        if !self.config.suites.contains(&suite) {
            return Err(TlsError::Decode("server chose unoffered suite"));
        }
        self.suite = Some(suite);
        self.server_random = sh.random;
        self.server_session_id = sh.session_id.clone();

        if !self.offered_session_id.is_empty() && sh.session_id == self.offered_session_id {
            // Session-ID resumption accepted.
            let state = self
                .config
                .resumption
                .session
                .as_ref()
                .map(|(_, s)| s.clone())
                .expect("offered id implies stored state");
            if state.cipher_suite != suite {
                return Err(TlsError::Decode("resumed suite mismatch"));
            }
            self.master = Some(state.master_secret);
            self.resumed = Some(ResumeKind::SessionId);
            self.state = State::AwaitCcsAbbrev;
        } else {
            self.state = State::AwaitServerFlight;
        }
        Ok(())
    }

    fn on_certificate(&mut self, msg: CertificateMsg) -> Result<(), TlsError> {
        self.chain_der = msg.chain.clone();
        let mut parsed = Vec::with_capacity(msg.chain.len());
        for der in &msg.chain {
            parsed.push(
                Certificate::parse(der).map_err(|_| TlsError::Decode("unparseable certificate"))?,
            );
        }
        let verdict =
            self.config
                .root_store
                .validate(&parsed, &self.config.server_name, self.config.now);
        self.leaf = parsed.into_iter().next();
        let failed = verdict.is_err();
        self.trust = Some(verdict.clone());
        if self.config.verify_certs && failed {
            return Err(TlsError::Trust(verdict.expect_err("checked")));
        }
        if self.leaf.is_none() {
            return Err(TlsError::Decode("empty certificate chain"));
        }
        self.state = State::AwaitServerKexOrDone;
        Ok(())
    }

    fn on_server_kex(&mut self, ske: ServerKeyExchange) -> Result<(), TlsError> {
        let suite = self.suite.expect("suite set");
        // Signature check against the leaf key.
        let leaf = self.leaf.as_ref().expect("certificate processed");
        let signed = kex_signed_content(&self.client_random, &self.server_random, &ske.params);
        leaf.public_key
            .verify(&signed, &ske.signature)
            .map_err(TlsError::from)?;
        match (&ske.params, suite.key_exchange()) {
            (ServerKexParams::Dhe { p, .. }, KeyExchange::Dhe) => {
                // Identify the group by its prime (we only accept named
                // groups — freeform parameters would need subgroup checks).
                let prime = Ub::from_bytes_be(p);
                let group = DhGroup::all()
                    .into_iter()
                    .find(|g| *g.prime() == prime)
                    .ok_or(TlsError::Decode("unknown DH group"))?;
                self.dh_group_hint = group;
            }
            (ServerKexParams::Ecdhe { .. }, KeyExchange::Ecdhe) => {}
            _ => return Err(TlsError::Decode("kex params do not match suite")),
        }
        self.server_kex_public = Some(ske.params.public_value().to_vec());
        Ok(())
    }

    fn on_server_hello_done(&mut self) -> Result<(), TlsError> {
        let suite = self.suite.expect("suite set");
        let premaster: Vec<u8>;
        let cke = match suite.key_exchange() {
            KeyExchange::Rsa => {
                let mut pm = vec![0u8; 48];
                self.rng.fill_bytes(&mut pm);
                pm[0] = 3;
                pm[1] = 3;
                let leaf = self.leaf.as_ref().expect("certificate processed");
                let ct = leaf.public_key.encrypt(&pm, &mut self.rng)?;
                premaster = pm;
                ClientKeyExchange::Rsa {
                    encrypted_premaster: ct,
                }
            }
            KeyExchange::Dhe => {
                let server_pub = self
                    .server_kex_public
                    .as_ref()
                    .ok_or(TlsError::Decode("missing ServerKeyExchange"))?;
                let ys = Ub::from_bytes_be(server_pub);
                validate_public(self.dh_group_hint, &ys)?;
                let kp = DhKeyPair::generate(self.dh_group_hint, &mut self.rng);
                premaster = kp.shared_secret(&ys)?;
                ClientKeyExchange::Dhe {
                    yc: kp.public_bytes(),
                }
            }
            KeyExchange::Ecdhe => {
                let server_pub = self
                    .server_kex_public
                    .as_ref()
                    .ok_or(TlsError::Decode("missing ServerKeyExchange"))?;
                let point: [u8; 32] = server_pub
                    .as_slice()
                    .try_into()
                    .map_err(|_| TlsError::Decode("bad server point length"))?;
                let kp = X25519KeyPair::generate(&mut self.rng);
                premaster = kp.shared_secret(&point).to_vec();
                ClientKeyExchange::Ecdhe {
                    point: kp.public.to_vec(),
                }
            }
        };
        self.send_handshake(&HandshakeMessage::ClientKeyExchange(cke));
        let master = master_secret(&premaster, &self.client_random, &self.server_random);
        self.master = Some(master);
        let keys = key_block(&master, &self.client_random, &self.server_random, suite);
        self.records
            .write_record(ContentType::ChangeCipherSpec, &[1], &mut self.out);
        self.records.set_write_keys(keys.client_write.clone());
        let vd = verify_data(&master, &self.transcript.hash(), true);
        self.send_handshake(&HandshakeMessage::Finished(Finished { verify_data: vd }));
        self.pending_keys = Some(keys);
        self.state = State::AwaitNstOrCcsFull;
        Ok(())
    }

    fn on_server_finished(&mut self, f: Finished) -> Result<(), TlsError> {
        let master = self.master.expect("master derived");
        let expected = verify_data(&master, &self.transcript.hash(), false);
        if !ts_crypto::ct::ct_eq(&expected, &f.verify_data) {
            return Err(TlsError::BadFinished);
        }
        self.transcript.add(&HandshakeMessage::Finished(f).encode());
        match self.state {
            State::AwaitFinishedFull => {
                self.state = State::Established;
                Ok(())
            }
            State::AwaitFinishedAbbrev => {
                // Our turn: CCS + client Finished.
                let keys = self.pending_keys.as_ref().expect("keys derived");
                self.records
                    .write_record(ContentType::ChangeCipherSpec, &[1], &mut self.out);
                self.records.set_write_keys(keys.client_write.clone());
                let vd = verify_data(&master, &self.transcript.hash(), true);
                self.send_handshake(&HandshakeMessage::Finished(Finished { verify_data: vd }));
                self.state = State::Established;
                Ok(())
            }
            _ => unreachable!("guarded by caller"),
        }
    }

    /// White-box access: the master secret (attacker/verification use).
    pub fn master_secret(&self) -> Option<[u8; 48]> {
        self.master
    }
}

fn state_expectation(state: State) -> &'static str {
    match state {
        State::AwaitServerHello => "ServerHello",
        State::AwaitServerFlight => "Certificate or abbreviated handshake",
        State::AwaitServerKexOrDone => "ServerKeyExchange or ServerHelloDone",
        State::AwaitCcsAbbrev => "ChangeCipherSpec (abbreviated)",
        State::AwaitFinishedAbbrev => "Finished (abbreviated)",
        State::AwaitNstOrCcsFull => "NewSessionTicket or ChangeCipherSpec",
        State::AwaitFinishedFull => "Finished",
        State::Established => "ApplicationData",
        State::Failed => "nothing (failed)",
    }
}

fn alert_for(err: &TlsError) -> AlertDescription {
    match err {
        TlsError::Trust(TrustError::UnknownRoot) => AlertDescription::UnknownCa,
        TlsError::Trust(TrustError::Expired { .. }) => AlertDescription::CertificateExpired,
        TlsError::Trust(_) => AlertDescription::BadCertificate,
        TlsError::BadFinished | TlsError::Crypto(_) => AlertDescription::DecryptError,
        TlsError::UnexpectedMessage { .. } => AlertDescription::UnexpectedMessage,
        TlsError::NoCommonSuite => AlertDescription::HandshakeFailure,
        _ => AlertDescription::DecodeError,
    }
}
