//! The client-side TLS 1.2 state machine — also the scanner's probe.
//!
//! Beyond a normal client, this connection records everything the study
//! measures: the ServerHello session ID, issued tickets (and their STEK
//! identifiers), the server's key-exchange public value, the certificate
//! chain and its trust verdict, and — because the stack is white-box — the
//! master secret itself.
//!
//! Sans-I/O: [`ClientConn`] derefs to [`ConnectionCommon`] for the byte
//! ports (`read_tls` / `write_tls`) and readiness queries; call
//! [`ClientConn::process_new_packets`] after feeding bytes.

use crate::alert::AlertDescription;
use crate::config::ClientConfig;
use crate::conn::{self, ConnectionCommon, IoState, Side, Status};
use crate::error::TlsError;
use crate::keys::{key_block, master_secret, verify_data};
use crate::server::{kex_signed_content, ResumeKind};
use crate::session::SessionState;
use crate::suites::{CipherSuite, KeyExchange};
use crate::wire::extensions::Extension;
use crate::wire::handshake::{
    CertificateMsg, ClientHello, ClientKeyExchange, Finished, HandshakeMessage, NewSessionTicket,
    ServerHello, ServerKexParams, ServerKeyExchange,
};
use crate::wire::record::ContentType;
use std::ops::{Deref, DerefMut};
use ts_crypto::bignum::Ub;
use ts_crypto::dh::{validate_public, DhGroup, DhKeyPair};
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::x25519::X25519KeyPair;
use ts_x509::{Certificate, TrustError};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    AwaitServerHello,
    AwaitServerFlight,
    AwaitServerKexOrDone,
    AwaitCcsAbbrev,
    AwaitFinishedAbbrev,
    AwaitNstOrCcsFull,
    AwaitFinishedFull,
    Established,
    Failed,
}

/// Everything the scanner extracts from one connection.
#[derive(Debug, Clone)]
pub struct HandshakeSummary {
    /// `None` = full handshake; otherwise how resumption happened.
    pub resumed: Option<ResumeKind>,
    /// Negotiated suite.
    pub cipher_suite: CipherSuite,
    /// Session ID from ServerHello (empty if none; cleartext on the wire).
    // ctlint: public
    pub server_session_id: Vec<u8>,
    /// NewSessionTicket received, if any.
    pub new_ticket: Option<NewSessionTicket>,
    /// The server's (EC)DHE public value, if a PFS exchange ran.
    // ctlint: public
    pub server_kex_public: Option<Vec<u8>>,
    /// Raw DER chain the server presented (cleartext on the wire).
    // ctlint: public
    pub chain_der: Vec<Vec<u8>>,
    /// Trust verdict (None when no chain was presented — resumption).
    pub trust: Option<Result<(), TrustError>>,
    /// The session state usable for future resumption offers.
    pub session: SessionState,
}

/// The client's protocol half: hello/flight sequencing and the study's
/// observation points. Keying material lives in [`ConnectionCommon`].
struct ClientSide {
    config: ClientConfig,
    rng: HmacDrbg,
    state: State,
    // Session IDs travel cleartext in the hellos.
    // ctlint: public
    offered_session_id: Vec<u8>,
    offered_ticket_state: Option<SessionState>,
    // ctlint: public
    server_session_id: Vec<u8>,
    resumed: Option<ResumeKind>,
    new_ticket: Option<NewSessionTicket>,
    // ctlint: public
    server_kex_public: Option<Vec<u8>>,
    // ctlint: public
    chain_der: Vec<Vec<u8>>,
    leaf: Option<Certificate>,
    trust: Option<Result<(), TrustError>>,
    dh_group_hint: DhGroup,
}

/// A client-side TLS connection.
pub struct ClientConn {
    common: ConnectionCommon,
    side: ClientSide,
}

impl Deref for ClientConn {
    type Target = ConnectionCommon;
    fn deref(&self) -> &ConnectionCommon {
        &self.common
    }
}

impl DerefMut for ClientConn {
    fn deref_mut(&mut self) -> &mut ConnectionCommon {
        &mut self.common
    }
}

impl ClientConn {
    /// Create a connection and immediately queue the ClientHello.
    pub fn new(config: ClientConfig, mut rng: HmacDrbg) -> Self {
        let mut client_random = [0u8; 32];
        rng.fill_bytes(&mut client_random);
        let offered_session_id = config
            .resumption
            .session
            .as_ref()
            .map(|(id, _)| id.clone())
            .unwrap_or_default();
        let offered_ticket_state = config.resumption.ticket.as_ref().map(|(_, s)| s.clone());

        let mut extensions = vec![Extension::ServerName(config.server_name.clone())];
        if let Some((ticket, _)) = &config.resumption.ticket {
            extensions.push(Extension::SessionTicket(ticket.clone()));
        } else if config.offer_ticket_support {
            extensions.push(Extension::SessionTicket(Vec::new()));
        }
        extensions.push(Extension::SupportedGroups(vec![29]));

        let ch = HandshakeMessage::ClientHello(ClientHello {
            random: client_random,
            session_id: offered_session_id.clone(),
            cipher_suites: config.suites.iter().map(|s| s.id()).collect(),
            extensions,
        });

        let mut common = ConnectionCommon::new();
        common.client_random = client_random;
        let side = ClientSide {
            config,
            rng,
            state: State::AwaitServerHello,
            offered_session_id,
            offered_ticket_state,
            server_session_id: Vec::new(),
            resumed: None,
            new_ticket: None,
            server_kex_public: None,
            chain_der: Vec::new(),
            leaf: None,
            trust: None,
            dh_group_hint: DhGroup::Sim256,
        };
        common.send_handshake(&ch);
        ClientConn { common, side }
    }

    /// Decrypt and dispatch every complete record received so far.
    pub fn process_new_packets(&mut self) -> Result<IoState, TlsError> {
        let ClientConn { common, side } = self;
        conn::process(common, side)
    }

    /// Scanner-facing summary; available once established.
    pub fn summary(&self) -> Result<HandshakeSummary, TlsError> {
        if !self.common.is_established() {
            return Err(TlsError::NotReady);
        }
        let suite = self.common.suite.expect("established");
        Ok(HandshakeSummary {
            resumed: self.side.resumed,
            cipher_suite: suite,
            server_session_id: self.side.server_session_id.clone(),
            new_ticket: self.side.new_ticket.clone(),
            server_kex_public: self.side.server_kex_public.clone(),
            chain_der: self.side.chain_der.clone(),
            trust: self.side.trust.clone(),
            session: SessionState {
                master_secret: self.common.master.expect("established"),
                cipher_suite: suite,
                established_at: self.side.resumed_original_time(),
                server_name: self.side.config.server_name.clone(),
            },
        })
    }
}

impl ClientSide {
    fn resumed_original_time(&self) -> u64 {
        match self.resumed {
            Some(ResumeKind::SessionId) => self
                .config
                .resumption
                .session
                .as_ref()
                .map(|(_, s)| s.established_at)
                .unwrap_or(self.config.now),
            Some(ResumeKind::Ticket) => self
                .offered_ticket_state
                .as_ref()
                .map(|s| s.established_at)
                .unwrap_or(self.config.now),
            None => self.config.now,
        }
    }

    /// Derive abbreviated-handshake keys from the stored session state and
    /// activate the read direction.
    fn begin_abbreviated_keys(&mut self, common: &mut ConnectionCommon) -> Result<(), TlsError> {
        if common.master.is_none() {
            // Ticket-based resumption: the server signalled acceptance.
            let state = self
                .offered_ticket_state
                .as_ref()
                .ok_or(TlsError::UnexpectedMessage {
                    expected: "Certificate (no resumption offered)",
                    got: "abbreviated handshake",
                })?;
            if state.cipher_suite != common.suite.expect("suite set") {
                return Err(TlsError::Decode("resumed suite mismatch"));
            }
            common.master = Some(state.master_secret);
            self.resumed = Some(ResumeKind::Ticket);
        }
        let master = common.master.expect("set above");
        let suite = common.suite.expect("suite set");
        let keys = key_block(&master, &common.client_random, &common.server_random, suite);
        common.records.set_read_keys(keys.server_write.clone());
        common.pending_keys = Some(keys);
        Ok(())
    }

    fn on_server_hello(
        &mut self,
        common: &mut ConnectionCommon,
        sh: ServerHello,
    ) -> Result<(), TlsError> {
        let suite = CipherSuite::from_id(sh.cipher_suite)
            .ok_or(TlsError::Decode("server chose unknown suite"))?;
        if !self.config.suites.contains(&suite) {
            return Err(TlsError::Decode("server chose unoffered suite"));
        }
        common.suite = Some(suite);
        common.server_random = sh.random;
        self.server_session_id = sh.session_id.clone();

        if !self.offered_session_id.is_empty() && sh.session_id == self.offered_session_id {
            // Session-ID resumption accepted.
            let state = self
                .config
                .resumption
                .session
                .as_ref()
                .map(|(_, s)| s.clone())
                .expect("offered id implies stored state");
            if state.cipher_suite != suite {
                return Err(TlsError::Decode("resumed suite mismatch"));
            }
            common.master = Some(state.master_secret);
            self.resumed = Some(ResumeKind::SessionId);
            self.state = State::AwaitCcsAbbrev;
        } else {
            self.state = State::AwaitServerFlight;
        }
        Ok(())
    }

    fn on_certificate(
        &mut self,
        _common: &mut ConnectionCommon,
        msg: CertificateMsg,
    ) -> Result<(), TlsError> {
        self.chain_der = msg.chain.clone();
        let mut parsed = Vec::with_capacity(msg.chain.len());
        for der in &msg.chain {
            parsed.push(
                Certificate::parse(der).map_err(|_| TlsError::Decode("unparseable certificate"))?,
            );
        }
        let verdict =
            self.config
                .root_store
                .validate(&parsed, &self.config.server_name, self.config.now);
        self.leaf = parsed.into_iter().next();
        let failed = verdict.is_err();
        self.trust = Some(verdict.clone());
        if self.config.verify_certs && failed {
            return Err(TlsError::Trust(verdict.expect_err("checked")));
        }
        if self.leaf.is_none() {
            return Err(TlsError::Decode("empty certificate chain"));
        }
        self.state = State::AwaitServerKexOrDone;
        Ok(())
    }

    fn on_server_kex(
        &mut self,
        common: &mut ConnectionCommon,
        ske: ServerKeyExchange,
    ) -> Result<(), TlsError> {
        let suite = common.suite.expect("suite set");
        // Signature check against the leaf key.
        let leaf = self.leaf.as_ref().expect("certificate processed");
        let signed = kex_signed_content(&common.client_random, &common.server_random, &ske.params);
        leaf.public_key
            .verify(&signed, &ske.signature)
            .map_err(TlsError::from)?;
        match (&ske.params, suite.key_exchange()) {
            (ServerKexParams::Dhe { p, .. }, KeyExchange::Dhe) => {
                // Identify the group by its prime (we only accept named
                // groups — freeform parameters would need subgroup checks).
                let prime = Ub::from_bytes_be(p);
                let group = DhGroup::all()
                    .into_iter()
                    .find(|g| *g.prime() == prime)
                    .ok_or(TlsError::Decode("unknown DH group"))?;
                self.dh_group_hint = group;
            }
            (ServerKexParams::Ecdhe { .. }, KeyExchange::Ecdhe) => {}
            _ => return Err(TlsError::Decode("kex params do not match suite")),
        }
        self.server_kex_public = Some(ske.params.public_value().to_vec());
        Ok(())
    }

    fn on_server_hello_done(&mut self, common: &mut ConnectionCommon) -> Result<(), TlsError> {
        let suite = common.suite.expect("suite set");
        let premaster: Vec<u8>;
        let cke = match suite.key_exchange() {
            KeyExchange::Rsa => {
                let mut pm = vec![0u8; 48];
                self.rng.fill_bytes(&mut pm);
                pm[0] = 3;
                pm[1] = 3;
                let leaf = self.leaf.as_ref().expect("certificate processed");
                let ct = leaf.public_key.encrypt(&pm, &mut self.rng)?;
                premaster = pm;
                ClientKeyExchange::Rsa {
                    encrypted_premaster: ct,
                }
            }
            KeyExchange::Dhe => {
                let server_pub = self
                    .server_kex_public
                    .as_ref()
                    .ok_or(TlsError::Decode("missing ServerKeyExchange"))?;
                let ys = Ub::from_bytes_be(server_pub);
                validate_public(self.dh_group_hint, &ys)?;
                let kp = DhKeyPair::generate(self.dh_group_hint, &mut self.rng);
                premaster = kp.shared_secret(&ys)?;
                ClientKeyExchange::Dhe {
                    yc: kp.public_bytes(),
                }
            }
            KeyExchange::Ecdhe => {
                let server_pub = self
                    .server_kex_public
                    .as_ref()
                    .ok_or(TlsError::Decode("missing ServerKeyExchange"))?;
                let point: [u8; 32] = server_pub
                    .as_slice()
                    .try_into()
                    .map_err(|_| TlsError::Decode("bad server point length"))?;
                let kp = X25519KeyPair::generate(&mut self.rng);
                premaster = kp.shared_secret(&point).to_vec();
                ClientKeyExchange::Ecdhe {
                    point: kp.public.to_vec(),
                }
            }
        };
        common.send_handshake(&HandshakeMessage::ClientKeyExchange(cke));
        let master = master_secret(&premaster, &common.client_random, &common.server_random);
        common.master = Some(master);
        let keys = key_block(&master, &common.client_random, &common.server_random, suite);
        common.queue_record(ContentType::ChangeCipherSpec, &[1]);
        common.records.set_write_keys(keys.client_write.clone());
        let vd = verify_data(&master, &common.transcript.hash(), true);
        common.send_handshake(&HandshakeMessage::Finished(Finished { verify_data: vd }));
        common.pending_keys = Some(keys);
        self.state = State::AwaitNstOrCcsFull;
        Ok(())
    }

    fn on_server_finished(
        &mut self,
        common: &mut ConnectionCommon,
        f: Finished,
    ) -> Result<(), TlsError> {
        let master = common.master.expect("master derived");
        let expected = verify_data(&master, &common.transcript.hash(), false);
        if !ts_crypto::ct::ct_eq(&expected, &f.verify_data) {
            return Err(TlsError::BadFinished);
        }
        common
            .transcript
            .add(&HandshakeMessage::Finished(f).encode());
        match self.state {
            State::AwaitFinishedFull => {
                self.state = State::Established;
                common.status = Status::Established;
                Ok(())
            }
            State::AwaitFinishedAbbrev => {
                // Our turn: CCS + client Finished.
                let client_write = common
                    .pending_keys
                    .as_ref()
                    .expect("keys derived")
                    .client_write
                    .clone();
                common.queue_record(ContentType::ChangeCipherSpec, &[1]);
                common.records.set_write_keys(client_write);
                let vd = verify_data(&master, &common.transcript.hash(), true);
                common.send_handshake(&HandshakeMessage::Finished(Finished { verify_data: vd }));
                self.state = State::Established;
                common.status = Status::Established;
                Ok(())
            }
            _ => unreachable!("guarded by caller"),
        }
    }
}

impl Side for ClientSide {
    fn handle_handshake(
        &mut self,
        common: &mut ConnectionCommon,
        msg: HandshakeMessage,
    ) -> Result<(), TlsError> {
        match (self.state, msg) {
            (State::AwaitServerHello, HandshakeMessage::ServerHello(sh)) => {
                common
                    .transcript
                    .add(&HandshakeMessage::ServerHello(sh.clone()).encode());
                self.on_server_hello(common, sh)
            }
            (State::AwaitServerFlight, HandshakeMessage::Certificate(c)) => {
                common
                    .transcript
                    .add(&HandshakeMessage::Certificate(c.clone()).encode());
                self.on_certificate(common, c)
            }
            (
                State::AwaitServerFlight | State::AwaitCcsAbbrev,
                HandshakeMessage::NewSessionTicket(nst),
            ) => {
                // Ticket reissue during abbreviated handshake.
                common
                    .transcript
                    .add(&HandshakeMessage::NewSessionTicket(nst.clone()).encode());
                if self.resumed.is_none() {
                    // NST before CCS signals ticket acceptance.
                    self.resumed = Some(ResumeKind::Ticket);
                    let state =
                        self.offered_ticket_state
                            .as_ref()
                            .ok_or(TlsError::UnexpectedMessage {
                                expected: "Certificate",
                                got: "NewSessionTicket",
                            })?;
                    common.master = Some(state.master_secret);
                }
                self.new_ticket = Some(nst);
                self.state = State::AwaitCcsAbbrev;
                Ok(())
            }
            (State::AwaitServerKexOrDone, HandshakeMessage::ServerKeyExchange(ske)) => {
                common
                    .transcript
                    .add(&HandshakeMessage::ServerKeyExchange(ske.clone()).encode());
                self.on_server_kex(common, ske)
            }
            (State::AwaitServerKexOrDone, HandshakeMessage::ServerHelloDone) => {
                common
                    .transcript
                    .add(&HandshakeMessage::ServerHelloDone.encode());
                self.on_server_hello_done(common)
            }
            (State::AwaitNstOrCcsFull, HandshakeMessage::NewSessionTicket(nst)) => {
                common
                    .transcript
                    .add(&HandshakeMessage::NewSessionTicket(nst.clone()).encode());
                self.new_ticket = Some(nst);
                Ok(())
            }
            (
                State::AwaitFinishedFull | State::AwaitFinishedAbbrev,
                HandshakeMessage::Finished(f),
            ) => self.on_server_finished(common, f),
            (_, other) => Err(TlsError::UnexpectedMessage {
                expected: state_expectation(self.state),
                got: other.name(),
            }),
        }
    }

    fn on_peer_ccs(
        &mut self,
        common: &mut ConnectionCommon,
        payload: &[u8],
    ) -> Result<(), TlsError> {
        if payload != [1] {
            return Err(TlsError::Decode("bad ChangeCipherSpec"));
        }
        match self.state {
            State::AwaitServerFlight | State::AwaitCcsAbbrev => {
                // Abbreviated handshake: server went straight to CCS.
                self.begin_abbreviated_keys(common)?;
                self.state = State::AwaitFinishedAbbrev;
                Ok(())
            }
            State::AwaitNstOrCcsFull => {
                let keys = common.pending_keys.as_ref().expect("keys derived");
                common.records.set_read_keys(keys.server_write.clone());
                self.state = State::AwaitFinishedFull;
                Ok(())
            }
            _ => Err(TlsError::UnexpectedMessage {
                expected: state_expectation(self.state),
                got: "ChangeCipherSpec",
            }),
        }
    }

    fn alert_for(&self, err: &TlsError) -> AlertDescription {
        match err {
            TlsError::Trust(TrustError::UnknownRoot) => AlertDescription::UnknownCa,
            TlsError::Trust(TrustError::Expired { .. }) => AlertDescription::CertificateExpired,
            TlsError::Trust(_) => AlertDescription::BadCertificate,
            TlsError::BadFinished | TlsError::Crypto(_) => AlertDescription::DecryptError,
            TlsError::UnexpectedMessage { .. } => AlertDescription::UnexpectedMessage,
            TlsError::NoCommonSuite => AlertDescription::HandshakeFailure,
            _ => AlertDescription::DecodeError,
        }
    }

    fn set_failed(&mut self) {
        self.state = State::Failed;
    }
}

fn state_expectation(state: State) -> &'static str {
    match state {
        State::AwaitServerHello => "ServerHello",
        State::AwaitServerFlight => "Certificate or abbreviated handshake",
        State::AwaitServerKexOrDone => "ServerKeyExchange or ServerHelloDone",
        State::AwaitCcsAbbrev => "ChangeCipherSpec (abbreviated)",
        State::AwaitFinishedAbbrev => "Finished (abbreviated)",
        State::AwaitNstOrCcsFull => "NewSessionTicket or ChangeCipherSpec",
        State::AwaitFinishedFull => "Finished",
        State::Established => "ApplicationData",
        State::Failed => "nothing (failed)",
    }
}
