//! Client and server configuration.
//!
//! Server knobs mirror the behaviours the paper measures: whether session
//! IDs are issued and cached (and for how long), whether tickets are issued
//! (with what lifetime hint and acceptance window), how STEKs rotate, and
//! how long ephemeral key-exchange values are reused. The `population`
//! crate assembles these into per-operator profiles.

use crate::cache::SharedSessionCache;
use crate::ephemeral::EphemeralCache;
use crate::session::SessionState;
use crate::suites::CipherSuite;
use crate::ticket::SharedStekManager;
use std::sync::Arc;
use ts_crypto::dh::DhGroup;
use ts_crypto::rsa::RsaPrivateKey;
use ts_x509::{Certificate, RootStore};

/// A server's certificate chain (leaf first) and private key.
pub struct ServerIdentity {
    /// Certificate chain, leaf first, excluding the root.
    pub chain: Vec<Certificate>,
    /// The leaf's RSA private key.
    pub key: RsaPrivateKey,
}

/// Server-side configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Certificate chain and key (shared across a fleet).
    pub identity: Arc<ServerIdentity>,
    /// Supported suites in server preference order.
    pub suites: Vec<CipherSuite>,
    /// Issue session IDs in ServerHello? (Nginx issues even when it will
    /// not resume them.)
    pub issue_session_ids: bool,
    /// The session cache, if session-ID resumption is enabled. `None`
    /// means IDs are never looked up.
    pub session_cache: Option<SharedSessionCache>,
    /// The STEK manager, if session tickets are enabled.
    pub tickets: Option<SharedStekManager>,
    /// Lifetime hint sent in NewSessionTicket (seconds; 0 = unspecified).
    pub ticket_lifetime_hint: u32,
    /// Policy window: how long after original establishment a presented
    /// ticket is honoured, independent of STEK validity.
    pub ticket_accept_window: u64,
    /// Reissue a fresh ticket on successful ticket resumption?
    pub reissue_ticket_on_resumption: bool,
    /// Ephemeral key-exchange value cache (holds the reuse policy).
    pub ephemeral: EphemeralCache,
    /// Finite-field group for DHE suites.
    pub dh_group: DhGroup,
}

impl ServerConfig {
    /// A straightforward config: all suites, session IDs cached for
    /// `cache_lifetime`, tickets under the given manager.
    pub fn new(identity: Arc<ServerIdentity>, ephemeral: EphemeralCache) -> Self {
        ServerConfig {
            identity,
            suites: CipherSuite::all().to_vec(),
            issue_session_ids: true,
            session_cache: Some(SharedSessionCache::new(300, 10_000)),
            tickets: None,
            ticket_lifetime_hint: 300,
            ticket_accept_window: 300,
            reissue_ticket_on_resumption: false,
            ephemeral,
            dh_group: DhGroup::Sim256,
        }
    }
}

/// What a client offers for resumption.
#[derive(Clone, Default)]
pub struct ResumptionOffer {
    /// Session-ID resumption: the ID and the saved state. The ID (and the
    /// encrypted ticket below) are cleartext wire artifacts; the secrecy
    /// of the paired `SessionState` travels with its own field names.
    // ctlint: public
    pub session: Option<(Vec<u8>, SessionState)>,
    /// Ticket resumption: the opaque ticket and the saved state.
    // ctlint: public
    pub ticket: Option<(Vec<u8>, SessionState)>,
}

/// Client-side configuration.
#[derive(Clone)]
pub struct ClientConfig {
    /// Trust anchors for chain validation.
    pub root_store: Arc<RootStore>,
    /// Offered suites in preference order.
    pub suites: Vec<CipherSuite>,
    /// SNI hostname (also used for certificate matching).
    pub server_name: String,
    /// Advertise session-ticket support (empty extension) even when not
    /// offering a ticket — all 2016 mainstream browsers did.
    pub offer_ticket_support: bool,
    /// Resumption material from a previous connection.
    pub resumption: ResumptionOffer,
    /// Validate the server chain? The scanner keeps this on and records
    /// failures; disabling models a permissive probe.
    pub verify_certs: bool,
    /// Virtual time used for certificate validation.
    pub now: u64,
}

impl ClientConfig {
    /// Default client: all suites, tickets supported, full verification.
    pub fn new(root_store: Arc<RootStore>, server_name: &str, now: u64) -> Self {
        ClientConfig {
            root_store,
            suites: CipherSuite::all().to_vec(),
            server_name: server_name.to_string(),
            offer_ticket_support: true,
            resumption: ResumptionOffer::default(),
            verify_certs: true,
            now,
        }
    }
}
