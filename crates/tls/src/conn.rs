//! The sans-I/O connection core shared by [`crate::client::ClientConn`]
//! and [`crate::server::ServerConn`].
//!
//! The state machines never touch a socket. Callers move bytes with the
//! two explicit ports — [`ConnectionCommon::read_tls`] (transport →
//! connection) and [`ConnectionCommon::write_tls`] (connection →
//! transport) — then call `process_new_packets()` on the concrete
//! connection type to advance the handshake. [`ConnectionCommon::wants_read`]
//! / [`ConnectionCommon::wants_write`] tell an event loop what to poll
//! for, and [`IoState`] summarises what a processing step produced.
//!
//! This is the rustls-style inversion: one buffering core, two thin
//! protocol "sides" (a [`Side`] implementation per role) that only ever
//! see whole handshake messages. The outgoing buffer is persistent — a
//! drain cursor, not a fresh `Vec` per flight — so a load generator
//! driving millions of handshakes does not churn the allocator.

use crate::alert::{Alert, AlertDescription};
use crate::error::TlsError;
use crate::keys::{ConnectionKeys, Transcript};
use crate::suites::CipherSuite;
use crate::wire::handshake::{HandshakeMessage, HandshakeReassembler};
use crate::wire::record::{ContentType, RecordLayer};
use std::io;

/// What a `process_new_packets()` step left behind for the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoState {
    /// TLS bytes queued for the transport (drain with `write_tls`).
    pub tls_bytes_to_write: usize,
    /// Decrypted application bytes available (`recv_app_data`).
    pub plaintext_bytes_to_read: usize,
    /// The peer sent close_notify.
    pub peer_has_closed: bool,
    /// The handshake has not completed yet.
    pub handshaking: bool,
}

/// Connection lifecycle, tracked in the shared core so readiness
/// queries need no knowledge of either side's protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Handshaking,
    Established,
    Closed,
    Failed,
}

/// State common to both connection roles: record layer, reassembly,
/// transcript, the persistent outgoing buffer, and the keying material
/// both sides derive.
///
/// Declared `lifetime(connection)`: everything secret in here (master
/// secret, pending key block, decrypted plaintext) dies with the
/// connection — this struct is the yardstick the longer-lived caches are
/// measured against.
// ctlint: lifetime(connection)
pub struct ConnectionCommon {
    pub(crate) records: RecordLayer,
    pub(crate) reasm: HandshakeReassembler,
    pub(crate) transcript: Transcript,
    // Outgoing wire bytes: anything here is already on the network.
    // Persistent across flights; `out_pos` is the drain cursor.
    // ctlint: public
    out: Vec<u8>,
    out_pos: usize,
    pub(crate) status: Status,
    pub(crate) suite: Option<CipherSuite>,
    // Randoms travel cleartext in the hellos.
    // ctlint: public
    pub(crate) client_random: [u8; 32],
    // ctlint: public
    pub(crate) server_random: [u8; 32],
    pub(crate) master: Option<[u8; 48]>,
    pub(crate) pending_keys: Option<ConnectionKeys>,
    pub(crate) app_in: Vec<u8>,
}

impl ConnectionCommon {
    pub(crate) fn new() -> Self {
        ConnectionCommon {
            records: RecordLayer::new(),
            reasm: HandshakeReassembler::new(),
            transcript: Transcript::new(),
            out: Vec::new(),
            out_pos: 0,
            status: Status::Handshaking,
            suite: None,
            client_random: [0; 32],
            server_random: [0; 32],
            master: None,
            pending_keys: None,
            app_in: Vec::new(),
        }
    }

    /// Read TLS bytes from the transport into the connection.
    ///
    /// Performs exactly one `read` on `rd`; returns the byte count (0 =
    /// EOF on the transport). Loop while [`Self::wants_read`] and the
    /// transport has data, then call `process_new_packets()`.
    pub fn read_tls(&mut self, rd: &mut dyn io::Read) -> io::Result<usize> {
        let mut buf = [0u8; 4096];
        let n = rd.read(&mut buf)?;
        self.records.feed(&buf[..n]);
        Ok(n)
    }

    /// Write queued TLS bytes to the transport.
    ///
    /// Performs exactly one `write` on `wr` and advances the drain
    /// cursor by the amount accepted. The underlying buffer is reused —
    /// once fully drained it is cleared in place, keeping its capacity.
    pub fn write_tls(&mut self, wr: &mut dyn io::Write) -> io::Result<usize> {
        let pending = &self.out[self.out_pos..];
        if pending.is_empty() {
            return Ok(0);
        }
        let n = wr.write(pending)?;
        self.out_pos += n;
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(n)
    }

    /// Would the connection make progress from more transport bytes?
    pub fn wants_read(&self) -> bool {
        !matches!(self.status, Status::Failed | Status::Closed)
    }

    /// Are TLS bytes queued for the transport?
    pub fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.status == Status::Established
    }

    /// True if the connection failed or the peer closed it.
    pub fn is_failed(&self) -> bool {
        matches!(self.status, Status::Failed | Status::Closed)
    }

    /// Queue application data (post-handshake).
    pub fn send_app_data(&mut self, data: &[u8]) -> Result<(), TlsError> {
        if self.status != Status::Established {
            return Err(TlsError::NotReady);
        }
        self.queue_record(ContentType::ApplicationData, data);
        Ok(())
    }

    /// Take decrypted application data received so far.
    pub fn recv_app_data(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.app_in)
    }

    /// The running handshake-transcript hash (cleartext-derived; used by
    /// tests to prove chunked and single-shot delivery are equivalent).
    pub fn transcript_hash(&self) -> [u8; 32] {
        self.transcript.hash()
    }

    /// White-box access: the master secret (attacker/verification use).
    pub fn master_secret(&self) -> Option<[u8; 48]> {
        self.master
    }

    /// Encode one record into the persistent outgoing buffer.
    pub(crate) fn queue_record(&mut self, content_type: ContentType, payload: &[u8]) {
        self.records
            .write_record(content_type, payload, &mut self.out);
    }

    /// Transcribe and queue a handshake message.
    pub(crate) fn send_handshake(&mut self, msg: &HandshakeMessage) {
        let encoded = msg.encode();
        self.transcript.add(&encoded);
        self.queue_record(ContentType::Handshake, &encoded);
    }

    pub(crate) fn io_state(&self) -> IoState {
        IoState {
            tls_bytes_to_write: self.out.len() - self.out_pos,
            plaintext_bytes_to_read: self.app_in.len(),
            peer_has_closed: self.status == Status::Closed,
            handshaking: self.status == Status::Handshaking,
        }
    }
}

/// The role-specific half of a connection: interprets whole handshake
/// messages and CCS records against its own protocol state.
pub(crate) trait Side {
    /// Handle one reassembled handshake message.
    fn handle_handshake(
        &mut self,
        common: &mut ConnectionCommon,
        msg: HandshakeMessage,
    ) -> Result<(), TlsError>;

    /// Handle a ChangeCipherSpec record (payload included so each side
    /// keeps its historical validation order).
    fn on_peer_ccs(
        &mut self,
        common: &mut ConnectionCommon,
        payload: &[u8],
    ) -> Result<(), TlsError>;

    /// Map an error to the alert we send before failing.
    fn alert_for(&self, err: &TlsError) -> AlertDescription;

    /// Mirror a failure into the side's own state machine.
    fn set_failed(&mut self);

    /// Hook for sides that meter sent alerts (the server's telemetry).
    fn note_alert_sent(&self, _desc: AlertDescription) {}
}

/// Fail the connection: queue a fatal alert and surface the error.
pub(crate) fn fail_conn<S: Side + ?Sized>(
    common: &mut ConnectionCommon,
    side: &mut S,
    err: TlsError,
    desc: AlertDescription,
) -> Result<IoState, TlsError> {
    side.set_failed();
    side.note_alert_sent(desc);
    common.status = Status::Failed;
    let alert = Alert::fatal(desc);
    common.queue_record(ContentType::Alert, &alert.encode());
    Err(err)
}

/// The shared record-demux loop behind `process_new_packets()` on both
/// connection types: drain complete records, reassemble handshake
/// messages, and dispatch to the side until input is exhausted.
pub(crate) fn process<S: Side + ?Sized>(
    common: &mut ConnectionCommon,
    side: &mut S,
) -> Result<IoState, TlsError> {
    match common.status {
        Status::Failed => return Err(TlsError::ConnectionClosed),
        Status::Closed => return Ok(common.io_state()),
        _ => {}
    }
    loop {
        let record = match common.records.next_record() {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(common.io_state()),
            Err(e) => return fail_conn(common, side, e, AlertDescription::DecodeError),
        };
        match record.content_type {
            ContentType::Handshake => {
                common.reasm.feed(&record.payload);
                loop {
                    let hint = common.suite;
                    match common.reasm.next(hint) {
                        Ok(Some(msg)) => {
                            if let Err(e) = side.handle_handshake(common, msg) {
                                let desc = side.alert_for(&e);
                                return fail_conn(common, side, e, desc);
                            }
                        }
                        Ok(None) => break,
                        Err(e) => return fail_conn(common, side, e, AlertDescription::DecodeError),
                    }
                }
            }
            ContentType::ChangeCipherSpec => {
                if let Err(e) = side.on_peer_ccs(common, &record.payload) {
                    let desc = side.alert_for(&e);
                    return fail_conn(common, side, e, desc);
                }
            }
            ContentType::Alert => {
                side.set_failed();
                if let Some(alert) = Alert::decode(&record.payload) {
                    if alert.description != AlertDescription::CloseNotify {
                        common.status = Status::Failed;
                        return Err(TlsError::PeerAlert(alert.description));
                    }
                }
                common.status = Status::Closed;
                return Ok(common.io_state());
            }
            ContentType::ApplicationData => {
                if common.status != Status::Established {
                    return fail_conn(
                        common,
                        side,
                        TlsError::UnexpectedMessage {
                            expected: "handshake completion",
                            got: "ApplicationData",
                        },
                        AlertDescription::UnexpectedMessage,
                    );
                }
                common.app_in.extend_from_slice(&record.payload);
            }
        }
    }
}
