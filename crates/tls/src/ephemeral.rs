//! Ephemeral key-exchange value caching (paper §2.3, §4.4).
//!
//! RFC 5246 says servers *should* generate a fresh Diffie-Hellman value per
//! handshake. Real servers often don't: OpenSSL (pre-CVE-2016-0701) and
//! SChannel reused DHE values by default, and many deployments cache ECDHE
//! values for seconds to *months*. [`EphemeralPolicy`] encodes the
//! behaviours the study observed; [`EphemeralCache`] holds the live value
//! and is shareable across servers (→ §5.3 Diffie-Hellman service groups).

use parking_lot::Mutex;
use std::sync::Arc;
use ts_crypto::dh::{DhGroup, DhKeyPair};
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::x25519::X25519KeyPair;

/// How long a server reuses its ephemeral key-exchange values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EphemeralPolicy {
    /// Fresh value per handshake (RFC-compliant; OpenSSL post-2016).
    FreshPerHandshake,
    /// Reuse a value for a fixed duration, then regenerate.
    ReuseFor {
        /// Reuse duration in virtual seconds.
        secs: u64,
    },
    /// Reuse one value for the lifetime of the process/deployment —
    /// effectively forever within a study window.
    ReuseForever,
}

impl EphemeralPolicy {
    /// Does the cached value (created at `created_at`) still apply at `now`?
    fn still_valid(&self, created_at: u64, now: u64) -> bool {
        match self {
            EphemeralPolicy::FreshPerHandshake => false,
            EphemeralPolicy::ReuseFor { secs } => now.saturating_sub(created_at) < *secs,
            EphemeralPolicy::ReuseForever => true,
        }
    }
}

/// A cached DHE keypair with its creation time. The keypair is held (and
/// handed to handshakes) behind an `Arc` so a reused value is shared, not
/// re-copied — cloning a `DhKeyPair` duplicates its secret exponent and
/// multi-hundred-byte public value on every handshake.
#[derive(Clone)]
pub struct CachedDhe {
    /// The keypair.
    pub keypair: Arc<DhKeyPair>,
    /// When it was generated.
    pub created_at: u64,
}

/// A cached X25519 keypair with its creation time (shared like [`CachedDhe`]).
#[derive(Clone)]
pub struct CachedEcdhe {
    /// The keypair.
    pub keypair: Arc<X25519KeyPair>,
    /// When it was generated.
    pub created_at: u64,
}

struct EphemeralCacheInner {
    dhe_policy: EphemeralPolicy,
    ecdhe_policy: EphemeralPolicy,
    dh_group: DhGroup,
    dhe: Option<CachedDhe>,
    ecdhe: Option<CachedEcdhe>,
    // Pre-generated X25519 keypairs, in draw order (front = next). Only
    // filled under `FreshPerHandshake`, where every handshake in a
    // campaign burst pays a full Montgomery ladder: the batched 4-way
    // ladder amortises that. Keys come off the same DRBG in the same
    // order as serial generation, so pops are bit-identical to it.
    ecdhe_pool: std::collections::VecDeque<Arc<X25519KeyPair>>,
    rng: HmacDrbg,
    dhe_generations: u64,
    ecdhe_generations: u64,
}

/// Holds (and regenerates per policy) a server's ephemeral values.
/// Shareable across servers to model SSL terminators.
#[derive(Clone)]
pub struct EphemeralCache(Arc<Mutex<EphemeralCacheInner>>);

impl EphemeralCache {
    /// Create a cache applying one reuse policy to both key exchanges.
    pub fn new(policy: EphemeralPolicy, dh_group: DhGroup, rng: HmacDrbg) -> Self {
        Self::with_policies(policy, policy, dh_group, rng)
    }

    /// Create a cache with independent DHE and ECDHE reuse policies
    /// (real servers configure them separately — OpenSSL's
    /// `SSL_OP_SINGLE_DH_USE` vs `SSL_OP_SINGLE_ECDH_USE`).
    pub fn with_policies(
        dhe_policy: EphemeralPolicy,
        ecdhe_policy: EphemeralPolicy,
        dh_group: DhGroup,
        rng: HmacDrbg,
    ) -> Self {
        EphemeralCache(Arc::new(Mutex::new(EphemeralCacheInner {
            dhe_policy,
            ecdhe_policy,
            dh_group,
            dhe: None,
            ecdhe: None,
            ecdhe_pool: std::collections::VecDeque::new(),
            rng,
            dhe_generations: 0,
            ecdhe_generations: 0,
        })))
    }

    /// The DHE reuse policy in force.
    pub fn dhe_policy(&self) -> EphemeralPolicy {
        self.0.lock().dhe_policy
    }

    /// The ECDHE reuse policy in force.
    pub fn ecdhe_policy(&self) -> EphemeralPolicy {
        self.0.lock().ecdhe_policy
    }

    /// Get the DHE keypair to use for a handshake at `now`, regenerating
    /// if the policy says the cached one is stale. Returns a shared handle;
    /// under a reuse policy this is a refcount bump, not a key copy.
    pub fn dhe_keypair(&self, now: u64) -> Arc<DhKeyPair> {
        let mut inner = self.0.lock();
        let reuse = inner
            .dhe
            .as_ref()
            .map(|c| inner.dhe_policy.still_valid(c.created_at, now))
            .unwrap_or(false);
        if !reuse {
            let group = inner.dh_group;
            let kp = DhKeyPair::generate(group, &mut inner.rng);
            inner.dhe = Some(CachedDhe {
                keypair: Arc::new(kp),
                created_at: now,
            });
            inner.dhe_generations += 1;
        }
        Arc::clone(&inner.dhe.as_ref().expect("just set").keypair)
    }

    /// Get the X25519 keypair for a handshake at `now` (same policy).
    pub fn ecdhe_keypair(&self, now: u64) -> Arc<X25519KeyPair> {
        let mut inner = self.0.lock();
        let reuse = inner
            .ecdhe
            .as_ref()
            .map(|c| inner.ecdhe_policy.still_valid(c.created_at, now))
            .unwrap_or(false);
        if !reuse {
            // Fresh-per-handshake churn goes through the 4-way batched
            // ladder; generations count pops (values actually used), and
            // the popped value lands in `ecdhe` so `steal()` still sees
            // the live keypair. Reuse policies regenerate rarely and keep
            // the serial path (no pre-drawn secrets sitting in memory).
            let kp = if inner.ecdhe_policy == EphemeralPolicy::FreshPerHandshake {
                if inner.ecdhe_pool.is_empty() {
                    let batch = X25519KeyPair::generate_batch4(&mut inner.rng);
                    inner.ecdhe_pool.extend(batch.into_iter().map(Arc::new));
                }
                inner.ecdhe_pool.pop_front().expect("just refilled")
            } else {
                Arc::new(X25519KeyPair::generate(&mut inner.rng))
            };
            inner.ecdhe = Some(CachedEcdhe {
                keypair: kp,
                created_at: now,
            });
            inner.ecdhe_generations += 1;
        }
        Arc::clone(&inner.ecdhe.as_ref().expect("just set").keypair)
    }

    /// How many distinct DHE values have been generated (ground truth for
    /// reuse measurements).
    pub fn dhe_generations(&self) -> u64 {
        self.0.lock().dhe_generations
    }

    /// How many distinct ECDHE values have been generated.
    pub fn ecdhe_generations(&self) -> u64 {
        self.0.lock().ecdhe_generations
    }

    /// Attacker model (§6.3): steal the currently cached secrets.
    pub fn steal(&self) -> (Option<CachedDhe>, Option<CachedEcdhe>) {
        let inner = self.0.lock();
        (inner.dhe.clone(), inner.ecdhe.clone())
    }

    /// Same underlying cache (shared terminator)?
    pub fn same_cache(&self, other: &EphemeralCache) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(policy: EphemeralPolicy, seed: &[u8]) -> EphemeralCache {
        EphemeralCache::new(policy, DhGroup::Sim256, HmacDrbg::new(seed))
    }

    #[test]
    fn fresh_policy_regenerates_every_time() {
        let c = cache(EphemeralPolicy::FreshPerHandshake, b"fresh");
        let a = c.dhe_keypair(0);
        let b = c.dhe_keypair(0);
        assert_ne!(a.public.to_hex(), b.public.to_hex());
        assert_eq!(c.dhe_generations(), 2);
        let a = c.ecdhe_keypair(0);
        let b = c.ecdhe_keypair(0);
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn fresh_ecdhe_pool_matches_serial_draw_order() {
        // The batched pool must hand out exactly the keys a serial
        // `generate` loop would have drawn from the same DRBG, in the
        // same order, and `steal()` must see the most recent pop.
        let c = cache(EphemeralPolicy::FreshPerHandshake, b"pool-order");
        let mut reference = HmacDrbg::new(b"pool-order");
        let expected = X25519KeyPair::generate_batch4(&mut reference);
        for (i, exp) in expected.iter().enumerate() {
            let got = c.ecdhe_keypair(0);
            assert_eq!(got.public, exp.public, "lane {i}");
            assert_eq!(c.ecdhe_generations(), (i + 1) as u64);
            let (_, stolen) = c.steal();
            assert_eq!(stolen.expect("cached").keypair.public, exp.public);
        }
        // A fifth call triggers a refill; it must still be fresh.
        let fifth = c.ecdhe_keypair(0);
        assert!(expected.iter().all(|e| e.public != fifth.public));
        assert_eq!(c.ecdhe_generations(), 5);
    }

    #[test]
    fn reuse_for_duration() {
        let c = cache(EphemeralPolicy::ReuseFor { secs: 100 }, b"dur");
        let a = c.dhe_keypair(0);
        let b = c.dhe_keypair(99);
        assert_eq!(a.public.to_hex(), b.public.to_hex());
        let d = c.dhe_keypair(100);
        assert_ne!(a.public.to_hex(), d.public.to_hex(), "expired at boundary");
        assert_eq!(c.dhe_generations(), 2);
    }

    #[test]
    fn reuse_forever_never_regenerates() {
        let c = cache(EphemeralPolicy::ReuseForever, b"forever");
        let a = c.ecdhe_keypair(0);
        let b = c.ecdhe_keypair(86_400 * 63); // the whole 9-week study
        assert_eq!(a.public, b.public);
        assert_eq!(c.ecdhe_generations(), 1);
    }

    #[test]
    fn dhe_and_ecdhe_caches_are_independent() {
        let c = cache(EphemeralPolicy::ReuseForever, b"indep");
        let _ = c.dhe_keypair(0);
        assert_eq!(c.dhe_generations(), 1);
        assert_eq!(c.ecdhe_generations(), 0);
        let _ = c.ecdhe_keypair(0);
        assert_eq!(c.ecdhe_generations(), 1);
    }

    #[test]
    fn independent_per_kex_policies() {
        let c = EphemeralCache::with_policies(
            EphemeralPolicy::FreshPerHandshake,
            EphemeralPolicy::ReuseForever,
            DhGroup::Sim256,
            HmacDrbg::new(b"per-kex"),
        );
        let d1 = c.dhe_keypair(0);
        let d2 = c.dhe_keypair(0);
        assert_ne!(d1.public.to_hex(), d2.public.to_hex(), "DHE fresh");
        let e1 = c.ecdhe_keypair(0);
        let e2 = c.ecdhe_keypair(86_400);
        assert_eq!(e1.public, e2.public, "ECDHE reused forever");
        assert_eq!(c.dhe_policy(), EphemeralPolicy::FreshPerHandshake);
        assert_eq!(c.ecdhe_policy(), EphemeralPolicy::ReuseForever);
    }

    #[test]
    fn shared_cache_shares_values() {
        let a = cache(EphemeralPolicy::ReuseForever, b"share");
        let b = a.clone();
        let ka = a.dhe_keypair(0);
        let kb = b.dhe_keypair(50);
        assert_eq!(ka.public.to_hex(), kb.public.to_hex());
        assert!(a.same_cache(&b));
    }

    #[test]
    fn stolen_value_decrypts_what_server_derives() {
        // §6.3: an attacker holding the server's `a` recomputes any
        // session's shared secret from the client's public value.
        let c = cache(EphemeralPolicy::ReuseForever, b"attack");
        let server_kp = c.dhe_keypair(0);
        let mut client_rng = HmacDrbg::new(b"client");
        let client_kp = DhKeyPair::generate(DhGroup::Sim256, &mut client_rng);
        let z_server = server_kp.shared_secret(&client_kp.public).unwrap();
        let (stolen_dhe, _) = c.steal();
        let stolen = stolen_dhe.expect("value cached");
        let z_attacker = stolen.keypair.shared_secret(&client_kp.public).unwrap();
        assert_eq!(z_server, z_attacker);
    }

    #[test]
    fn steal_before_first_use_yields_nothing() {
        let c = cache(EphemeralPolicy::ReuseForever, b"empty");
        let (d, e) = c.steal();
        assert!(d.is_none());
        assert!(e.is_none());
    }
}
