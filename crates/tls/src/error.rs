//! TLS errors.

use crate::alert::AlertDescription;
use ts_crypto::CryptoError;
use ts_x509::TrustError;

/// Errors produced by the TLS state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// A record or handshake message failed to parse.
    Decode(&'static str),
    /// The peer sent a message that is illegal in the current state.
    UnexpectedMessage {
        /// What the state machine was waiting for.
        expected: &'static str,
        /// What arrived instead.
        got: &'static str,
    },
    /// No mutually supported cipher suite.
    NoCommonSuite,
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// Certificate chain validation failed.
    Trust(TrustError),
    /// The peer sent a fatal alert.
    PeerAlert(AlertDescription),
    /// The Finished MAC did not verify.
    BadFinished,
    /// Data arrived on a connection that was closed or failed.
    ConnectionClosed,
    /// Handshake API used out of order (e.g. app data before completion).
    NotReady,
}

impl From<CryptoError> for TlsError {
    fn from(e: CryptoError) -> Self {
        TlsError::Crypto(e)
    }
}

impl From<TrustError> for TlsError {
    fn from(e: TrustError) -> Self {
        TlsError::Trust(e)
    }
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::Decode(what) => write!(f, "decode error: {what}"),
            TlsError::UnexpectedMessage { expected, got } => {
                write!(f, "unexpected message: wanted {expected}, got {got}")
            }
            TlsError::NoCommonSuite => write!(f, "no common cipher suite"),
            TlsError::Crypto(e) => write!(f, "crypto failure: {e}"),
            TlsError::Trust(e) => write!(f, "certificate validation failed: {e}"),
            TlsError::PeerAlert(d) => write!(f, "peer sent fatal alert: {d:?}"),
            TlsError::BadFinished => write!(f, "Finished verification failed"),
            TlsError::ConnectionClosed => write!(f, "connection closed"),
            TlsError::NotReady => write!(f, "operation before handshake completion"),
        }
    }
}

impl std::error::Error for TlsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TlsError::Crypto(e) => Some(e),
            TlsError::Trust(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TlsError::Decode("bad length");
        assert!(e.to_string().contains("bad length"));
        let e = TlsError::UnexpectedMessage {
            expected: "ServerHello",
            got: "Finished",
        };
        assert!(e.to_string().contains("ServerHello"));
        assert!(e.to_string().contains("Finished"));
    }

    #[test]
    fn source_chains_reach_inner_errors() {
        use std::error::Error;
        let e = TlsError::Crypto(CryptoError::BadMac);
        assert!(e.source().is_some(), "crypto cause exposed");
        let e = TlsError::Trust(TrustError::EmptyChain);
        assert!(e.source().is_some(), "trust cause exposed");
        assert!(TlsError::NoCommonSuite.source().is_none());
    }

    #[test]
    fn conversions() {
        let e: TlsError = CryptoError::BadMac.into();
        assert_eq!(e, TlsError::Crypto(CryptoError::BadMac));
        let e: TlsError = TrustError::EmptyChain.into();
        assert_eq!(e, TlsError::Trust(TrustError::EmptyChain));
    }
}
