//! The TLS 1.2 key schedule (RFC 5246 §8.1, §6.3).

use crate::suites::CipherSuite;
use crate::wire::record::DirectionKeys;
use ts_crypto::prf::prf;
use ts_crypto::sha256::Sha256;

/// Master secret length.
pub const MASTER_SECRET_LEN: usize = 48;
/// Finished verify_data length.
pub const VERIFY_DATA_LEN: usize = 12;

/// Derive the 48-byte master secret.
pub fn master_secret(
    premaster: &[u8],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> [u8; MASTER_SECRET_LEN] {
    let mut seed = Vec::with_capacity(64);
    seed.extend_from_slice(client_random);
    seed.extend_from_slice(server_random);
    let out = prf(premaster, b"master secret", &seed, MASTER_SECRET_LEN);
    out.try_into().expect("48 bytes")
}

/// Both directions' record keys, derived from the key block.
///
/// No `Drop` impl of its own: both [`DirectionKeys`] fields wipe themselves
/// on drop, and leaving `ConnectionKeys` free of `Drop` keeps its fields
/// movable (the handshake layers clone directions into the record layer).
// ctlint: secret
pub struct ConnectionKeys {
    /// Keys for data the client writes.
    pub client_write: DirectionKeys,
    /// Keys for data the server writes.
    pub server_write: DirectionKeys,
}

impl ts_crypto::wipe::Wipe for ConnectionKeys {
    fn wipe(&mut self) {
        self.client_write.wipe();
        self.server_write.wipe();
    }
}

/// Expand the key block (note seed order: server_random || client_random,
/// the reverse of master-secret derivation — RFC 5246 §6.3).
pub fn key_block(
    master: &[u8; MASTER_SECRET_LEN],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
    suite: CipherSuite,
) -> ConnectionKeys {
    let sizes = suite.record_protection().sizes();
    let total = 2 * (sizes.mac_key + sizes.enc_key + sizes.fixed_iv);
    let mut seed = Vec::with_capacity(64);
    seed.extend_from_slice(server_random);
    seed.extend_from_slice(client_random);
    let mut block = prf(master, b"key expansion", &seed, total);
    let mut off = 0;
    let mut take = |n: usize| {
        let out = block[off..off + n].to_vec();
        off += n;
        out
    };
    let client_mac = take(sizes.mac_key);
    let server_mac = take(sizes.mac_key);
    let client_key = take(sizes.enc_key);
    let server_key = take(sizes.enc_key);
    let client_iv = take(sizes.fixed_iv);
    let server_iv = take(sizes.fixed_iv);
    let keys = ConnectionKeys {
        client_write: DirectionKeys {
            protection: suite.record_protection(),
            mac_key: client_mac,
            enc_key: client_key,
            fixed_iv: client_iv,
        },
        server_write: DirectionKeys {
            protection: suite.record_protection(),
            mac_key: server_mac,
            enc_key: server_key,
            fixed_iv: server_iv,
        },
    };
    // The contiguous key block duplicates every key above; scrub it.
    ts_crypto::wipe::wipe_bytes(&mut block);
    keys
}

/// A running transcript hash of all handshake messages.
#[derive(Clone, Default)]
pub struct Transcript {
    hasher: Option<Sha256>,
}

impl Transcript {
    /// Start an empty transcript.
    pub fn new() -> Self {
        Transcript {
            hasher: Some(Sha256::new()),
        }
    }

    /// Absorb an encoded handshake message (header included).
    pub fn add(&mut self, encoded: &[u8]) {
        self.hasher
            .as_mut()
            .expect("transcript in use")
            .update(encoded);
    }

    /// Current hash (non-destructive).
    pub fn hash(&self) -> [u8; 32] {
        self.hasher.clone().expect("transcript in use").finish()
    }
}

/// Compute Finished verify_data.
pub fn verify_data(
    master: &[u8; MASTER_SECRET_LEN],
    transcript_hash: &[u8; 32],
    from_client: bool,
) -> Vec<u8> {
    let label: &[u8] = if from_client {
        b"client finished"
    } else {
        b"server finished"
    };
    prf(master, label, transcript_hash, VERIFY_DATA_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_secret_is_48_bytes_and_deterministic() {
        let pm = [1u8; 48];
        let cr = [2u8; 32];
        let sr = [3u8; 32];
        let m1 = master_secret(&pm, &cr, &sr);
        let m2 = master_secret(&pm, &cr, &sr);
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), 48);
    }

    #[test]
    fn master_secret_depends_on_all_inputs() {
        let base = master_secret(&[1; 48], &[2; 32], &[3; 32]);
        assert_ne!(base, master_secret(&[9; 48], &[2; 32], &[3; 32]));
        assert_ne!(base, master_secret(&[1; 48], &[9; 32], &[3; 32]));
        assert_ne!(base, master_secret(&[1; 48], &[2; 32], &[9; 32]));
    }

    #[test]
    fn key_block_sizes_per_suite() {
        let master = [7u8; 48];
        let keys = key_block(
            &master,
            &[1; 32],
            &[2; 32],
            CipherSuite::EcdheRsaAes128CbcSha256,
        );
        assert_eq!(keys.client_write.mac_key.len(), 32);
        assert_eq!(keys.client_write.enc_key.len(), 16);
        assert_eq!(keys.client_write.fixed_iv.len(), 16);
        let keys = key_block(
            &master,
            &[1; 32],
            &[2; 32],
            CipherSuite::EcdheRsaChaCha20Poly1305,
        );
        assert_eq!(keys.client_write.mac_key.len(), 0);
        assert_eq!(keys.client_write.enc_key.len(), 32);
        assert_eq!(keys.client_write.fixed_iv.len(), 12);
    }

    #[test]
    fn directions_have_distinct_keys() {
        let keys = key_block(
            &[7; 48],
            &[1; 32],
            &[2; 32],
            CipherSuite::EcdheRsaChaCha20Poly1305,
        );
        assert_ne!(keys.client_write.enc_key, keys.server_write.enc_key);
        assert_ne!(keys.client_write.fixed_iv, keys.server_write.fixed_iv);
    }

    #[test]
    fn resumption_key_property() {
        // Same master secret + fresh randoms → fresh keys. This is exactly
        // what an abbreviated handshake does.
        let master = [5u8; 48];
        let k1 = key_block(
            &master,
            &[1; 32],
            &[2; 32],
            CipherSuite::EcdheRsaChaCha20Poly1305,
        );
        let k2 = key_block(
            &master,
            &[3; 32],
            &[4; 32],
            CipherSuite::EcdheRsaChaCha20Poly1305,
        );
        assert_ne!(k1.client_write.enc_key, k2.client_write.enc_key);
    }

    #[test]
    fn transcript_order_sensitivity() {
        let mut t1 = Transcript::new();
        t1.add(b"aaa");
        t1.add(b"bbb");
        let mut t2 = Transcript::new();
        t2.add(b"bbb");
        t2.add(b"aaa");
        assert_ne!(t1.hash(), t2.hash());
        // Non-destructive reads.
        let h = t1.hash();
        assert_eq!(t1.hash(), h);
        t1.add(b"c");
        assert_ne!(t1.hash(), h);
    }

    #[test]
    fn verify_data_distinguishes_roles() {
        let master = [9u8; 48];
        let th = [4u8; 32];
        let c = verify_data(&master, &th, true);
        let s = verify_data(&master, &th, false);
        assert_eq!(c.len(), VERIFY_DATA_LEN);
        assert_ne!(c, s);
    }
}
