//! # ts-tls — a white-box TLS 1.2 implementation for measurement research
//!
//! A from-scratch TLS 1.2 stack built specifically so the crypto-shortcuts
//! study can *observe and manipulate* handshake internals that production
//! libraries hide: session-ID caches, RFC 5077 session tickets and their
//! encryption keys (STEKs), and cached ephemeral Diffie-Hellman values.
//!
//! ## Layout
//!
//! * [`suites`] — cipher suites (RSA / DHE_RSA / ECDHE_RSA key exchange ×
//!   AES-128-CBC-HMAC / ChaCha20-Poly1305 record protection)
//! * [`wire`] — record framing, handshake messages, and extensions
//!   (smoltcp-style typed views: parse borrows, emit appends)
//! * [`keys`] — the TLS 1.2 key schedule (master secret, key block,
//!   Finished verify-data)
//! * [`session`] — resumable session state
//! * [`cache`] — server-side session-ID caches (shareable across servers —
//!   the paper's §5.1 "service groups")
//! * [`ticket`] — RFC 5077 tickets, STEKs, rotation policies, and the
//!   SChannel/mbedTLS ticket-shape variants the scanner must parse
//! * [`ephemeral`] — DHE/ECDHE value caching and reuse policies (§2.3)
//! * [`config`] — client and server configuration
//! * [`conn`] — the sans-I/O connection core: `read_tls` / `write_tls`
//!   byte ports, `process_new_packets()`, and readiness queries
//! * [`client`] / [`server`] — the two protocol sides over that core
//! * [`pump`] — an in-memory driver that polls two endpoints' readiness
//! * [`alert`] / [`error`] — alerts and errors
//! * [`tls13`] — the TLS 1.3 PSK / 0-RTT resumption model (§2.4)
//!
//! ## Protocol fidelity
//!
//! The handshake flights, message encodings, session-resumption semantics,
//! and ticket format follow RFC 5246/5077 closely. Record protection uses
//! encrypt-then-MAC CBC (not TLS 1.2's MAC-then-encrypt) and ChaCha20-
//! Poly1305 — a deliberate, documented simplification that is invisible to
//! every measurement the study performs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod cache;
pub mod client;
pub mod config;
pub mod conn;
pub mod ephemeral;
pub mod error;
pub mod keys;
pub mod pump;
pub mod server;
pub mod session;
pub mod suites;
pub mod ticket;
pub mod tls13;
pub mod wire;

pub use client::ClientConn;
pub use config::{ClientConfig, ServerConfig};
pub use conn::{ConnectionCommon, IoState};
pub use error::TlsError;
pub use server::ServerConn;
pub use suites::CipherSuite;
