//! Drives a client and a server connection against each other.
//!
//! The state machines are sans-I/O; the pump is a minimal event loop over
//! the readiness API — poll [`crate::ConnectionCommon::wants_write`],
//! drain with `write_tls`, feed the peer with `read_tls`, then let it
//! `process_new_packets()`. It optionally records everything on the wire —
//! the "passive collection" an on-path adversary performs (paper §7.1).

use crate::client::ClientConn;
use crate::error::TlsError;
use crate::server::ServerConn;

/// A captured connection: every byte each direction sent, in order.
#[derive(Debug, Clone, Default)]
pub struct WireCapture {
    /// Bytes the client sent.
    pub client_to_server: Vec<u8>,
    /// Bytes the server sent.
    pub server_to_client: Vec<u8>,
}

/// Outcome of pumping a handshake to completion.
pub struct PumpResult {
    /// The passive capture of the whole exchange so far.
    pub capture: WireCapture,
}

/// Drain `src`'s queued TLS bytes into `buf` via `write_tls`.
fn drain(src: &mut crate::ConnectionCommon, buf: &mut Vec<u8>) {
    buf.clear();
    while src.wants_write() {
        // Writing to a Vec cannot fail or short-write.
        src.write_tls(buf).expect("Vec write is infallible");
    }
}

/// Feed `bytes` to `dst` via `read_tls` and process them.
fn deliver(dst: &mut crate::ConnectionCommon, bytes: &[u8]) {
    let mut rd: &[u8] = bytes;
    while !rd.is_empty() {
        dst.read_tls(&mut rd).expect("slice read is infallible");
    }
}

/// Shuttle bytes between the two endpoints until neither produces more
/// output or either side fails. Returns the capture on success; on
/// failure returns the error from whichever side failed first.
pub fn pump(client: &mut ClientConn, server: &mut ServerConn) -> Result<PumpResult, TlsError> {
    let mut capture = WireCapture::default();
    pump_app_data(client, server, &mut capture)?;
    Ok(PumpResult { capture })
}

/// Pump an already-connected pair after queuing application data, until
/// quiescent. Extends the provided capture.
pub fn pump_app_data(
    client: &mut ClientConn,
    server: &mut ServerConn,
    capture: &mut WireCapture,
) -> Result<(), TlsError> {
    let mut buf = Vec::new();
    // A handshake needs only a handful of rounds; a generous bound guards
    // against ping-pong bugs.
    for _ in 0..32 {
        let mut progressed = false;
        drain(client, &mut buf);
        if !buf.is_empty() {
            progressed = true;
            capture.client_to_server.extend_from_slice(&buf);
            deliver(server, &buf);
            server.process_new_packets()?;
        }
        drain(server, &mut buf);
        if !buf.is_empty() {
            progressed = true;
            capture.server_to_client.extend_from_slice(&buf);
            deliver(client, &buf);
            client.process_new_packets()?;
        }
        if !progressed {
            return Ok(());
        }
    }
    Ok(())
}
