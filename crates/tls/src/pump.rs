//! Drives a client and a server connection against each other.
//!
//! The state machines are sans-io; the pump shuttles bytes until both
//! sides are established (or one fails), optionally recording everything
//! on the wire — the "passive collection" an on-path adversary performs
//! (paper §7.1).

use crate::client::ClientConn;
use crate::error::TlsError;
use crate::server::ServerConn;

/// A captured connection: every byte each direction sent, in order.
#[derive(Debug, Clone, Default)]
pub struct WireCapture {
    /// Bytes the client sent.
    pub client_to_server: Vec<u8>,
    /// Bytes the server sent.
    pub server_to_client: Vec<u8>,
}

/// Outcome of pumping a handshake to completion.
pub struct PumpResult {
    /// The passive capture of the whole exchange so far.
    pub capture: WireCapture,
}

/// Shuttle bytes between the two endpoints until neither produces more
/// output or either side fails. Returns the capture on success; on
/// failure returns the error from whichever side failed first.
pub fn pump(client: &mut ClientConn, server: &mut ServerConn) -> Result<PumpResult, TlsError> {
    let mut capture = WireCapture::default();
    // A handshake needs only a handful of rounds; a generous bound guards
    // against ping-pong bugs.
    for _ in 0..32 {
        let mut progressed = false;
        let c2s = client.take_output();
        if !c2s.is_empty() {
            progressed = true;
            capture.client_to_server.extend_from_slice(&c2s);
            server.input(&c2s)?;
        }
        let s2c = server.take_output();
        if !s2c.is_empty() {
            progressed = true;
            capture.server_to_client.extend_from_slice(&s2c);
            client.input(&s2c)?;
        }
        if !progressed {
            break;
        }
    }
    Ok(PumpResult { capture })
}

/// Pump an already-connected pair after queuing application data, until
/// quiescent. Extends the provided capture.
pub fn pump_app_data(
    client: &mut ClientConn,
    server: &mut ServerConn,
    capture: &mut WireCapture,
) -> Result<(), TlsError> {
    for _ in 0..32 {
        let mut progressed = false;
        let c2s = client.take_output();
        if !c2s.is_empty() {
            progressed = true;
            capture.client_to_server.extend_from_slice(&c2s);
            server.input(&c2s)?;
        }
        let s2c = server.take_output();
        if !s2c.is_empty() {
            progressed = true;
            capture.server_to_client.extend_from_slice(&s2c);
            client.input(&s2c)?;
        }
        if !progressed {
            return Ok(());
        }
    }
    Ok(())
}
