//! The server-side TLS 1.2 state machine.
//!
//! Sans-I/O: callers move transport bytes with [`ConnectionCommon::read_tls`]
//! / [`ConnectionCommon::write_tls`] (via deref) and advance the handshake
//! with [`ServerConn::process_new_packets`]. The connection is pinned to
//! the virtual time passed at construction (a TLS handshake is
//! instantaneous at simulation granularity).
//!
//! On the resumption hot path the connection pins the published STEK
//! snapshot ([`crate::ticket::PinnedStekSet`]) so ticket decryption runs
//! without taking the shared manager lock — the redesign that lets a
//! loadgen fleet scale past one core.

use crate::alert::AlertDescription;
use crate::config::ServerConfig;
use crate::conn::{self, ConnectionCommon, IoState, Side, Status};
use crate::error::TlsError;
use crate::keys::{key_block, master_secret, verify_data};
use crate::session::SessionState;
use crate::suites::{CipherSuite, KeyExchange};
use crate::ticket::PinnedStekSet;
use crate::wire::extensions::{find_server_name, find_session_ticket, Extension};
use crate::wire::handshake::{
    CertificateMsg, ClientHello, ClientKeyExchange, Finished, HandshakeMessage, NewSessionTicket,
    ServerHello, ServerKexParams, ServerKeyExchange,
};
use crate::wire::record::ContentType;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use ts_crypto::bignum::Ub;
use ts_crypto::dh::{validate_public, DhKeyPair};
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::x25519::X25519KeyPair;
use ts_telemetry::{emit, Counter, Event};

static HANDSHAKE_FULL: Counter = Counter::new("tls.server.handshake.full");
static RESUME_TICKET_HIT: Counter = Counter::new("tls.server.resume.ticket.hit");
static RESUME_TICKET_MISS: Counter = Counter::new("tls.server.resume.ticket.miss");
static RESUME_SID_HIT: Counter = Counter::new("tls.server.resume.session_id.hit");
static RESUME_SID_MISS: Counter = Counter::new("tls.server.resume.session_id.miss");
static TICKET_ISSUED: Counter = Counter::new("tls.server.ticket.issued");
static TICKET_REISSUED: Counter = Counter::new("tls.server.ticket.reissued");
static ALERT_SENT: Counter = Counter::new("tls.server.alert.sent");

/// How the connection was (or wasn't) resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeKind {
    /// Abbreviated handshake via session-ID cache hit.
    SessionId,
    /// Abbreviated handshake via an accepted session ticket.
    Ticket,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    AwaitClientHello,
    AwaitClientKex,
    AwaitCcs,
    AwaitFinished,
    Established,
    Failed,
}

/// The server's protocol half: resumption decisions, flight assembly,
/// ticket issuance. Keying material lives in [`ConnectionCommon`].
struct ServerSide {
    config: ServerConfig,
    rng: HmacDrbg,
    now: u64,
    state: State,
    // ctlint: public
    session_id: Vec<u8>,
    resumed: Option<ResumeKind>,
    resumed_established_at: u64,
    dhe_kp: Option<Arc<DhKeyPair>>,
    ecdhe_kp: Option<Arc<X25519KeyPair>>,
    sni: String,
    client_offered_ticket_ext: bool,
    // Epoch-pinned STEK snapshot: ticket decryption without the shared
    // manager lock (see ticket.rs).
    stek_pin: Option<PinnedStekSet>,
}

/// A server-side TLS connection.
pub struct ServerConn {
    common: ConnectionCommon,
    side: ServerSide,
}

impl Deref for ServerConn {
    type Target = ConnectionCommon;
    fn deref(&self) -> &ConnectionCommon {
        &self.common
    }
}

impl DerefMut for ServerConn {
    fn deref_mut(&mut self) -> &mut ConnectionCommon {
        &mut self.common
    }
}

impl ServerConn {
    /// Create a connection bound to `config` at virtual time `now`.
    pub fn new(config: ServerConfig, rng: HmacDrbg, now: u64) -> Self {
        ServerConn {
            common: ConnectionCommon::new(),
            side: ServerSide {
                config,
                rng,
                now,
                state: State::AwaitClientHello,
                session_id: Vec::new(),
                resumed: None,
                resumed_established_at: 0,
                dhe_kp: None,
                ecdhe_kp: None,
                sni: String::new(),
                client_offered_ticket_ext: false,
                stek_pin: None,
            },
        }
    }

    /// Decrypt and dispatch every complete record received so far.
    pub fn process_new_packets(&mut self) -> Result<IoState, TlsError> {
        let ServerConn { common, side } = self;
        conn::process(common, side)
    }

    /// How the handshake resumed, if it did.
    pub fn resumed(&self) -> Option<ResumeKind> {
        self.side.resumed
    }

    /// The negotiated suite (after ServerHello).
    pub fn cipher_suite(&self) -> Option<CipherSuite> {
        self.common.suite
    }

    /// The SNI hostname the client sent.
    pub fn sni(&self) -> &str {
        &self.side.sni
    }

    /// For resumed connections, when the original session was established
    /// (the anchor of the ticket acceptance window).
    pub fn resumed_original_establishment(&self) -> Option<u64> {
        self.side.resumed.map(|_| self.side.resumed_established_at)
    }
}

impl ServerSide {
    fn on_client_hello(
        &mut self,
        common: &mut ConnectionCommon,
        ch: ClientHello,
    ) -> Result<(), TlsError> {
        common.client_random = ch.random;
        self.rng.fill_bytes(&mut common.server_random);
        self.sni = find_server_name(&ch.extensions).unwrap_or("").to_string();
        let offered_ticket = find_session_ticket(&ch.extensions);
        self.client_offered_ticket_ext = offered_ticket.is_some();

        // Suite selection: server preference order.
        let suite = self
            .config
            .suites
            .iter()
            .copied()
            .find(|s| ch.cipher_suites.contains(&s.id()))
            .ok_or(TlsError::NoCommonSuite)?;

        // --- Resumption decision (ticket first, then session ID). ---
        if let (Some(manager), Some(ticket)) = (&self.config.tickets, offered_ticket) {
            if !ticket.is_empty() {
                let mut accepted = None;
                if let Ok(state) = manager.accept_pinned(&mut self.stek_pin, ticket, self.now) {
                    let fresh_enough = self.now.saturating_sub(state.established_at)
                        <= self.config.ticket_accept_window;
                    let suite_ok = ch.cipher_suites.contains(&state.cipher_suite.id())
                        && self.config.suites.contains(&state.cipher_suite);
                    if fresh_enough && suite_ok {
                        accepted = Some(state);
                    }
                }
                match accepted {
                    Some(state) => {
                        RESUME_TICKET_HIT.inc();
                        emit(Event::ResumptionHit { kind: "ticket" });
                        return self.resume(common, state, ResumeKind::Ticket, Vec::new());
                    }
                    None => {
                        RESUME_TICKET_MISS.inc();
                        emit(Event::ResumptionMiss { kind: "ticket" });
                    }
                }
            }
        }
        if let Some(cache) = &self.config.session_cache {
            if !ch.session_id.is_empty() {
                let hit = cache
                    .lookup(&self.sni, &ch.session_id, self.now)
                    .filter(|state| {
                        ch.cipher_suites.contains(&state.cipher_suite.id())
                            && self.config.suites.contains(&state.cipher_suite)
                    });
                match hit {
                    Some(state) => {
                        RESUME_SID_HIT.inc();
                        emit(Event::ResumptionHit { kind: "session-id" });
                        let sid = ch.session_id.clone();
                        return self.resume(common, state, ResumeKind::SessionId, sid);
                    }
                    None => {
                        RESUME_SID_MISS.inc();
                        emit(Event::ResumptionMiss { kind: "session-id" });
                    }
                }
            }
        }

        // --- Full handshake. ---
        HANDSHAKE_FULL.inc();
        common.suite = Some(suite);
        self.session_id = if self.config.issue_session_ids {
            self.rng.bytes(32)
        } else {
            Vec::new()
        };
        let mut extensions = Vec::new();
        let will_ticket = self.config.tickets.is_some() && self.client_offered_ticket_ext;
        if will_ticket {
            extensions.push(Extension::SessionTicket(Vec::new()));
        }
        let sh = HandshakeMessage::ServerHello(ServerHello {
            random: common.server_random,
            session_id: self.session_id.clone(),
            cipher_suite: suite.id(),
            extensions,
        });
        common.send_handshake(&sh);

        let chain: Vec<Vec<u8>> = self
            .config
            .identity
            .chain
            .iter()
            .map(|c| c.der.clone())
            .collect();
        common.send_handshake(&HandshakeMessage::Certificate(CertificateMsg { chain }));

        match suite.key_exchange() {
            KeyExchange::Rsa => {}
            KeyExchange::Dhe => {
                let kp = self.config.ephemeral.dhe_keypair(self.now);
                let group = kp.group;
                let params = ServerKexParams::Dhe {
                    p: group.prime().to_bytes_be(),
                    g: group.generator().to_bytes_be(),
                    ys: kp.public_bytes(),
                };
                let ske = self.signed_kex(common, params)?;
                self.dhe_kp = Some(kp);
                common.send_handshake(&ske);
            }
            KeyExchange::Ecdhe => {
                let kp = self.config.ephemeral.ecdhe_keypair(self.now);
                let params = ServerKexParams::Ecdhe {
                    point: kp.public.to_vec(),
                };
                let ske = self.signed_kex(common, params)?;
                self.ecdhe_kp = Some(kp);
                common.send_handshake(&ske);
            }
        }
        common.send_handshake(&HandshakeMessage::ServerHelloDone);
        self.state = State::AwaitClientKex;
        Ok(())
    }

    /// Sign cr || sr || params and build the ServerKeyExchange message.
    fn signed_kex(
        &mut self,
        common: &ConnectionCommon,
        params: ServerKexParams,
    ) -> Result<HandshakeMessage, TlsError> {
        let signed_content =
            kex_signed_content(&common.client_random, &common.server_random, &params);
        let signature = self.config.identity.key.sign(&signed_content)?;
        Ok(HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
            params,
            signature,
        }))
    }

    fn resume(
        &mut self,
        common: &mut ConnectionCommon,
        state: SessionState,
        kind: ResumeKind,
        echo_session_id: Vec<u8>,
    ) -> Result<(), TlsError> {
        let suite = state.cipher_suite;
        common.suite = Some(suite);
        self.resumed = Some(kind);
        self.resumed_established_at = state.established_at;
        common.master = Some(state.master_secret);
        self.session_id = echo_session_id;

        let reissue = kind == ResumeKind::Ticket
            && self.config.reissue_ticket_on_resumption
            && self.config.tickets.is_some();
        let mut extensions = Vec::new();
        if reissue {
            extensions.push(Extension::SessionTicket(Vec::new()));
        }
        let sh = HandshakeMessage::ServerHello(ServerHello {
            random: common.server_random,
            session_id: self.session_id.clone(),
            cipher_suite: suite.id(),
            extensions,
        });
        common.send_handshake(&sh);

        if reissue {
            // Fresh ticket over the SAME session state (keys constant,
            // original establishment time preserved — §2.2).
            let manager = self.config.tickets.as_ref().expect("checked").clone();
            let ticket = manager.issue(&state, self.now);
            TICKET_REISSUED.inc();
            emit(Event::TicketIssued {
                reissue: true,
                lifetime_hint: self.config.ticket_lifetime_hint,
            });
            common.send_handshake(&HandshakeMessage::NewSessionTicket(NewSessionTicket {
                lifetime_hint: self.config.ticket_lifetime_hint,
                ticket,
            }));
        }

        let master = state.master_secret;
        let keys = key_block(&master, &common.client_random, &common.server_random, suite);
        // Server speaks first in an abbreviated handshake.
        common.queue_record(ContentType::ChangeCipherSpec, &[1]);
        common.records.set_write_keys(keys.server_write.clone());
        let vd = verify_data(&master, &common.transcript.hash(), false);
        common.send_handshake(&HandshakeMessage::Finished(Finished { verify_data: vd }));
        common.pending_keys = Some(keys);
        self.state = State::AwaitCcs;
        Ok(())
    }

    fn on_client_kex(
        &mut self,
        common: &mut ConnectionCommon,
        cke: ClientKeyExchange,
    ) -> Result<(), TlsError> {
        let suite = common.suite.expect("suite chosen");
        let premaster: Vec<u8> = match (suite.key_exchange(), cke) {
            (
                KeyExchange::Rsa,
                ClientKeyExchange::Rsa {
                    encrypted_premaster,
                },
            ) => {
                let pm = self.config.identity.key.decrypt(&encrypted_premaster)?;
                if pm.len() != 48 || pm[0] != 3 || pm[1] != 3 {
                    return Err(TlsError::Decode("bad RSA premaster"));
                }
                pm
            }
            (KeyExchange::Dhe, ClientKeyExchange::Dhe { yc }) => {
                let kp = self.dhe_kp.as_ref().expect("DHE keypair generated");
                let y = Ub::from_bytes_be(&yc);
                validate_public(kp.group, &y)?;
                kp.shared_secret(&y)?
            }
            (KeyExchange::Ecdhe, ClientKeyExchange::Ecdhe { point }) => {
                let kp = self.ecdhe_kp.as_ref().expect("ECDHE keypair generated");
                let point: [u8; 32] = point
                    .as_slice()
                    .try_into()
                    .map_err(|_| TlsError::Decode("bad X25519 point length"))?;
                kp.shared_secret(&point).to_vec()
            }
            _ => return Err(TlsError::Decode("key exchange type mismatch")),
        };
        let master = master_secret(&premaster, &common.client_random, &common.server_random);
        common.master = Some(master);
        common.pending_keys = Some(key_block(
            &master,
            &common.client_random,
            &common.server_random,
            suite,
        ));
        self.state = State::AwaitCcs;
        Ok(())
    }

    fn on_client_finished(
        &mut self,
        common: &mut ConnectionCommon,
        f: Finished,
    ) -> Result<(), TlsError> {
        let master = common.master.expect("master derived");
        let expected = verify_data(&master, &common.transcript.hash(), true);
        if !ts_crypto::ct::ct_eq(&expected, &f.verify_data) {
            return Err(TlsError::BadFinished);
        }
        common
            .transcript
            .add(&HandshakeMessage::Finished(f).encode());

        if self.resumed.is_some() {
            // Abbreviated handshake: we already sent our Finished.
            self.state = State::Established;
            common.status = Status::Established;
            return Ok(());
        }

        // Full handshake tail: store session, maybe issue ticket, then
        // CCS + Finished.
        let suite = common.suite.expect("suite chosen");
        let state = SessionState {
            master_secret: master,
            cipher_suite: suite,
            established_at: self.now,
            server_name: self.sni.clone(),
        };
        if let Some(cache) = &self.config.session_cache {
            if !self.session_id.is_empty() {
                cache.insert(&self.sni, self.session_id.clone(), state.clone(), self.now);
            }
        }
        if self.config.tickets.is_some() && self.client_offered_ticket_ext {
            let manager = self.config.tickets.as_ref().expect("checked").clone();
            let ticket = manager.issue(&state, self.now);
            TICKET_ISSUED.inc();
            emit(Event::TicketIssued {
                reissue: false,
                lifetime_hint: self.config.ticket_lifetime_hint,
            });
            common.send_handshake(&HandshakeMessage::NewSessionTicket(NewSessionTicket {
                lifetime_hint: self.config.ticket_lifetime_hint,
                ticket,
            }));
        }
        let server_write = common
            .pending_keys
            .as_ref()
            .expect("keys derived")
            .server_write
            .clone();
        common.queue_record(ContentType::ChangeCipherSpec, &[1]);
        common.records.set_write_keys(server_write);
        let vd = verify_data(&master, &common.transcript.hash(), false);
        common.send_handshake(&HandshakeMessage::Finished(Finished { verify_data: vd }));
        self.state = State::Established;
        common.status = Status::Established;
        Ok(())
    }
}

impl Side for ServerSide {
    fn handle_handshake(
        &mut self,
        common: &mut ConnectionCommon,
        msg: HandshakeMessage,
    ) -> Result<(), TlsError> {
        match (self.state, msg) {
            (State::AwaitClientHello, HandshakeMessage::ClientHello(ch)) => {
                common
                    .transcript
                    .add(&HandshakeMessage::ClientHello(ch.clone()).encode());
                self.on_client_hello(common, ch)
            }
            (State::AwaitClientKex, HandshakeMessage::ClientKeyExchange(cke)) => {
                common
                    .transcript
                    .add(&HandshakeMessage::ClientKeyExchange(cke.clone()).encode());
                self.on_client_kex(common, cke)
            }
            (State::AwaitFinished, HandshakeMessage::Finished(f)) => {
                self.on_client_finished(common, f)
            }
            (_, other) => Err(TlsError::UnexpectedMessage {
                expected: state_expectation(self.state),
                got: other.name(),
            }),
        }
    }

    fn on_peer_ccs(
        &mut self,
        common: &mut ConnectionCommon,
        payload: &[u8],
    ) -> Result<(), TlsError> {
        if self.state != State::AwaitCcs || payload != [1] {
            return Err(TlsError::UnexpectedMessage {
                expected: "orderly ChangeCipherSpec",
                got: "ChangeCipherSpec",
            });
        }
        let keys = common
            .pending_keys
            .as_ref()
            .expect("keys derived before CCS");
        common.records.set_read_keys(keys.client_write.clone());
        self.state = State::AwaitFinished;
        Ok(())
    }

    fn alert_for(&self, err: &TlsError) -> AlertDescription {
        match err {
            TlsError::NoCommonSuite => AlertDescription::HandshakeFailure,
            TlsError::BadFinished => AlertDescription::DecryptError,
            TlsError::Crypto(_) => AlertDescription::DecryptError,
            TlsError::Trust(_) => AlertDescription::BadCertificate,
            TlsError::UnexpectedMessage { .. } => AlertDescription::UnexpectedMessage,
            _ => AlertDescription::DecodeError,
        }
    }

    fn set_failed(&mut self) {
        self.state = State::Failed;
    }

    fn note_alert_sent(&self, desc: AlertDescription) {
        ALERT_SENT.inc();
        emit(Event::AlertSent {
            code: desc.to_byte(),
        });
    }
}

/// The bytes an RSA signature covers in ServerKeyExchange:
/// client_random || server_random || encoded params.
pub fn kex_signed_content(
    client_random: &[u8; 32],
    server_random: &[u8; 32],
    params: &ServerKexParams,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(client_random);
    out.extend_from_slice(server_random);
    match params {
        ServerKexParams::Dhe { p, g, ys } => {
            out.push(0);
            out.extend_from_slice(&(p.len() as u16).to_be_bytes());
            out.extend_from_slice(p);
            out.extend_from_slice(&(g.len() as u16).to_be_bytes());
            out.extend_from_slice(g);
            out.extend_from_slice(&(ys.len() as u16).to_be_bytes());
            out.extend_from_slice(ys);
        }
        ServerKexParams::Ecdhe { point } => {
            out.push(3);
            out.extend_from_slice(&29u16.to_be_bytes());
            out.push(point.len() as u8);
            out.extend_from_slice(point);
        }
    }
    out
}

fn state_expectation(state: State) -> &'static str {
    match state {
        State::AwaitClientHello => "ClientHello",
        State::AwaitClientKex => "ClientKeyExchange",
        State::AwaitCcs => "ChangeCipherSpec",
        State::AwaitFinished => "Finished",
        State::Established => "ApplicationData",
        State::Failed => "nothing (failed)",
    }
}
