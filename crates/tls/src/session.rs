//! Resumable session state.

use crate::keys::MASTER_SECRET_LEN;
use crate::suites::CipherSuite;

/// Everything both sides must retain to resume a session — the exact
/// secret whose *lifetime* the paper measures. Held in the server's session
/// cache (session-ID resumption) or encrypted into a ticket under the STEK
/// (ticket resumption).
// ctlint: secret
#[derive(Clone, PartialEq, Eq)]
pub struct SessionState {
    /// The 48-byte master secret.
    pub master_secret: [u8; MASTER_SECRET_LEN],
    /// Negotiated cipher suite (resumption must reuse it — RFC 5077 §3.4).
    /// Negotiated in cleartext; only the master secret above is sensitive.
    // ctlint: public
    pub cipher_suite: CipherSuite,
    /// Virtual time the original full handshake completed.
    // ctlint: public
    pub established_at: u64,
    /// SNI hostname of the original connection (diagnostics / affinity).
    // ctlint: public
    pub server_name: String,
}

impl std::fmt::Debug for SessionState {
    /// Redacting: everything except the master secret is printable (test
    /// assertion failures still show which session mismatched).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionState")
            .field("master_secret", &"<redacted>")
            .field("cipher_suite", &self.cipher_suite)
            .field("established_at", &self.established_at)
            .field("server_name", &self.server_name)
            .finish()
    }
}

impl ts_crypto::wipe::Wipe for SessionState {
    fn wipe(&mut self) {
        ts_crypto::wipe::wipe_bytes(&mut self.master_secret);
    }
}

impl Drop for SessionState {
    /// Session caches and expired tickets hold master secrets long after
    /// the connection closes — the very exposure window §6 of the paper
    /// measures. Scrub on eviction.
    fn drop(&mut self) {
        use ts_crypto::wipe::Wipe;
        self.wipe();
    }
}

impl SessionState {
    /// Serialize for ticket encryption (fixed layout, no DER needed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MASTER_SECRET_LEN + 2 + 8 + 2 + self.server_name.len());
        out.extend_from_slice(&self.master_secret);
        out.extend_from_slice(&self.cipher_suite.id().to_be_bytes());
        out.extend_from_slice(&self.established_at.to_be_bytes());
        out.extend_from_slice(&(self.server_name.len() as u16).to_be_bytes());
        out.extend_from_slice(self.server_name.as_bytes());
        out
    }

    /// Parse the [`to_bytes`](Self::to_bytes) layout.
    pub fn from_bytes(data: &[u8]) -> Option<SessionState> {
        if data.len() < MASTER_SECRET_LEN + 2 + 8 + 2 {
            return None;
        }
        let master_secret: [u8; MASTER_SECRET_LEN] = data[..MASTER_SECRET_LEN].try_into().ok()?;
        let mut off = MASTER_SECRET_LEN;
        let suite_id = u16::from_be_bytes([data[off], data[off + 1]]);
        off += 2;
        let cipher_suite = CipherSuite::from_id(suite_id)?;
        let established_at = u64::from_be_bytes(data[off..off + 8].try_into().ok()?);
        off += 8;
        let name_len = u16::from_be_bytes([data[off], data[off + 1]]) as usize;
        off += 2;
        if data.len() != off + name_len {
            return None;
        }
        let server_name = String::from_utf8(data[off..].to_vec()).ok()?;
        Some(SessionState {
            master_secret,
            cipher_suite,
            established_at,
            server_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionState {
        SessionState {
            master_secret: [0x5a; 48],
            cipher_suite: CipherSuite::EcdheRsaChaCha20Poly1305,
            established_at: 1_234_567,
            server_name: "mail.example.sim".into(),
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        assert_eq!(SessionState::from_bytes(&s.to_bytes()), Some(s));
    }

    #[test]
    fn roundtrip_empty_name() {
        let mut s = sample();
        s.server_name = String::new();
        assert_eq!(SessionState::from_bytes(&s.to_bytes()), Some(s));
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        let bytes = sample().to_bytes();
        for cut in [0, 10, 47, bytes.len() - 1] {
            assert_eq!(SessionState::from_bytes(&bytes[..cut]), None, "cut {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(SessionState::from_bytes(&extended), None);
    }

    #[test]
    fn rejects_unknown_suite() {
        let mut bytes = sample().to_bytes();
        bytes[48] = 0xff;
        bytes[49] = 0xff;
        assert_eq!(SessionState::from_bytes(&bytes), None);
    }
}
