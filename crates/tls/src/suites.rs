//! Cipher suites.
//!
//! The study cares about the *key exchange* dimension (RSA vs DHE vs
//! ECDHE — §2.1) and is indifferent to record protection, so we ship the
//! suites modern 2016-era servers actually negotiated, with their real
//! IANA code points: AES-GCM first (what the Alexa top sites actually
//! picked), then ChaCha20-Poly1305, then CBC as the compatibility floor.

use ts_crypto::dh::DhGroup;

/// Key-exchange method of a suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyExchange {
    /// RSA key transport — **not** forward secret.
    Rsa,
    /// Ephemeral finite-field Diffie-Hellman, RSA-signed.
    Dhe,
    /// Ephemeral elliptic-curve (X25519) Diffie-Hellman, RSA-signed.
    Ecdhe,
}

/// Record-protection algorithm of a suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordProtection {
    /// AES-128-CBC with HMAC-SHA256 (encrypt-then-MAC).
    CbcHmacSha256,
    /// AES-128-GCM AEAD.
    Aes128Gcm,
    /// ChaCha20-Poly1305 AEAD.
    ChaCha20Poly1305,
}

/// A TLS 1.2 cipher suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherSuite {
    /// TLS_RSA_WITH_AES_128_CBC_SHA256 (0x003C)
    RsaAes128CbcSha256,
    /// TLS_DHE_RSA_WITH_AES_128_CBC_SHA256 (0x0067)
    DheRsaAes128CbcSha256,
    /// TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256 (0xC027)
    EcdheRsaAes128CbcSha256,
    /// TLS_RSA_WITH_AES_128_GCM_SHA256 (0x009C)
    RsaAes128GcmSha256,
    /// TLS_DHE_RSA_WITH_AES_128_GCM_SHA256 (0x009E)
    DheRsaAes128GcmSha256,
    /// TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 (0xC02F)
    EcdheRsaAes128GcmSha256,
    /// TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256 (0xCCAA)
    DheRsaChaCha20Poly1305,
    /// TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256 (0xCCA8)
    EcdheRsaChaCha20Poly1305,
}

impl CipherSuite {
    /// IANA code point.
    pub fn id(self) -> u16 {
        match self {
            CipherSuite::RsaAes128CbcSha256 => 0x003c,
            CipherSuite::DheRsaAes128CbcSha256 => 0x0067,
            CipherSuite::EcdheRsaAes128CbcSha256 => 0xc027,
            CipherSuite::RsaAes128GcmSha256 => 0x009c,
            CipherSuite::DheRsaAes128GcmSha256 => 0x009e,
            CipherSuite::EcdheRsaAes128GcmSha256 => 0xc02f,
            CipherSuite::DheRsaChaCha20Poly1305 => 0xccaa,
            CipherSuite::EcdheRsaChaCha20Poly1305 => 0xcca8,
        }
    }

    /// Decode from a code point.
    pub fn from_id(id: u16) -> Option<CipherSuite> {
        match id {
            0x003c => Some(CipherSuite::RsaAes128CbcSha256),
            0x0067 => Some(CipherSuite::DheRsaAes128CbcSha256),
            0xc027 => Some(CipherSuite::EcdheRsaAes128CbcSha256),
            0x009c => Some(CipherSuite::RsaAes128GcmSha256),
            0x009e => Some(CipherSuite::DheRsaAes128GcmSha256),
            0xc02f => Some(CipherSuite::EcdheRsaAes128GcmSha256),
            0xccaa => Some(CipherSuite::DheRsaChaCha20Poly1305),
            0xcca8 => Some(CipherSuite::EcdheRsaChaCha20Poly1305),
            _ => None,
        }
    }

    /// Key-exchange method.
    pub fn key_exchange(self) -> KeyExchange {
        match self {
            CipherSuite::RsaAes128CbcSha256 | CipherSuite::RsaAes128GcmSha256 => KeyExchange::Rsa,
            CipherSuite::DheRsaAes128CbcSha256
            | CipherSuite::DheRsaAes128GcmSha256
            | CipherSuite::DheRsaChaCha20Poly1305 => KeyExchange::Dhe,
            CipherSuite::EcdheRsaAes128CbcSha256
            | CipherSuite::EcdheRsaAes128GcmSha256
            | CipherSuite::EcdheRsaChaCha20Poly1305 => KeyExchange::Ecdhe,
        }
    }

    /// Record protection algorithm.
    pub fn record_protection(self) -> RecordProtection {
        match self {
            CipherSuite::RsaAes128CbcSha256
            | CipherSuite::DheRsaAes128CbcSha256
            | CipherSuite::EcdheRsaAes128CbcSha256 => RecordProtection::CbcHmacSha256,
            CipherSuite::RsaAes128GcmSha256
            | CipherSuite::DheRsaAes128GcmSha256
            | CipherSuite::EcdheRsaAes128GcmSha256 => RecordProtection::Aes128Gcm,
            CipherSuite::DheRsaChaCha20Poly1305 | CipherSuite::EcdheRsaChaCha20Poly1305 => {
                RecordProtection::ChaCha20Poly1305
            }
        }
    }

    /// True for forward-secret key exchanges (as *commonly understood* —
    /// the entire point of the paper is the caveats).
    pub fn is_forward_secret(self) -> bool {
        self.key_exchange() != KeyExchange::Rsa
    }

    /// Every suite the stack knows, in a server-typical preference order:
    /// ECDHE first, then DHE, then RSA; within a key exchange, AES-GCM
    /// (the hardware-accelerated AEAD) ahead of ChaCha20-Poly1305, CBC as
    /// the compatibility floor.
    pub fn all() -> [CipherSuite; 8] {
        [
            CipherSuite::EcdheRsaAes128GcmSha256,
            CipherSuite::EcdheRsaChaCha20Poly1305,
            CipherSuite::EcdheRsaAes128CbcSha256,
            CipherSuite::DheRsaAes128GcmSha256,
            CipherSuite::DheRsaChaCha20Poly1305,
            CipherSuite::DheRsaAes128CbcSha256,
            CipherSuite::RsaAes128GcmSha256,
            CipherSuite::RsaAes128CbcSha256,
        ]
    }

    /// Suites whose key exchange is DHE (for cipher-restricted scans).
    pub fn dhe_only() -> [CipherSuite; 3] {
        [
            CipherSuite::DheRsaAes128GcmSha256,
            CipherSuite::DheRsaChaCha20Poly1305,
            CipherSuite::DheRsaAes128CbcSha256,
        ]
    }

    /// Suites whose key exchange is ECDHE.
    pub fn ecdhe_only() -> [CipherSuite; 3] {
        [
            CipherSuite::EcdheRsaAes128GcmSha256,
            CipherSuite::EcdheRsaChaCha20Poly1305,
            CipherSuite::EcdheRsaAes128CbcSha256,
        ]
    }
}

/// Key sizes the record layer derives, per protection algorithm.
#[derive(Debug, Clone, Copy)]
pub struct KeyMaterialSizes {
    /// MAC key bytes per direction (0 for AEAD).
    pub mac_key: usize,
    /// Encryption key bytes per direction.
    pub enc_key: usize,
    /// Fixed IV bytes per direction.
    pub fixed_iv: usize,
}

impl RecordProtection {
    /// Required key material sizes.
    pub fn sizes(self) -> KeyMaterialSizes {
        match self {
            RecordProtection::CbcHmacSha256 => KeyMaterialSizes {
                mac_key: 32,
                enc_key: 16,
                fixed_iv: 16,
            },
            RecordProtection::Aes128Gcm => KeyMaterialSizes {
                mac_key: 0,
                enc_key: 16,
                fixed_iv: 12,
            },
            RecordProtection::ChaCha20Poly1305 => KeyMaterialSizes {
                mac_key: 0,
                enc_key: 32,
                fixed_iv: 12,
            },
        }
    }
}

/// The finite-field group our DHE suites negotiate, by server policy.
/// (Real servers pick parameters; clients accept. The group never changes
/// what the scanner measures, only byte lengths.)
pub const DEFAULT_DH_GROUP: DhGroup = DhGroup::Sim256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_for_all() {
        for s in CipherSuite::all() {
            assert_eq!(CipherSuite::from_id(s.id()), Some(s));
        }
        assert_eq!(CipherSuite::from_id(0x0000), None);
        assert_eq!(CipherSuite::from_id(0x1301), None, "TLS 1.3 suites unknown");
    }

    #[test]
    fn forward_secrecy_classification() {
        assert!(!CipherSuite::RsaAes128CbcSha256.is_forward_secret());
        assert!(!CipherSuite::RsaAes128GcmSha256.is_forward_secret());
        assert!(CipherSuite::DheRsaAes128CbcSha256.is_forward_secret());
        assert!(CipherSuite::DheRsaAes128GcmSha256.is_forward_secret());
        assert!(CipherSuite::EcdheRsaAes128GcmSha256.is_forward_secret());
        assert!(CipherSuite::EcdheRsaChaCha20Poly1305.is_forward_secret());
    }

    #[test]
    fn gcm_preferred_within_each_key_exchange() {
        // The first suite of each key-exchange class in the preference
        // order must be the GCM one (hardware-accelerated record path).
        let all = CipherSuite::all();
        for kx in [KeyExchange::Ecdhe, KeyExchange::Dhe, KeyExchange::Rsa] {
            let first = all.iter().find(|s| s.key_exchange() == kx).unwrap();
            assert_eq!(
                first.record_protection(),
                RecordProtection::Aes128Gcm,
                "{kx:?}"
            );
        }
    }

    #[test]
    fn restricted_offer_lists_are_consistent() {
        assert!(CipherSuite::dhe_only()
            .iter()
            .all(|s| s.key_exchange() == KeyExchange::Dhe));
        assert!(CipherSuite::ecdhe_only()
            .iter()
            .all(|s| s.key_exchange() == KeyExchange::Ecdhe));
    }

    #[test]
    fn key_sizes_match_algorithms() {
        let cbc = RecordProtection::CbcHmacSha256.sizes();
        assert_eq!((cbc.mac_key, cbc.enc_key, cbc.fixed_iv), (32, 16, 16));
        let gcm = RecordProtection::Aes128Gcm.sizes();
        assert_eq!((gcm.mac_key, gcm.enc_key, gcm.fixed_iv), (0, 16, 12));
        let aead = RecordProtection::ChaCha20Poly1305.sizes();
        assert_eq!((aead.mac_key, aead.enc_key, aead.fixed_iv), (0, 32, 12));
    }
}
