//! RFC 5077 session tickets and STEK management.
//!
//! The ticket layout follows RFC 5077 §4's recommendation exactly:
//!
//! ```text
//! key_name(16) || IV(16) || AES-128-CBC(state) || HMAC-SHA256 tag(32)
//! ```
//!
//! `key_name` is the **STEK identifier** the paper's scanner fingerprints
//! to measure STEK lifetime (§4.3): it identifies which Session Ticket
//! Encryption Key encrypted the state, is sent in the clear, and changes
//! exactly when the STEK rotates.
//!
//! Besides the standard format we implement the two real-world deviations
//! the paper §4.3 had to handle:
//! * **mbedTLS** uses a 4-byte key name;
//! * **SChannel** wraps tickets in an ASN.1 object containing a DPAPI-like
//!   blob whose *Master Key GUID* serves as the STEK identifier.
//!
//! [`StekManager`] owns the active key plus recently retired ones (servers
//! accept tickets under old keys during overlap windows — Google §7.2:
//! 14-hour rollover, 28-hour acceptance) and implements the rotation
//! policies observed in the wild.

use crate::error::TlsError;
use crate::session::SessionState;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ts_crypto::aead::{cbc_hmac_open, cbc_hmac_seal};
use ts_crypto::drbg::HmacDrbg;
use ts_telemetry::Counter;

static STEK_ROTATIONS: Counter = Counter::new("tls.stek.rotations");

/// Standard STEK identifier ("key_name") length.
pub const KEY_NAME_LEN: usize = 16;

/// How a ticket is laid out on the wire — per server software.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TicketFormat {
    /// RFC 5077 recommended layout, 16-byte key name (OpenSSL, LibreSSL,
    /// GnuTLS, NSS).
    Rfc5077,
    /// mbedTLS: same layout with a 4-byte key name.
    MbedTls,
    /// SChannel: ASN.1-wrapped blob carrying a Master Key GUID.
    SChannel,
}

impl TicketFormat {
    /// Length of this format's STEK identifier.
    pub fn key_name_len(self) -> usize {
        match self {
            TicketFormat::Rfc5077 => KEY_NAME_LEN,
            TicketFormat::MbedTls => 4,
            TicketFormat::SChannel => 16, // the GUID
        }
    }
}

/// A Session Ticket Encryption Key.
///
/// A stolen STEK retroactively decrypts every ticket sealed under it
/// (§6.1), so retired keys are wiped the moment they drop out of the
/// acceptance window.
// ctlint: secret
// ctlint: lifetime(epoch)
#[derive(Clone)]
pub struct Stek {
    /// Public identifier embedded cleartext in every ticket (the
    /// fingerprint the scanner tracks) — not key material.
    // ctlint: public
    pub key_name: [u8; KEY_NAME_LEN],
    /// AES-128 encryption key. **The** secret of §6.1.
    pub enc_key: [u8; 16],
    /// HMAC-SHA256 key.
    pub mac_key: [u8; 32],
    /// Virtual time the key was generated.
    pub created_at: u64,
}

impl ts_crypto::wipe::Wipe for Stek {
    fn wipe(&mut self) {
        ts_crypto::wipe::wipe_bytes(&mut self.enc_key);
        ts_crypto::wipe::wipe_bytes(&mut self.mac_key);
    }
}

impl Drop for Stek {
    fn drop(&mut self) {
        use ts_crypto::wipe::Wipe;
        self.wipe();
    }
}

impl std::fmt::Debug for Stek {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(
            f,
            "Stek(name={}, created_at={})",
            hex(&self.key_name[..4]),
            self.created_at
        )
    }
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

impl Stek {
    /// Generate a fresh random STEK.
    pub fn generate(rng: &mut HmacDrbg, now: u64) -> Self {
        let mut key_name = [0u8; KEY_NAME_LEN];
        rng.fill_bytes(&mut key_name);
        let mut enc_key = [0u8; 16];
        rng.fill_bytes(&mut enc_key);
        let mut mac_key = [0u8; 32];
        rng.fill_bytes(&mut mac_key);
        Stek {
            key_name,
            enc_key,
            mac_key,
            created_at: now,
        }
    }

    /// Load a STEK from a 48-byte key file (the Apache/Nginx
    /// `ssl_session_ticket_key` mechanism: key name, enc key, MAC key
    /// truncated/expanded — we use name(16) || enc(16) || mac-seed(16)).
    pub fn from_key_file(bytes: &[u8; 48], now: u64) -> Self {
        let mut key_name = [0u8; KEY_NAME_LEN];
        key_name.copy_from_slice(&bytes[..16]);
        let mut enc_key = [0u8; 16];
        enc_key.copy_from_slice(&bytes[16..32]);
        // Expand the 16-byte MAC seed to 32 via HMAC for a full-strength key.
        let mac_key = ts_crypto::hmac::hmac_sha256(&bytes[32..48], b"stek mac key");
        Stek {
            key_name,
            enc_key,
            mac_key,
            created_at: now,
        }
    }

    /// Encrypt session state into a ticket in the given format.
    pub fn seal(&self, state: &SessionState, format: TicketFormat, rng: &mut HmacDrbg) -> Vec<u8> {
        let mut iv = [0u8; 16];
        rng.fill_bytes(&mut iv);
        let name: &[u8] = match format {
            TicketFormat::Rfc5077 | TicketFormat::SChannel => &self.key_name,
            TicketFormat::MbedTls => &self.key_name[..4],
        };
        let sealed = cbc_hmac_seal(&self.enc_key, &self.mac_key, &iv, name, &state.to_bytes());
        match format {
            TicketFormat::Rfc5077 | TicketFormat::MbedTls => {
                let mut out = Vec::with_capacity(name.len() + sealed.len());
                out.extend_from_slice(name);
                out.extend_from_slice(&sealed);
                out
            }
            TicketFormat::SChannel => encode_schannel(&self.key_name, &sealed),
        }
    }

    /// Attempt to decrypt a ticket. Fails if the key name doesn't match or
    /// the MAC rejects.
    pub fn open(&self, ticket: &[u8], format: TicketFormat) -> Result<SessionState, TlsError> {
        let (name, sealed) = split_ticket(ticket, format)?;
        let expect: &[u8] = match format {
            TicketFormat::Rfc5077 | TicketFormat::SChannel => &self.key_name,
            TicketFormat::MbedTls => &self.key_name[..4],
        };
        if name != expect {
            return Err(TlsError::Decode("ticket key name mismatch"));
        }
        let pt = cbc_hmac_open(&self.enc_key, &self.mac_key, name, sealed)?;
        SessionState::from_bytes(&pt).ok_or(TlsError::Decode("ticket state malformed"))
    }
}

/// Extract (key-name/GUID, sealed body) from a ticket.
pub fn split_ticket(ticket: &[u8], format: TicketFormat) -> Result<(&[u8], &[u8]), TlsError> {
    match format {
        TicketFormat::Rfc5077 => {
            if ticket.len() < KEY_NAME_LEN {
                return Err(TlsError::Decode("ticket too short"));
            }
            Ok(ticket.split_at(KEY_NAME_LEN))
        }
        TicketFormat::MbedTls => {
            if ticket.len() < 4 {
                return Err(TlsError::Decode("ticket too short"));
            }
            Ok(ticket.split_at(4))
        }
        TicketFormat::SChannel => decode_schannel(ticket),
    }
}

/// Extract just the STEK identifier bytes — what the scanner records.
/// (§4.3: "popular server implementations include a 16-byte STEK
/// identifier in the ticket".)
pub fn extract_stek_id(ticket: &[u8], format: TicketFormat) -> Result<Vec<u8>, TlsError> {
    Ok(split_ticket(ticket, format)?.0.to_vec())
}

/// Sniff the format of an unknown ticket the way the paper's modified
/// zgrab did: try SChannel's ASN.1 shape first, fall back to RFC 5077.
/// (mbedTLS is indistinguishable from RFC 5077 on the wire without the
/// server-software hint, so the scanner passes a hint where it has one.)
pub fn sniff_format(ticket: &[u8]) -> TicketFormat {
    if decode_schannel(ticket).is_ok() {
        TicketFormat::SChannel
    } else {
        TicketFormat::Rfc5077
    }
}

// SChannel-flavoured wrapper: SEQUENCE { INTEGER version, OCTET STRING guid,
// OCTET STRING blob } — close enough to the DPAPI shape that parsing it
// exercises the same scanner logic the paper describes.
fn encode_schannel(guid: &[u8; 16], sealed: &[u8]) -> Vec<u8> {
    let mut inner = Vec::with_capacity(sealed.len() + 32);
    inner.extend_from_slice(&[0x02, 0x01, 0x01]); // INTEGER 1
    inner.push(0x04);
    inner.push(16);
    inner.extend_from_slice(guid);
    inner.push(0x04);
    // Long-form length for the blob.
    if sealed.len() < 0x80 {
        inner.push(sealed.len() as u8);
    } else {
        let len_bytes = (sealed.len() as u32).to_be_bytes();
        let skip = len_bytes.iter().take_while(|&&b| b == 0).count();
        inner.push(0x80 | (4 - skip) as u8);
        inner.extend_from_slice(&len_bytes[skip..]);
    }
    inner.extend_from_slice(sealed);
    let mut out = Vec::with_capacity(inner.len() + 4);
    out.push(0x30);
    if inner.len() < 0x80 {
        out.push(inner.len() as u8);
    } else {
        let len_bytes = (inner.len() as u32).to_be_bytes();
        let skip = len_bytes.iter().take_while(|&&b| b == 0).count();
        out.push(0x80 | (4 - skip) as u8);
        out.extend_from_slice(&len_bytes[skip..]);
    }
    out.extend_from_slice(&inner);
    out
}

fn decode_schannel(ticket: &[u8]) -> Result<(&[u8], &[u8]), TlsError> {
    let err = || TlsError::Decode("not an SChannel ticket");
    let mut pos = 0usize;
    let read_len = |data: &[u8], pos: &mut usize| -> Result<usize, TlsError> {
        let first = *data.get(*pos).ok_or_else(err)?;
        *pos += 1;
        if first < 0x80 {
            Ok(first as usize)
        } else {
            let n = (first & 0x7f) as usize;
            if n == 0 || n > 4 || *pos + n > data.len() {
                return Err(err());
            }
            let mut len = 0usize;
            for i in 0..n {
                len = (len << 8) | data[*pos + i] as usize;
            }
            *pos += n;
            Ok(len)
        }
    };
    if ticket.get(pos) != Some(&0x30) {
        return Err(err());
    }
    pos += 1;
    let seq_len = read_len(ticket, &mut pos)?;
    if pos + seq_len != ticket.len() {
        return Err(err());
    }
    // INTEGER 1
    if ticket.get(pos..pos + 3) != Some(&[0x02, 0x01, 0x01]) {
        return Err(err());
    }
    pos += 3;
    // OCTET STRING guid(16)
    if ticket.get(pos) != Some(&0x04) || ticket.get(pos + 1) != Some(&16) {
        return Err(err());
    }
    pos += 2;
    let guid = ticket.get(pos..pos + 16).ok_or_else(err)?;
    pos += 16;
    // OCTET STRING blob
    if ticket.get(pos) != Some(&0x04) {
        return Err(err());
    }
    pos += 1;
    let blob_len = read_len(ticket, &mut pos)?;
    let blob = ticket.get(pos..pos + blob_len).ok_or_else(err)?;
    if pos + blob_len != ticket.len() {
        return Err(err());
    }
    Ok((guid, blob))
}

/// When (if ever) a server's STEK changes (§4.3's observed behaviours).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationPolicy {
    /// A pre-generated key file, synchronized across servers, changed only
    /// by administrator action: effectively never rotates (Fastly, Yandex).
    Static,
    /// Random key at process start, kept for the process lifetime; rotates
    /// only when the server restarts (Apache/Nginx default without a key
    /// file). The period is the (population-assigned) restart interval.
    OnRestart {
        /// Virtual seconds between restarts.
        restart_interval: u64,
    },
    /// Custom rotation infrastructure (Twitter/Google/CloudFlare):
    /// a fresh key every `period`, old keys accepted for `overlap` after
    /// retirement.
    Periodic {
        /// Rotation period in virtual seconds.
        period: u64,
        /// Acceptance overlap for retired keys.
        overlap: u64,
    },
}

/// Owns the active STEK and retired-but-still-accepted STEKs.
///
/// Declared `lifetime(process)`: the manager lives as long as the server,
/// and every epoch- or connection-class secret it holds (the active STEK,
/// the retired acceptance window, the DRBG state) is a measured crypto
/// shortcut — each carries a `[[lifetime]]` waiver citing the window.
// ctlint: lifetime(process)
pub struct StekManager {
    policy: RotationPolicy,
    format: TicketFormat,
    active: Stek,
    retired: Vec<Stek>,
    rng: HmacDrbg,
    /// Every STEK this manager has ever used, for the attacker model
    /// (compromise at time T exposes whatever is *in memory* at T: active
    /// + retired-within-overlap).
    history: Vec<Stek>,
}

impl StekManager {
    /// Create with a fresh random key at time `now`.
    pub fn new(policy: RotationPolicy, format: TicketFormat, mut rng: HmacDrbg, now: u64) -> Self {
        let active = Stek::generate(&mut rng, now);
        let history = vec![active.clone()];
        StekManager {
            policy,
            format,
            active,
            retired: Vec::new(),
            rng,
            history,
        }
    }

    /// Create from a synchronized 48-byte key file (Static policy).
    pub fn from_key_file(bytes: &[u8; 48], format: TicketFormat, rng: HmacDrbg, now: u64) -> Self {
        let active = Stek::from_key_file(bytes, now);
        let history = vec![active.clone()];
        StekManager {
            policy: RotationPolicy::Static,
            format,
            active,
            retired: Vec::new(),
            rng,
            history,
        }
    }

    /// The ticket format in use.
    pub fn format(&self) -> TicketFormat {
        self.format
    }

    /// The rotation policy.
    pub fn policy(&self) -> RotationPolicy {
        self.policy
    }

    /// Advance virtual time: rotate/retire keys as the policy dictates.
    pub fn tick(&mut self, now: u64) {
        let rotate_every = match self.policy {
            RotationPolicy::Static => return,
            RotationPolicy::OnRestart { restart_interval } => restart_interval,
            RotationPolicy::Periodic { period, .. } => period,
        };
        let overlap = match self.policy {
            RotationPolicy::Periodic { overlap, .. } => overlap,
            // A restart wipes process memory: no overlap.
            _ => 0,
        };
        while now.saturating_sub(self.active.created_at) >= rotate_every {
            let new_created = self.active.created_at + rotate_every;
            let fresh = Stek::generate(&mut self.rng, new_created);
            let old = std::mem::replace(&mut self.active, fresh);
            if overlap > 0 {
                self.retired.push(old);
            }
            self.history.push(self.active.clone());
            STEK_ROTATIONS.inc();
            ts_telemetry::emit(ts_telemetry::Event::StekRotation { now: new_created });
        }
        // Drop retired keys past their acceptance overlap. Their
        // retirement moment is the creation of their successor, i.e.
        // `created_at + rotate_every`.
        self.retired
            .retain(|k| now.saturating_sub(k.created_at + rotate_every) < overlap);
    }

    /// Issue a ticket for `state` at time `now`.
    pub fn issue(&mut self, state: &SessionState, now: u64) -> Vec<u8> {
        self.tick(now);
        self.active.seal(state, self.format, &mut self.rng)
    }

    /// Try to decrypt a presented ticket at time `now`, checking the
    /// active key then any retired keys still in the acceptance window.
    pub fn accept(&mut self, ticket: &[u8], now: u64) -> Result<SessionState, TlsError> {
        self.tick(now);
        if let Ok(state) = self.active.open(ticket, self.format) {
            return Ok(state);
        }
        for key in &self.retired {
            if let Ok(state) = key.open(ticket, self.format) {
                return Ok(state);
            }
        }
        Err(TlsError::Decode("no STEK accepts this ticket"))
    }

    /// The active STEK identifier (as it appears in issued tickets).
    pub fn active_key_name(&self) -> Vec<u8> {
        self.active.key_name[..self.format.key_name_len()].to_vec()
    }

    /// Attacker model: steal every key currently in memory.
    pub fn steal_keys(&self) -> Vec<Stek> {
        let mut out = vec![self.active.clone()];
        out.extend(self.retired.iter().cloned());
        out
    }

    /// All keys ever used (ground truth for validating lifetime
    /// estimators).
    pub fn key_history(&self) -> &[Stek] {
        &self.history
    }
}

/// An immutable snapshot of the keys that decide ticket acceptance at a
/// moment in virtual time: the active STEK plus retired keys still inside
/// their acceptance overlap.
///
/// [`SharedStekManager`] publishes one of these behind an epoch counter;
/// connections pin the `Arc` and decrypt tickets against it without
/// touching the shared manager lock. The container itself is a
/// per-connection view (default connection class); the epoch-class
/// [`Stek`]s inside carry their own annotations and waivers.
pub struct StekSet {
    format: TicketFormat,
    active: Stek,
    accepted_retired: Vec<Stek>,
    /// First virtual time at which this snapshot stops matching the
    /// manager (next rotation due, or a retired key leaving its overlap).
    /// `None` = valid forever (Static policy).
    valid_until: Option<u64>,
}

impl StekSet {
    fn from_manager(m: &StekManager) -> Self {
        let (rotate_every, overlap) = match m.policy {
            RotationPolicy::Static => (None, 0),
            RotationPolicy::OnRestart { restart_interval } => (Some(restart_interval), 0),
            RotationPolicy::Periodic { period, overlap } => (Some(period), overlap),
        };
        let mut valid_until = rotate_every.map(|r| m.active.created_at + r);
        if let Some(rotate_every) = rotate_every {
            for k in &m.retired {
                let expiry = k.created_at + rotate_every + overlap;
                valid_until = Some(valid_until.map_or(expiry, |v| v.min(expiry)));
            }
        }
        StekSet {
            format: m.format,
            active: m.active.clone(),
            accepted_retired: m.retired.clone(),
            valid_until,
        }
    }

    /// Does this snapshot still reflect the manager at `now`?
    fn valid_at(&self, now: u64) -> bool {
        self.valid_until.is_none_or(|t| now < t)
    }

    /// Try the active key, then the retired overlap — the same order as
    /// [`StekManager::accept`].
    fn open(&self, ticket: &[u8]) -> Result<SessionState, TlsError> {
        if let Ok(state) = self.active.open(ticket, self.format) {
            return Ok(state);
        }
        for key in &self.accepted_retired {
            if let Ok(state) = key.open(ticket, self.format) {
                return Ok(state);
            }
        }
        Err(TlsError::Decode("no STEK accepts this ticket"))
    }
}

/// A connection's pin on the published [`StekSet`]: the `Arc` plus the
/// epoch it was taken at. While the epoch matches and the set is still
/// valid, ticket decryption is lock-free.
#[derive(Clone)]
pub struct PinnedStekSet {
    epoch: u64,
    set: Arc<StekSet>,
}

struct SharedStekInner {
    manager: Mutex<StekManager>,
    /// Bumped every time `published` is replaced; pinned readers compare
    /// it with a single atomic load before trusting their snapshot.
    // ctlint: publishes(published)
    epoch: AtomicU64,
    published: Mutex<Arc<StekSet>>,
}

/// A STEK manager shareable across the servers of a service group —
/// the §5.2 "shared STEK" phenomenon (CloudFlare: 62,176 domains).
///
/// The canonical [`StekManager`] sits behind one mutex, but the accept
/// hot path never takes it: a published `Arc<StekSet>` snapshot (epoch-
/// stamped) serves ticket decryption lock-free once a connection has
/// pinned it. The manager lock is only touched when virtual time crosses
/// a rotation or overlap boundary — exactly when the key material
/// actually changes.
#[derive(Clone)]
pub struct SharedStekManager(Arc<SharedStekInner>);

impl SharedStekManager {
    /// Wrap a manager and publish its initial snapshot.
    pub fn new(manager: StekManager) -> Self {
        let published = Arc::new(StekSet::from_manager(&manager));
        SharedStekManager(Arc::new(SharedStekInner {
            manager: Mutex::new(manager),
            epoch: AtomicU64::new(0),
            published: Mutex::new(published),
        }))
    }

    /// Issue a ticket. Sealing draws IVs from the manager's DRBG, so it
    /// stays under the manager lock.
    pub fn issue(&self, state: &SessionState, now: u64) -> Vec<u8> {
        self.0.manager.lock().issue(state, now)
    }

    /// Accept a ticket without a standing pin (locks the snapshot mutex
    /// briefly; rotation only when due).
    pub fn accept(&self, ticket: &[u8], now: u64) -> Result<SessionState, TlsError> {
        let mut pin = None;
        self.accept_pinned(&mut pin, ticket, now)
    }

    /// Accept a ticket through an epoch-pinned snapshot.
    ///
    /// Fast path (pin present, epoch unchanged, no rotation due): one
    /// atomic load, then ticket decryption against the pinned `Arc` —
    /// no lock at all. Otherwise the pin is refreshed from the published
    /// snapshot, advancing the manager only when a boundary was crossed.
    pub fn accept_pinned(
        &self,
        pin: &mut Option<PinnedStekSet>,
        ticket: &[u8],
        now: u64,
    ) -> Result<SessionState, TlsError> {
        if let Some(p) = pin {
            if p.epoch == self.0.epoch.load(Ordering::Acquire) && p.set.valid_at(now) {
                return p.set.open(ticket);
            }
        }
        let fresh = self.refresh_pin(now);
        let result = fresh.set.open(ticket);
        *pin = Some(fresh);
        result
    }

    /// Current pin for `now` — republishing from the manager only if the
    /// published snapshot went stale.
    fn refresh_pin(&self, now: u64) -> PinnedStekSet {
        let inner = &*self.0;
        let mut published = inner.published.lock();
        if published.valid_at(now) {
            return PinnedStekSet {
                epoch: inner.epoch.load(Ordering::Acquire),
                set: published.clone(),
            };
        }
        let mut manager = inner.manager.lock();
        manager.tick(now);
        let set = Arc::new(StekSet::from_manager(&manager));
        drop(manager);
        *published = set.clone();
        // Publish under the snapshot lock so (epoch, set) stay paired.
        let epoch = inner.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        PinnedStekSet { epoch, set }
    }

    /// Ticket format.
    pub fn format(&self) -> TicketFormat {
        self.0.manager.lock().format()
    }

    /// Active key name after advancing to `now`.
    pub fn active_key_name_at(&self, now: u64) -> Vec<u8> {
        let mut m = self.0.manager.lock();
        m.tick(now);
        m.active_key_name()
    }

    /// Steal in-memory keys (attacker model).
    pub fn steal_keys(&self) -> Vec<Stek> {
        self.0.manager.lock().steal_keys()
    }

    /// Ground-truth key history.
    pub fn key_history(&self) -> Vec<Stek> {
        self.0.manager.lock().key_history().to_vec()
    }

    /// Same underlying manager?
    pub fn same_manager(&self, other: &SharedStekManager) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::CipherSuite;

    fn state() -> SessionState {
        SessionState {
            master_secret: [0x11; 48],
            cipher_suite: CipherSuite::EcdheRsaChaCha20Poly1305,
            established_at: 500,
            server_name: "tickets.sim".into(),
        }
    }

    fn rng(seed: &[u8]) -> HmacDrbg {
        HmacDrbg::new(seed)
    }

    #[test]
    fn seal_open_roundtrip_all_formats() {
        let mut r = rng(b"fmt");
        for format in [
            TicketFormat::Rfc5077,
            TicketFormat::MbedTls,
            TicketFormat::SChannel,
        ] {
            let stek = Stek::generate(&mut r, 0);
            let ticket = stek.seal(&state(), format, &mut r);
            assert_eq!(stek.open(&ticket, format).unwrap(), state(), "{format:?}");
        }
    }

    #[test]
    fn stek_id_extraction_matches_format() {
        let mut r = rng(b"extract");
        let stek = Stek::generate(&mut r, 0);
        let t = stek.seal(&state(), TicketFormat::Rfc5077, &mut r);
        assert_eq!(
            extract_stek_id(&t, TicketFormat::Rfc5077).unwrap(),
            stek.key_name.to_vec()
        );
        let t = stek.seal(&state(), TicketFormat::MbedTls, &mut r);
        assert_eq!(
            extract_stek_id(&t, TicketFormat::MbedTls).unwrap(),
            stek.key_name[..4].to_vec()
        );
        let t = stek.seal(&state(), TicketFormat::SChannel, &mut r);
        assert_eq!(
            extract_stek_id(&t, TicketFormat::SChannel).unwrap(),
            stek.key_name.to_vec()
        );
    }

    #[test]
    fn sniffer_distinguishes_schannel() {
        let mut r = rng(b"sniff");
        let stek = Stek::generate(&mut r, 0);
        let t = stek.seal(&state(), TicketFormat::SChannel, &mut r);
        assert_eq!(sniff_format(&t), TicketFormat::SChannel);
        let t = stek.seal(&state(), TicketFormat::Rfc5077, &mut r);
        assert_eq!(sniff_format(&t), TicketFormat::Rfc5077);
    }

    #[test]
    fn wrong_stek_rejects() {
        let mut r = rng(b"wrong");
        let a = Stek::generate(&mut r, 0);
        let b = Stek::generate(&mut r, 0);
        let ticket = a.seal(&state(), TicketFormat::Rfc5077, &mut r);
        assert!(b.open(&ticket, TicketFormat::Rfc5077).is_err());
    }

    #[test]
    fn tampered_ticket_rejects() {
        let mut r = rng(b"tamper");
        let stek = Stek::generate(&mut r, 0);
        let mut ticket = stek.seal(&state(), TicketFormat::Rfc5077, &mut r);
        let mid = ticket.len() / 2;
        ticket[mid] ^= 1;
        assert!(stek.open(&ticket, TicketFormat::Rfc5077).is_err());
    }

    #[test]
    fn key_file_loading_is_deterministic() {
        let bytes = [0x42u8; 48];
        let a = Stek::from_key_file(&bytes, 0);
        let b = Stek::from_key_file(&bytes, 100);
        assert_eq!(a.key_name, b.key_name);
        assert_eq!(a.enc_key, b.enc_key);
        assert_eq!(a.mac_key, b.mac_key);
        // Cross-process ticket acceptance: a ticket sealed by one file-load
        // opens under another (the synchronization the paper describes).
        let mut r = rng(b"kf");
        let ticket = a.seal(&state(), TicketFormat::Rfc5077, &mut r);
        assert_eq!(b.open(&ticket, TicketFormat::Rfc5077).unwrap(), state());
    }

    #[test]
    fn static_policy_never_rotates() {
        let mut m = StekManager::new(RotationPolicy::Static, TicketFormat::Rfc5077, rng(b"s"), 0);
        let name0 = m.active_key_name();
        m.tick(86_400 * 365);
        assert_eq!(m.active_key_name(), name0);
        assert_eq!(m.key_history().len(), 1);
    }

    #[test]
    fn periodic_policy_rotates_and_overlaps() {
        // Google-like: rotate every 14h, accept for another 14h.
        let period = 14 * 3600;
        let overlap = 14 * 3600;
        let mut m = StekManager::new(
            RotationPolicy::Periodic { period, overlap },
            TicketFormat::Rfc5077,
            rng(b"goog"),
            0,
        );
        let ticket = m.issue(&state(), 0);
        let name0 = m.active_key_name();
        // Before rotation: same key, ticket accepted.
        assert_eq!(m.active_key_name_after_tick(period - 1), name0);
        assert!(m.accept(&ticket, period - 1).is_ok());
        // After rotation: new key, old ticket still accepted (overlap).
        assert_ne!(m.active_key_name_after_tick(period + 1), name0);
        assert!(m.accept(&ticket, period + overlap - 1).is_ok());
        // Past overlap: rejected.
        assert!(m.accept(&ticket, period + overlap + 1).is_err());
    }

    #[test]
    fn restart_policy_rotates_without_overlap() {
        let mut m = StekManager::new(
            RotationPolicy::OnRestart {
                restart_interval: 1000,
            },
            TicketFormat::Rfc5077,
            rng(b"restart"),
            0,
        );
        let ticket = m.issue(&state(), 10);
        assert!(m.accept(&ticket, 999).is_ok());
        // Restart boundary wipes the old key entirely.
        assert!(m.accept(&ticket, 1001).is_err());
    }

    #[test]
    fn rotation_catches_up_over_long_gaps() {
        let mut m = StekManager::new(
            RotationPolicy::Periodic {
                period: 100,
                overlap: 0,
            },
            TicketFormat::Rfc5077,
            rng(b"gap"),
            0,
        );
        m.tick(1000);
        // 10 periods elapsed → 10 rotations (+1 initial key).
        assert_eq!(m.key_history().len(), 11);
    }

    #[test]
    fn steal_keys_exposes_active_and_retired() {
        let mut m = StekManager::new(
            RotationPolicy::Periodic {
                period: 100,
                overlap: 100,
            },
            TicketFormat::Rfc5077,
            rng(b"steal"),
            0,
        );
        m.tick(150);
        let stolen = m.steal_keys();
        assert_eq!(stolen.len(), 2, "active + one retired within overlap");
        m.tick(500);
        assert_eq!(m.steal_keys().len(), 2, "steady state");
    }

    #[test]
    fn shared_manager_shares_key_rotation() {
        let m = StekManager::new(RotationPolicy::Static, TicketFormat::Rfc5077, rng(b"sh"), 0);
        let a = SharedStekManager::new(m);
        let b = a.clone();
        assert!(a.same_manager(&b));
        let ticket = a.issue(&state(), 0);
        assert_eq!(b.accept(&ticket, 10).unwrap(), state());
        assert_eq!(a.active_key_name_at(0), b.active_key_name_at(0));
    }

    impl StekManager {
        fn active_key_name_after_tick(&mut self, now: u64) -> Vec<u8> {
            self.tick(now);
            self.active_key_name()
        }
    }
}
