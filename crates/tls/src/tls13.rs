//! TLS 1.3 PSK resumption model (paper §2.4).
//!
//! Draft-15 TLS 1.3 (current at the time of the study) nominally obsoletes
//! session IDs and tickets but preserves both mechanisms as pre-shared
//! keys: the server issues a PSK identity in NewSessionTicket; the identity
//! is either a database lookup key (≈ session ID) or self-contained
//! encrypted state (≈ session ticket). A *resumption secret* — explicitly
//! derived, unlike TLS 1.2's reused master secret — authenticates either a
//! direct `psk_ke` resumption or a `psk_dhe_ke` resumption that runs a
//! fresh (EC)DHE exchange, and can also protect 0-RTT early data.
//!
//! This module models exactly the parts the paper's §8.1 discussion needs:
//! the derivation chain, both PSK modes, 0-RTT, the 7-day lifetime cap,
//! and — crucially — the vulnerability-window consequences: a stolen PSK
//! (or the STEK protecting self-contained PSK identities) decrypts
//! `psk_ke` resumptions and 0-RTT data, while `psk_dhe_ke` application
//! data survives.

use crate::error::TlsError;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::prf::{hkdf_expand, hkdf_extract};
use ts_crypto::x25519::X25519KeyPair;

/// Draft-15's maximum PSK lifetime (7 days, in seconds).
pub const MAX_PSK_LIFETIME: u64 = 7 * 86_400;

/// How a PSK identity resolves to resumption state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PskIdentityKind {
    /// Database lookup key — server keeps the secret (≈ session ID).
    DatabaseLookup,
    /// Encrypted, self-contained state under a STEK (≈ session ticket).
    SelfContained,
}

/// Which key-establishment mode a resumption uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PskMode {
    /// Direct resumption from the PSK alone.
    PskKe,
    /// PSK authenticates; a fresh (EC)DHE supplies the key material.
    PskDheKe,
}

/// The resumption secret TLS 1.3 derives after a handshake.
// ctlint: secret
#[derive(Clone, PartialEq, Eq)]
pub struct ResumptionSecret {
    /// 32-byte secret.
    pub secret: [u8; 32],
    /// When it was issued (virtual time).
    pub issued_at: u64,
    /// Advertised lifetime (capped at [`MAX_PSK_LIFETIME`]).
    pub lifetime: u64,
    /// How the identity resolves.
    pub identity_kind: PskIdentityKind,
}

impl std::fmt::Debug for ResumptionSecret {
    /// Redacting: metadata is printable, the PSK itself is not.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResumptionSecret")
            .field("secret", &"<redacted>")
            .field("issued_at", &self.issued_at)
            .field("lifetime", &self.lifetime)
            .field("identity_kind", &self.identity_kind)
            .finish()
    }
}

impl ts_crypto::wipe::Wipe for ResumptionSecret {
    fn wipe(&mut self) {
        ts_crypto::wipe::wipe_bytes(&mut self.secret);
    }
}

impl Drop for ResumptionSecret {
    /// A PSK outlives its connection by up to seven days; scrub it when
    /// the holder lets go.
    fn drop(&mut self) {
        use ts_crypto::wipe::Wipe;
        self.wipe();
    }
}

/// Derive the resumption secret from a (TLS 1.3-style) master secret.
/// `HKDF-Expand(master, "resumption master secret" || transcript, 32)`.
pub fn derive_resumption_secret(
    master: &[u8],
    transcript_hash: &[u8; 32],
    issued_at: u64,
    lifetime: u64,
    identity_kind: PskIdentityKind,
) -> ResumptionSecret {
    let prk = hkdf_extract(b"tls13 resumption", master);
    let mut info = Vec::with_capacity(24 + 32);
    info.extend_from_slice(b"resumption master secret");
    info.extend_from_slice(transcript_hash);
    let bytes = hkdf_expand(&prk, &info, 32);
    ResumptionSecret {
        secret: bytes.try_into().expect("32 bytes"),
        issued_at,
        lifetime: lifetime.min(MAX_PSK_LIFETIME),
        identity_kind,
    }
}

/// Outcome of a modelled TLS 1.3 resumption.
// ctlint: secret
#[derive(Clone)]
pub struct Tls13Resumption {
    /// Mode used.
    pub mode: PskMode,
    /// Traffic secret protecting the resumed connection's data.
    pub traffic_secret: [u8; 32],
    /// Secret protecting 0-RTT early data, if any was sent.
    pub early_data_secret: Option<[u8; 32]>,
    /// The fresh DHE output (psk_dhe_ke only) — what forward-protects it.
    pub dhe_output: Option<[u8; 32]>,
}

impl std::fmt::Debug for Tls13Resumption {
    /// Redacting: only the mode and which secrets exist are printable.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tls13Resumption")
            .field("mode", &self.mode)
            .field("traffic_secret", &"<redacted>")
            .field(
                "early_data_secret",
                &self.early_data_secret.as_ref().map(|_| "<redacted>"),
            )
            .field(
                "dhe_output",
                &self.dhe_output.as_ref().map(|_| "<redacted>"),
            )
            .finish()
    }
}

impl ts_crypto::wipe::Wipe for Tls13Resumption {
    fn wipe(&mut self) {
        ts_crypto::wipe::wipe_bytes(&mut self.traffic_secret);
        if let Some(s) = self.early_data_secret.as_mut() {
            ts_crypto::wipe::wipe_bytes(s);
        }
        if let Some(s) = self.dhe_output.as_mut() {
            ts_crypto::wipe::wipe_bytes(s);
        }
    }
}

impl Drop for Tls13Resumption {
    fn drop(&mut self) {
        use ts_crypto::wipe::Wipe;
        self.wipe();
    }
}

/// Run a modelled resumption at `now`.
///
/// `early_data` controls whether the client streams 0-RTT data (encrypted
/// under a secret derived from the PSK alone, before any DHE completes).
pub fn resume(
    psk: &ResumptionSecret,
    mode: PskMode,
    early_data: bool,
    now: u64,
    rng: &mut HmacDrbg,
) -> Result<Tls13Resumption, TlsError> {
    if now.saturating_sub(psk.issued_at) > psk.lifetime {
        return Err(TlsError::Decode("PSK expired"));
    }
    let early_data_secret = if early_data {
        Some(derive_labeled(&psk.secret, b"early data", None))
    } else {
        None
    };
    match mode {
        PskMode::PskKe => Ok(Tls13Resumption {
            mode,
            traffic_secret: derive_labeled(&psk.secret, b"psk_ke traffic", None),
            early_data_secret,
            dhe_output: None,
        }),
        PskMode::PskDheKe => {
            let client = X25519KeyPair::generate(rng);
            let server = X25519KeyPair::generate(rng);
            let shared = client.shared_secret(&server.public);
            Ok(Tls13Resumption {
                mode,
                traffic_secret: derive_labeled(&psk.secret, b"psk_dhe_ke traffic", Some(&shared)),
                early_data_secret,
                dhe_output: Some(shared),
            })
        }
    }
}

/// Attacker model: given a stolen PSK, which secrets of a recorded
/// resumption can be recomputed? (The attacker saw the wire, so in
/// `psk_dhe_ke` it does *not* know the DHE output.)
pub fn attacker_recoverable(
    stolen_psk: &ResumptionSecret,
    resumption: &Tls13Resumption,
) -> RecoveredSecrets {
    let early = resumption.early_data_secret.as_ref().map(|real| {
        let candidate = derive_labeled(&stolen_psk.secret, b"early data", None);
        ts_crypto::ct::ct_eq_array(&candidate, real)
    });
    let traffic = match resumption.mode {
        PskMode::PskKe => {
            let candidate = derive_labeled(&stolen_psk.secret, b"psk_ke traffic", None);
            ts_crypto::ct::ct_eq_array(&candidate, &resumption.traffic_secret)
        }
        // Without the DHE output the attacker cannot derive the secret.
        PskMode::PskDheKe => false,
    };
    RecoveredSecrets {
        early_data_decryptable: early.unwrap_or(false),
        traffic_decryptable: traffic,
    }
}

/// What a PSK thief can decrypt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredSecrets {
    /// 0-RTT early data falls to the PSK alone.
    pub early_data_decryptable: bool,
    /// Post-handshake traffic falls only in `psk_ke` mode.
    pub traffic_decryptable: bool,
}

fn derive_labeled(secret: &[u8; 32], label: &[u8], extra: Option<&[u8]>) -> [u8; 32] {
    let prk = match extra {
        Some(ikm) => hkdf_extract(secret, ikm),
        None => hkdf_extract(b"", secret),
    };
    hkdf_expand(&prk, label, 32).try_into().expect("32 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psk(kind: PskIdentityKind) -> ResumptionSecret {
        derive_resumption_secret(&[7u8; 48], &[1u8; 32], 1000, MAX_PSK_LIFETIME, kind)
    }

    #[test]
    fn derivation_is_deterministic_and_input_sensitive() {
        let a =
            derive_resumption_secret(&[7; 48], &[1; 32], 0, 100, PskIdentityKind::SelfContained);
        let b =
            derive_resumption_secret(&[7; 48], &[1; 32], 0, 100, PskIdentityKind::SelfContained);
        assert_eq!(a.secret, b.secret);
        let c =
            derive_resumption_secret(&[8; 48], &[1; 32], 0, 100, PskIdentityKind::SelfContained);
        assert_ne!(a.secret, c.secret);
        let d =
            derive_resumption_secret(&[7; 48], &[2; 32], 0, 100, PskIdentityKind::SelfContained);
        assert_ne!(a.secret, d.secret);
    }

    #[test]
    fn lifetime_capped_at_seven_days() {
        let p = derive_resumption_secret(
            &[1; 48],
            &[0; 32],
            0,
            90 * 86_400, // fantabob-style 90-day wish
            PskIdentityKind::SelfContained,
        );
        assert_eq!(p.lifetime, MAX_PSK_LIFETIME);
    }

    #[test]
    fn expired_psk_rejected() {
        let p = psk(PskIdentityKind::DatabaseLookup);
        let mut rng = HmacDrbg::new(b"x");
        assert!(resume(
            &p,
            PskMode::PskKe,
            false,
            p.issued_at + p.lifetime,
            &mut rng
        )
        .is_ok());
        assert!(resume(
            &p,
            PskMode::PskKe,
            false,
            p.issued_at + p.lifetime + 1,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn psk_ke_traffic_falls_to_stolen_psk() {
        let p = psk(PskIdentityKind::SelfContained);
        let mut rng = HmacDrbg::new(b"r1");
        let r = resume(&p, PskMode::PskKe, true, 2000, &mut rng).unwrap();
        let recovered = attacker_recoverable(&p, &r);
        assert!(recovered.traffic_decryptable, "psk_ke traffic decryptable");
        assert!(recovered.early_data_decryptable, "0-RTT decryptable");
    }

    #[test]
    fn psk_dhe_ke_traffic_survives_but_early_data_falls() {
        let p = psk(PskIdentityKind::SelfContained);
        let mut rng = HmacDrbg::new(b"r2");
        let r = resume(&p, PskMode::PskDheKe, true, 2000, &mut rng).unwrap();
        let recovered = attacker_recoverable(&p, &r);
        assert!(!recovered.traffic_decryptable, "fresh DHE protects traffic");
        assert!(recovered.early_data_decryptable, "0-RTT still falls");
        assert!(r.dhe_output.is_some());
    }

    #[test]
    fn wrong_psk_recovers_nothing() {
        let p = psk(PskIdentityKind::SelfContained);
        let other =
            derive_resumption_secret(&[9; 48], &[9; 32], 0, 100, PskIdentityKind::SelfContained);
        let mut rng = HmacDrbg::new(b"r3");
        let r = resume(&p, PskMode::PskKe, true, 2000, &mut rng).unwrap();
        let recovered = attacker_recoverable(&other, &r);
        assert!(!recovered.traffic_decryptable);
        assert!(!recovered.early_data_decryptable);
    }

    #[test]
    fn no_early_data_means_nothing_to_recover_early() {
        let p = psk(PskIdentityKind::DatabaseLookup);
        let mut rng = HmacDrbg::new(b"r4");
        let r = resume(&p, PskMode::PskDheKe, false, 2000, &mut rng).unwrap();
        assert!(r.early_data_secret.is_none());
        let recovered = attacker_recoverable(&p, &r);
        assert!(!recovered.early_data_decryptable);
        assert!(!recovered.traffic_decryptable);
    }
}
