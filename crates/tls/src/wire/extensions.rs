//! Hello-message extensions (RFC 6066, RFC 5077).
//!
//! The study needs three: server_name (SNI — terminators route on it),
//! session_ticket (RFC 5077 §3.2 — empty to signal support, non-empty to
//! offer resumption), and supported_groups. Unknown extensions round-trip
//! as raw bytes, as a real implementation must.

use crate::error::TlsError;
use bytes::BufMut;

/// A hello extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extension {
    /// server_name(0) — a single DNS hostname.
    ServerName(String),
    /// supported_groups(10) — named group code points.
    SupportedGroups(Vec<u16>),
    /// session_ticket(35) — empty = "I support tickets"; non-empty = offer.
    SessionTicket(Vec<u8>),
    /// Anything else, preserved verbatim.
    Unknown {
        /// Extension type code point.
        ext_type: u16,
        /// Raw extension data.
        data: Vec<u8>,
    },
}

impl Extension {
    /// The extension's type code point.
    pub fn ext_type(&self) -> u16 {
        match self {
            Extension::ServerName(_) => 0,
            Extension::SupportedGroups(_) => 10,
            Extension::SessionTicket(_) => 35,
            Extension::Unknown { ext_type, .. } => *ext_type,
        }
    }

    fn data_bytes(&self) -> Vec<u8> {
        match self {
            Extension::ServerName(name) => {
                // ServerNameList: u16 list len, type 0 (host_name), u16 name len, name.
                let mut out = Vec::with_capacity(name.len() + 5);
                out.put_u16(name.len() as u16 + 3);
                out.push(0);
                out.put_u16(name.len() as u16);
                out.extend_from_slice(name.as_bytes());
                out
            }
            Extension::SupportedGroups(groups) => {
                let mut out = Vec::with_capacity(groups.len() * 2 + 2);
                out.put_u16(groups.len() as u16 * 2);
                for g in groups {
                    out.put_u16(*g);
                }
                out
            }
            Extension::SessionTicket(ticket) => ticket.clone(),
            Extension::Unknown { data, .. } => data.clone(),
        }
    }

    /// Encode this extension (type, length, data) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let data = self.data_bytes();
        out.put_u16(self.ext_type());
        out.put_u16(data.len() as u16);
        out.extend_from_slice(&data);
    }

    fn decode_one(ext_type: u16, data: &[u8]) -> Result<Extension, TlsError> {
        match ext_type {
            0 => {
                if data.len() < 5 {
                    return Err(TlsError::Decode("short server_name"));
                }
                let list_len = u16::from_be_bytes([data[0], data[1]]) as usize;
                if list_len + 2 != data.len() || data[2] != 0 {
                    return Err(TlsError::Decode("malformed server_name list"));
                }
                let name_len = u16::from_be_bytes([data[3], data[4]]) as usize;
                if 5 + name_len != data.len() {
                    return Err(TlsError::Decode("server_name length mismatch"));
                }
                let name = std::str::from_utf8(&data[5..])
                    .map_err(|_| TlsError::Decode("server_name not UTF-8"))?;
                Ok(Extension::ServerName(name.to_string()))
            }
            10 => {
                if data.len() < 2 {
                    return Err(TlsError::Decode("short supported_groups"));
                }
                let list_len = u16::from_be_bytes([data[0], data[1]]) as usize;
                if list_len + 2 != data.len() || list_len % 2 != 0 {
                    return Err(TlsError::Decode("malformed supported_groups"));
                }
                let groups = data[2..]
                    .chunks_exact(2)
                    .map(|c| u16::from_be_bytes([c[0], c[1]]))
                    .collect();
                Ok(Extension::SupportedGroups(groups))
            }
            35 => Ok(Extension::SessionTicket(data.to_vec())),
            other => Ok(Extension::Unknown {
                ext_type: other,
                data: data.to_vec(),
            }),
        }
    }
}

/// Encode an extensions block (u16 total length + extensions). Omitted
/// entirely when `exts` is empty, per RFC 5246.
pub fn encode_extensions(exts: &[Extension], out: &mut Vec<u8>) {
    if exts.is_empty() {
        return;
    }
    let mut body = Vec::new();
    for e in exts {
        e.encode(&mut body);
    }
    out.put_u16(body.len() as u16);
    out.extend_from_slice(&body);
}

/// Decode an extensions block from the tail of a hello message. An empty
/// slice means "no extensions". Rejects trailing garbage.
pub fn decode_extensions(data: &[u8]) -> Result<Vec<Extension>, TlsError> {
    if data.is_empty() {
        return Ok(Vec::new());
    }
    if data.len() < 2 {
        return Err(TlsError::Decode("truncated extensions length"));
    }
    let total = u16::from_be_bytes([data[0], data[1]]) as usize;
    if total + 2 != data.len() {
        return Err(TlsError::Decode("extensions length mismatch"));
    }
    let mut rest = &data[2..];
    let mut out = Vec::new();
    while !rest.is_empty() {
        if rest.len() < 4 {
            return Err(TlsError::Decode("truncated extension header"));
        }
        let ext_type = u16::from_be_bytes([rest[0], rest[1]]);
        let len = u16::from_be_bytes([rest[2], rest[3]]) as usize;
        if rest.len() < 4 + len {
            return Err(TlsError::Decode("truncated extension body"));
        }
        out.push(Extension::decode_one(ext_type, &rest[4..4 + len])?);
        rest = &rest[4 + len..];
    }
    Ok(out)
}

/// Find the session_ticket extension in a decoded list.
pub fn find_session_ticket(exts: &[Extension]) -> Option<&[u8]> {
    exts.iter().find_map(|e| match e {
        Extension::SessionTicket(t) => Some(t.as_slice()),
        _ => None,
    })
}

/// Find the SNI hostname in a decoded list.
pub fn find_server_name(exts: &[Extension]) -> Option<&str> {
    exts.iter().find_map(|e| match e {
        Extension::ServerName(n) => Some(n.as_str()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(exts: Vec<Extension>) -> Vec<Extension> {
        let mut buf = Vec::new();
        encode_extensions(&exts, &mut buf);
        decode_extensions(&buf).unwrap()
    }

    #[test]
    fn empty_block_roundtrip() {
        assert_eq!(roundtrip(vec![]), vec![]);
    }

    #[test]
    fn sni_roundtrip() {
        let exts = vec![Extension::ServerName("www.example.sim".into())];
        assert_eq!(roundtrip(exts.clone()), exts);
    }

    #[test]
    fn ticket_roundtrip_empty_and_full() {
        let exts = vec![Extension::SessionTicket(vec![])];
        assert_eq!(roundtrip(exts.clone()), exts);
        let exts = vec![Extension::SessionTicket(vec![1, 2, 3, 4])];
        assert_eq!(roundtrip(exts.clone()), exts);
    }

    #[test]
    fn groups_roundtrip() {
        let exts = vec![Extension::SupportedGroups(vec![0x001d, 0x0100])];
        assert_eq!(roundtrip(exts.clone()), exts);
    }

    #[test]
    fn unknown_preserved() {
        let exts = vec![Extension::Unknown {
            ext_type: 0xff01,
            data: vec![9, 9],
        }];
        assert_eq!(roundtrip(exts.clone()), exts);
    }

    #[test]
    fn mixed_extension_list_order_preserved() {
        let exts = vec![
            Extension::ServerName("a.sim".into()),
            Extension::SessionTicket(vec![]),
            Extension::SupportedGroups(vec![29]),
            Extension::Unknown {
                ext_type: 1234,
                data: vec![],
            },
        ];
        assert_eq!(roundtrip(exts.clone()), exts);
    }

    #[test]
    fn finders() {
        let exts = vec![
            Extension::ServerName("host.sim".into()),
            Extension::SessionTicket(vec![7, 7]),
        ];
        assert_eq!(find_server_name(&exts), Some("host.sim"));
        assert_eq!(find_session_ticket(&exts), Some(&[7u8, 7][..]));
        assert_eq!(find_server_name(&[]), None);
        assert_eq!(find_session_ticket(&[]), None);
    }

    #[test]
    fn malformed_blocks_rejected() {
        assert!(decode_extensions(&[0]).is_err(), "1-byte block");
        assert!(
            decode_extensions(&[0, 10, 0, 0]).is_err(),
            "length mismatch"
        );
        // Truncated extension body.
        let mut buf = Vec::new();
        encode_extensions(&[Extension::SessionTicket(vec![1, 2, 3])], &mut buf);
        buf.truncate(buf.len() - 1);
        buf[1] -= 1; // fix outer length so the inner body is short
        assert!(decode_extensions(&buf).is_err());
    }

    #[test]
    fn malformed_sni_rejected() {
        // server_name with wrong inner lengths.
        let bad = [0u8, 0, 0, 4, 0, 0, 0, 9]; // type 0, len 4, garbage
        assert!(decode_extensions(&{
            let mut b = vec![0, 8];
            b.extend_from_slice(&bad);
            b
        })
        .is_err());
    }
}
