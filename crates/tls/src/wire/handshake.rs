//! Handshake messages (RFC 5246 §7.4, RFC 5077 §3.3).
//!
//! Each message knows how to encode itself into the 4-byte handshake
//! header format (`msg_type(1) || length(3) || body`) and decode strictly.
//! The scanner relies on byte-exact access to the fields the paper
//! measures: ServerHello session IDs, ServerKeyExchange public values, and
//! NewSessionTicket contents.

use crate::error::TlsError;
use crate::suites::CipherSuite;
use crate::wire::extensions::{decode_extensions, encode_extensions, Extension};
use bytes::BufMut;

/// Length of hello random values.
pub const RANDOM_LEN: usize = 32;

/// Handshake message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeType {
    /// client_hello(1)
    ClientHello,
    /// server_hello(2)
    ServerHello,
    /// new_session_ticket(4)
    NewSessionTicket,
    /// certificate(11)
    Certificate,
    /// server_key_exchange(12)
    ServerKeyExchange,
    /// server_hello_done(14)
    ServerHelloDone,
    /// client_key_exchange(16)
    ClientKeyExchange,
    /// finished(20)
    Finished,
}

impl HandshakeType {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            HandshakeType::ClientHello => 1,
            HandshakeType::ServerHello => 2,
            HandshakeType::NewSessionTicket => 4,
            HandshakeType::Certificate => 11,
            HandshakeType::ServerKeyExchange => 12,
            HandshakeType::ServerHelloDone => 14,
            HandshakeType::ClientKeyExchange => 16,
            HandshakeType::Finished => 20,
        }
    }

    /// From wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(HandshakeType::ClientHello),
            2 => Some(HandshakeType::ServerHello),
            4 => Some(HandshakeType::NewSessionTicket),
            11 => Some(HandshakeType::Certificate),
            12 => Some(HandshakeType::ServerKeyExchange),
            14 => Some(HandshakeType::ServerHelloDone),
            16 => Some(HandshakeType::ClientKeyExchange),
            20 => Some(HandshakeType::Finished),
            _ => None,
        }
    }

    /// Human-readable name (for error reporting).
    pub fn name(self) -> &'static str {
        match self {
            HandshakeType::ClientHello => "ClientHello",
            HandshakeType::ServerHello => "ServerHello",
            HandshakeType::NewSessionTicket => "NewSessionTicket",
            HandshakeType::Certificate => "Certificate",
            HandshakeType::ServerKeyExchange => "ServerKeyExchange",
            HandshakeType::ServerHelloDone => "ServerHelloDone",
            HandshakeType::ClientKeyExchange => "ClientKeyExchange",
            HandshakeType::Finished => "Finished",
        }
    }
}

/// ClientHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// Client random (gmt_unix_time folded in; we use all-random).
    pub random: [u8; RANDOM_LEN],
    /// Session ID offered for resumption (empty = none).
    pub session_id: Vec<u8>,
    /// Offered suites, client preference order.
    pub cipher_suites: Vec<u16>,
    /// Extensions.
    pub extensions: Vec<Extension>,
}

/// ServerHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// Server random.
    pub random: [u8; RANDOM_LEN],
    /// Session ID (echoed on resumption; fresh or empty otherwise).
    pub session_id: Vec<u8>,
    /// Selected suite.
    pub cipher_suite: u16,
    /// Extensions.
    pub extensions: Vec<Extension>,
}

/// Certificate: a chain of DER certificates, leaf first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateMsg {
    /// DER certificates.
    pub chain: Vec<Vec<u8>>,
}

/// Which key-exchange parameters a ServerKeyExchange carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerKexParams {
    /// Finite-field DH: p, g, and the server public Ys.
    Dhe {
        /// Prime modulus bytes.
        p: Vec<u8>,
        /// Generator bytes.
        g: Vec<u8>,
        /// Server public value.
        ys: Vec<u8>,
    },
    /// ECDHE on X25519 (named curve 29): the server public point.
    Ecdhe {
        /// Server public point bytes.
        point: Vec<u8>,
    },
}

impl ServerKexParams {
    /// The server's public key-exchange value — the datum the study's
    /// reuse measurement fingerprints.
    pub fn public_value(&self) -> &[u8] {
        match self {
            ServerKexParams::Dhe { ys, .. } => ys,
            ServerKexParams::Ecdhe { point } => point,
        }
    }
}

/// ServerKeyExchange: parameters plus an RSA signature over
/// client_random || server_random || params.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerKeyExchange {
    /// The Diffie-Hellman parameters.
    pub params: ServerKexParams,
    /// RSA PKCS#1 v1.5 SHA-256 signature.
    pub signature: Vec<u8>,
}

/// ClientKeyExchange payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientKeyExchange {
    /// RSA-encrypted premaster secret.
    Rsa {
        /// Ciphertext.
        encrypted_premaster: Vec<u8>,
    },
    /// Client DH public value.
    Dhe {
        /// Yc bytes.
        yc: Vec<u8>,
    },
    /// Client ECDH point.
    Ecdhe {
        /// Point bytes.
        point: Vec<u8>,
    },
}

/// NewSessionTicket (RFC 5077 §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewSessionTicket {
    /// Lifetime hint in seconds (0 = unspecified, client's policy).
    pub lifetime_hint: u32,
    /// The opaque ticket.
    pub ticket: Vec<u8>,
}

/// Finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finished {
    /// 12-byte verify_data.
    pub verify_data: Vec<u8>,
}

/// Any handshake message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeMessage {
    /// ClientHello
    ClientHello(ClientHello),
    /// ServerHello
    ServerHello(ServerHello),
    /// Certificate
    Certificate(CertificateMsg),
    /// ServerKeyExchange
    ServerKeyExchange(ServerKeyExchange),
    /// ServerHelloDone
    ServerHelloDone,
    /// ClientKeyExchange
    ClientKeyExchange(ClientKeyExchange),
    /// NewSessionTicket
    NewSessionTicket(NewSessionTicket),
    /// Finished
    Finished(Finished),
}

impl HandshakeMessage {
    /// The message's type.
    pub fn msg_type(&self) -> HandshakeType {
        match self {
            HandshakeMessage::ClientHello(_) => HandshakeType::ClientHello,
            HandshakeMessage::ServerHello(_) => HandshakeType::ServerHello,
            HandshakeMessage::Certificate(_) => HandshakeType::Certificate,
            HandshakeMessage::ServerKeyExchange(_) => HandshakeType::ServerKeyExchange,
            HandshakeMessage::ServerHelloDone => HandshakeType::ServerHelloDone,
            HandshakeMessage::ClientKeyExchange(_) => HandshakeType::ClientKeyExchange,
            HandshakeMessage::NewSessionTicket(_) => HandshakeType::NewSessionTicket,
            HandshakeMessage::Finished(_) => HandshakeType::Finished,
        }
    }

    /// Name for diagnostics.
    pub fn name(&self) -> &'static str {
        self.msg_type().name()
    }

    fn body_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            HandshakeMessage::ClientHello(ch) => {
                out.push(3);
                out.push(3); // client_version TLS 1.2
                out.extend_from_slice(&ch.random);
                out.push(ch.session_id.len() as u8);
                out.extend_from_slice(&ch.session_id);
                out.put_u16(ch.cipher_suites.len() as u16 * 2);
                for s in &ch.cipher_suites {
                    out.put_u16(*s);
                }
                out.push(1); // compression methods length
                out.push(0); // null compression
                encode_extensions(&ch.extensions, &mut out);
            }
            HandshakeMessage::ServerHello(sh) => {
                out.push(3);
                out.push(3);
                out.extend_from_slice(&sh.random);
                out.push(sh.session_id.len() as u8);
                out.extend_from_slice(&sh.session_id);
                out.put_u16(sh.cipher_suite);
                out.push(0); // null compression
                encode_extensions(&sh.extensions, &mut out);
            }
            HandshakeMessage::Certificate(c) => {
                let total: usize = c.chain.iter().map(|der| der.len() + 3).sum();
                put_u24(&mut out, total);
                for der in &c.chain {
                    put_u24(&mut out, der.len());
                    out.extend_from_slice(der);
                }
            }
            HandshakeMessage::ServerKeyExchange(ske) => {
                match &ske.params {
                    ServerKexParams::Dhe { p, g, ys } => {
                        out.push(0); // our tag: 0 = FFDHE params
                        out.put_u16(p.len() as u16);
                        out.extend_from_slice(p);
                        out.put_u16(g.len() as u16);
                        out.extend_from_slice(g);
                        out.put_u16(ys.len() as u16);
                        out.extend_from_slice(ys);
                    }
                    ServerKexParams::Ecdhe { point } => {
                        out.push(3); // curve_type named_curve
                        out.put_u16(29); // x25519
                        out.push(point.len() as u8);
                        out.extend_from_slice(point);
                    }
                }
                out.put_u16(ske.signature.len() as u16);
                out.extend_from_slice(&ske.signature);
            }
            HandshakeMessage::ServerHelloDone => {}
            HandshakeMessage::ClientKeyExchange(cke) => match cke {
                ClientKeyExchange::Rsa {
                    encrypted_premaster,
                } => {
                    out.put_u16(encrypted_premaster.len() as u16);
                    out.extend_from_slice(encrypted_premaster);
                }
                ClientKeyExchange::Dhe { yc } => {
                    out.put_u16(yc.len() as u16);
                    out.extend_from_slice(yc);
                }
                ClientKeyExchange::Ecdhe { point } => {
                    out.push(point.len() as u8);
                    out.extend_from_slice(point);
                }
            },
            HandshakeMessage::NewSessionTicket(nst) => {
                out.put_u32(nst.lifetime_hint);
                out.put_u16(nst.ticket.len() as u16);
                out.extend_from_slice(&nst.ticket);
            }
            HandshakeMessage::Finished(f) => {
                out.extend_from_slice(&f.verify_data);
            }
        }
        out
    }

    /// Encode with the 4-byte handshake header.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.body_bytes();
        let mut out = Vec::with_capacity(body.len() + 4);
        out.push(self.msg_type().to_byte());
        put_u24(&mut out, body.len());
        out.extend_from_slice(&body);
        out
    }

    /// Decode one handshake message from the front of `data`.
    /// Returns the message and the number of bytes consumed, or `Ok(None)`
    /// when more bytes are needed. The "suite hint" disambiguates
    /// ClientKeyExchange bodies, which are not self-describing in TLS.
    pub fn decode(
        data: &[u8],
        cke_suite_hint: Option<CipherSuite>,
    ) -> Result<Option<(HandshakeMessage, usize)>, TlsError> {
        if data.len() < 4 {
            return Ok(None);
        }
        let msg_type =
            HandshakeType::from_byte(data[0]).ok_or(TlsError::Decode("unknown handshake type"))?;
        let len = get_u24(&data[1..4]);
        if data.len() < 4 + len {
            return Ok(None);
        }
        let body = &data[4..4 + len];
        let msg = Self::decode_body(msg_type, body, cke_suite_hint)?;
        Ok(Some((msg, 4 + len)))
    }

    fn decode_body(
        msg_type: HandshakeType,
        body: &[u8],
        cke_suite_hint: Option<CipherSuite>,
    ) -> Result<HandshakeMessage, TlsError> {
        let mut r = Cursor::new(body);
        let msg = match msg_type {
            HandshakeType::ClientHello => {
                let ver = (r.u8()?, r.u8()?);
                if ver != (3, 3) {
                    return Err(TlsError::Decode("unsupported client_version"));
                }
                let random = r.array::<RANDOM_LEN>()?;
                let sid_len = r.u8()? as usize;
                if sid_len > 32 {
                    return Err(TlsError::Decode("session_id too long"));
                }
                let session_id = r.take(sid_len)?.to_vec();
                let suites_len = r.u16()? as usize;
                if suites_len % 2 != 0 {
                    return Err(TlsError::Decode("odd cipher_suites length"));
                }
                let suites_bytes = r.take(suites_len)?;
                let cipher_suites = suites_bytes
                    .chunks_exact(2)
                    .map(|c| u16::from_be_bytes([c[0], c[1]]))
                    .collect();
                let comp_len = r.u8()? as usize;
                let comps = r.take(comp_len)?;
                if !comps.contains(&0) {
                    return Err(TlsError::Decode("null compression not offered"));
                }
                let extensions = decode_extensions(r.rest())?;
                HandshakeMessage::ClientHello(ClientHello {
                    random,
                    session_id,
                    cipher_suites,
                    extensions,
                })
            }
            HandshakeType::ServerHello => {
                let ver = (r.u8()?, r.u8()?);
                if ver != (3, 3) {
                    return Err(TlsError::Decode("unsupported server_version"));
                }
                let random = r.array::<RANDOM_LEN>()?;
                let sid_len = r.u8()? as usize;
                if sid_len > 32 {
                    return Err(TlsError::Decode("session_id too long"));
                }
                let session_id = r.take(sid_len)?.to_vec();
                let cipher_suite = r.u16()?;
                let comp = r.u8()?;
                if comp != 0 {
                    return Err(TlsError::Decode("non-null compression selected"));
                }
                let extensions = decode_extensions(r.rest())?;
                HandshakeMessage::ServerHello(ServerHello {
                    random,
                    session_id,
                    cipher_suite,
                    extensions,
                })
            }
            HandshakeType::Certificate => {
                let total = r.u24()?;
                let mut list = Cursor::new(r.take(total)?);
                let mut chain = Vec::new();
                while !list.is_empty() {
                    let len = list.u24()?;
                    chain.push(list.take(len)?.to_vec());
                }
                r.expect_empty()?;
                HandshakeMessage::Certificate(CertificateMsg { chain })
            }
            HandshakeType::ServerKeyExchange => {
                let tag = r.u8()?;
                let params = match tag {
                    0 => {
                        let p_len = r.u16()? as usize;
                        let p = r.take(p_len)?.to_vec();
                        let g_len = r.u16()? as usize;
                        let g = r.take(g_len)?.to_vec();
                        let ys_len = r.u16()? as usize;
                        let ys = r.take(ys_len)?.to_vec();
                        ServerKexParams::Dhe { p, g, ys }
                    }
                    3 => {
                        let curve = r.u16()?;
                        if curve != 29 {
                            return Err(TlsError::Decode("unsupported named curve"));
                        }
                        let len = r.u8()? as usize;
                        ServerKexParams::Ecdhe {
                            point: r.take(len)?.to_vec(),
                        }
                    }
                    _ => return Err(TlsError::Decode("unknown curve_type")),
                };
                let sig_len = r.u16()? as usize;
                let signature = r.take(sig_len)?.to_vec();
                r.expect_empty()?;
                HandshakeMessage::ServerKeyExchange(ServerKeyExchange { params, signature })
            }
            HandshakeType::ServerHelloDone => {
                r.expect_empty()?;
                HandshakeMessage::ServerHelloDone
            }
            HandshakeType::ClientKeyExchange => {
                use crate::suites::KeyExchange;
                let suite = cke_suite_hint
                    .ok_or(TlsError::Decode("ClientKeyExchange without suite context"))?;
                let cke = match suite.key_exchange() {
                    KeyExchange::Rsa => {
                        let len = r.u16()? as usize;
                        ClientKeyExchange::Rsa {
                            encrypted_premaster: r.take(len)?.to_vec(),
                        }
                    }
                    KeyExchange::Dhe => {
                        let len = r.u16()? as usize;
                        ClientKeyExchange::Dhe {
                            yc: r.take(len)?.to_vec(),
                        }
                    }
                    KeyExchange::Ecdhe => {
                        let len = r.u8()? as usize;
                        ClientKeyExchange::Ecdhe {
                            point: r.take(len)?.to_vec(),
                        }
                    }
                };
                r.expect_empty()?;
                HandshakeMessage::ClientKeyExchange(cke)
            }
            HandshakeType::NewSessionTicket => {
                let lifetime_hint = r.u32()?;
                let len = r.u16()? as usize;
                let ticket = r.take(len)?.to_vec();
                r.expect_empty()?;
                HandshakeMessage::NewSessionTicket(NewSessionTicket {
                    lifetime_hint,
                    ticket,
                })
            }
            HandshakeType::Finished => {
                let verify_data = r.rest().to_vec();
                if verify_data.len() != 12 {
                    return Err(TlsError::Decode("Finished verify_data length"));
                }
                HandshakeMessage::Finished(Finished { verify_data })
            }
        };
        Ok(msg)
    }
}

fn put_u24(out: &mut Vec<u8>, v: usize) {
    assert!(v < 1 << 24, "u24 overflow");
    out.push((v >> 16) as u8);
    out.push((v >> 8) as u8);
    out.push(v as u8);
}

fn get_u24(b: &[u8]) -> usize {
    ((b[0] as usize) << 16) | ((b[1] as usize) << 8) | b[2] as usize
}

/// Minimal strict cursor.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TlsError> {
        if self.pos + n > self.data.len() {
            return Err(TlsError::Decode("truncated handshake body"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, TlsError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TlsError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u24(&mut self) -> Result<usize, TlsError> {
        let b = self.take(3)?;
        Ok(get_u24(b))
    }

    fn u32(&mut self) -> Result<u32, TlsError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], TlsError> {
        Ok(self.take(N)?.try_into().expect("length checked"))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.data[self.pos..];
        self.pos = self.data.len();
        out
    }

    fn expect_empty(&self) -> Result<(), TlsError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(TlsError::Decode("trailing bytes in handshake body"))
        }
    }
}

/// Incremental reassembler for handshake messages arriving via records.
#[derive(Default)]
pub struct HandshakeReassembler {
    buf: Vec<u8>,
}

impl HandshakeReassembler {
    /// New empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append record payload bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete message, if any.
    pub fn next(
        &mut self,
        cke_suite_hint: Option<CipherSuite>,
    ) -> Result<Option<HandshakeMessage>, TlsError> {
        match HandshakeMessage::decode(&self.buf, cke_suite_hint)? {
            Some((msg, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }

    /// True when no partial message is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: HandshakeMessage, hint: Option<CipherSuite>) {
        let enc = msg.encode();
        let (decoded, consumed) = HandshakeMessage::decode(&enc, hint).unwrap().unwrap();
        assert_eq!(consumed, enc.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn client_hello_roundtrip() {
        roundtrip(
            HandshakeMessage::ClientHello(ClientHello {
                random: [7u8; 32],
                session_id: vec![1, 2, 3],
                cipher_suites: vec![0xc027, 0x003c],
                extensions: vec![
                    Extension::ServerName("x.sim".into()),
                    Extension::SessionTicket(vec![]),
                ],
            }),
            None,
        );
    }

    #[test]
    fn client_hello_empty_session_and_exts() {
        roundtrip(
            HandshakeMessage::ClientHello(ClientHello {
                random: [0u8; 32],
                session_id: vec![],
                cipher_suites: vec![0x003c],
                extensions: vec![],
            }),
            None,
        );
    }

    #[test]
    fn server_hello_roundtrip() {
        roundtrip(
            HandshakeMessage::ServerHello(ServerHello {
                random: [9u8; 32],
                session_id: vec![0xaa; 32],
                cipher_suite: 0xcca8,
                extensions: vec![Extension::SessionTicket(vec![])],
            }),
            None,
        );
    }

    #[test]
    fn certificate_roundtrip() {
        roundtrip(
            HandshakeMessage::Certificate(CertificateMsg {
                chain: vec![vec![1, 2, 3], vec![4, 5], vec![]],
            }),
            None,
        );
        roundtrip(
            HandshakeMessage::Certificate(CertificateMsg { chain: vec![] }),
            None,
        );
    }

    #[test]
    fn ske_dhe_roundtrip() {
        roundtrip(
            HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
                params: ServerKexParams::Dhe {
                    p: vec![0xff; 32],
                    g: vec![2],
                    ys: vec![0xab; 32],
                },
                signature: vec![0xcd; 64],
            }),
            None,
        );
    }

    #[test]
    fn ske_ecdhe_roundtrip() {
        roundtrip(
            HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
                params: ServerKexParams::Ecdhe {
                    point: vec![0x42; 32],
                },
                signature: vec![0xee; 64],
            }),
            None,
        );
    }

    #[test]
    fn cke_variants_roundtrip() {
        roundtrip(
            HandshakeMessage::ClientKeyExchange(ClientKeyExchange::Rsa {
                encrypted_premaster: vec![1; 64],
            }),
            Some(CipherSuite::RsaAes128CbcSha256),
        );
        roundtrip(
            HandshakeMessage::ClientKeyExchange(ClientKeyExchange::Dhe { yc: vec![2; 32] }),
            Some(CipherSuite::DheRsaAes128CbcSha256),
        );
        roundtrip(
            HandshakeMessage::ClientKeyExchange(ClientKeyExchange::Ecdhe { point: vec![3; 32] }),
            Some(CipherSuite::EcdheRsaChaCha20Poly1305),
        );
    }

    #[test]
    fn cke_without_hint_fails() {
        let msg = HandshakeMessage::ClientKeyExchange(ClientKeyExchange::Dhe { yc: vec![1] });
        let enc = msg.encode();
        assert!(HandshakeMessage::decode(&enc, None).is_err());
    }

    #[test]
    fn nst_roundtrip() {
        roundtrip(
            HandshakeMessage::NewSessionTicket(NewSessionTicket {
                lifetime_hint: 100_800, // Google's 28 hours
                ticket: vec![0x5a; 120],
            }),
            None,
        );
        roundtrip(
            HandshakeMessage::NewSessionTicket(NewSessionTicket {
                lifetime_hint: 0,
                ticket: vec![],
            }),
            None,
        );
    }

    #[test]
    fn finished_and_done_roundtrip() {
        roundtrip(
            HandshakeMessage::Finished(Finished {
                verify_data: vec![1; 12],
            }),
            None,
        );
        roundtrip(HandshakeMessage::ServerHelloDone, None);
    }

    #[test]
    fn finished_wrong_length_rejected() {
        let mut enc = HandshakeMessage::Finished(Finished {
            verify_data: vec![1; 12],
        })
        .encode();
        enc[3] = 11; // shrink declared body length
        enc.truncate(4 + 11);
        assert!(HandshakeMessage::decode(&enc, None).is_err());
    }

    #[test]
    fn partial_input_returns_none() {
        let enc = HandshakeMessage::ServerHelloDone.encode();
        assert!(HandshakeMessage::decode(&enc[..2], None).unwrap().is_none());
    }

    #[test]
    fn trailing_garbage_in_body_rejected() {
        // ServerHelloDone with a non-empty body.
        let bad = [14u8, 0, 0, 1, 0xff];
        assert!(HandshakeMessage::decode(&bad, None).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let bad = [99u8, 0, 0, 0];
        assert!(HandshakeMessage::decode(&bad, None).is_err());
    }

    #[test]
    fn reassembler_handles_split_messages() {
        let m1 = HandshakeMessage::ServerHelloDone.encode();
        let m2 = HandshakeMessage::Finished(Finished {
            verify_data: vec![2; 12],
        })
        .encode();
        let mut all = m1.clone();
        all.extend_from_slice(&m2);
        let mut r = HandshakeReassembler::new();
        // Feed in awkward chunks.
        for chunk in all.chunks(3) {
            r.feed(chunk);
        }
        assert_eq!(
            r.next(None).unwrap().unwrap(),
            HandshakeMessage::ServerHelloDone
        );
        assert_eq!(
            r.next(None).unwrap().unwrap(),
            HandshakeMessage::Finished(Finished {
                verify_data: vec![2; 12]
            })
        );
        assert!(r.next(None).unwrap().is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn session_id_over_32_rejected() {
        let ch = HandshakeMessage::ClientHello(ClientHello {
            random: [0; 32],
            session_id: vec![1; 32],
            cipher_suites: vec![0x003c],
            extensions: vec![],
        });
        let mut enc = ch.encode();
        // Corrupt the session_id length byte to 33.
        enc[4 + 2 + 32] = 33;
        assert!(HandshakeMessage::decode(&enc, None).is_err());
    }
}
