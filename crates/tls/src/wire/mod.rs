//! TLS wire format: records, handshake messages, extensions.
//!
//! Style follows smoltcp: typed message structs with explicit `encode` /
//! `decode`, strict length checking, and no hidden state. All multi-byte
//! integers are big-endian as in RFC 5246.

pub mod extensions;
pub mod handshake;
pub mod record;

pub use extensions::Extension;
pub use handshake::HandshakeMessage;
pub use record::{ContentType, Record, RecordLayer, MAX_FRAGMENT_LEN, PROTOCOL_VERSION};
