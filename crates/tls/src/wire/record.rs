//! The TLS record layer (RFC 5246 §6.2).
//!
//! Records carry a content type, protocol version, and a length-prefixed
//! fragment of at most 2^14 bytes. [`RecordLayer`] handles framing in both
//! directions over plain byte buffers (the sans-io boundary) plus record
//! protection once keys are active.

use crate::error::TlsError;
use crate::suites::RecordProtection;
use bytes::{Buf, BufMut, BytesMut};
use ts_crypto::aead;

/// Maximum plaintext fragment length (2^14).
pub const MAX_FRAGMENT_LEN: usize = 16_384;

/// The protocol version we speak (TLS 1.2 = 3.3).
pub const PROTOCOL_VERSION: (u8, u8) = (3, 3);

/// Record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentType {
    /// change_cipher_spec(20)
    ChangeCipherSpec,
    /// alert(21)
    Alert,
    /// handshake(22)
    Handshake,
    /// application_data(23)
    ApplicationData,
}

impl ContentType {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }

    /// From wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            20 => Some(ContentType::ChangeCipherSpec),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            _ => None,
        }
    }
}

/// A plaintext record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub content_type: ContentType,
    /// Payload (decrypted if protection was active).
    pub payload: Vec<u8>,
}

/// Per-direction record protection keys.
///
/// Wipes itself on drop: connection teardown (and eviction of any
/// [`crate::keys::ConnectionKeys`] holding a pair of these) scrubs the
/// traffic keys rather than leaving them for a later memory compromise.
// ctlint: secret
#[derive(Clone)]
pub struct DirectionKeys {
    /// Protection algorithm.
    pub protection: RecordProtection,
    /// MAC key (CBC-HMAC only; empty for AEAD).
    pub mac_key: Vec<u8>,
    /// Encryption key.
    pub enc_key: Vec<u8>,
    /// Fixed IV.
    pub fixed_iv: Vec<u8>,
}

impl ts_crypto::wipe::Wipe for DirectionKeys {
    fn wipe(&mut self) {
        ts_crypto::wipe::wipe_bytes(&mut self.mac_key);
        ts_crypto::wipe::wipe_bytes(&mut self.enc_key);
        ts_crypto::wipe::wipe_bytes(&mut self.fixed_iv);
    }
}

impl Drop for DirectionKeys {
    fn drop(&mut self) {
        use ts_crypto::wipe::Wipe;
        self.wipe();
    }
}

impl DirectionKeys {
    fn seal(&self, seq: u64, content_type: ContentType, plaintext: &[u8]) -> Vec<u8> {
        let aad = record_aad(seq, content_type, plaintext.len());
        match self.protection {
            RecordProtection::ChaCha20Poly1305 => {
                let key: &[u8; 32] = self.enc_key[..32].try_into().expect("key len");
                let nonce = xor_nonce(&self.fixed_iv, seq);
                aead::chacha20poly1305_seal(key, &nonce, &aad, plaintext)
            }
            RecordProtection::Aes128Gcm => {
                let key: &[u8; 16] = self.enc_key[..16].try_into().expect("key len");
                // Real TLS 1.2 GCM sends an explicit 8-byte nonce part; the
                // simulation derives the per-record nonce as fixed-IV XOR
                // sequence (the ChaCha20 construction), which is equivalent
                // for the measurement and keeps records deterministic.
                let nonce = xor_nonce(&self.fixed_iv, seq);
                aead::aes128gcm_seal(key, &nonce, &aad, plaintext)
            }
            RecordProtection::CbcHmacSha256 => {
                let enc_key: &[u8; 16] = self.enc_key[..16].try_into().expect("key len");
                let mac_key: &[u8; 32] = self.mac_key[..32].try_into().expect("mac len");
                // Per-record IV derived from fixed IV + sequence (real TLS
                // sends an explicit random IV; a derived IV is equivalent
                // for the simulation and keeps records deterministic).
                let mut iv = [0u8; 16];
                iv.copy_from_slice(&self.fixed_iv[..16]);
                for (i, b) in seq.to_be_bytes().iter().enumerate() {
                    iv[8 + i] ^= b;
                }
                aead::cbc_hmac_seal(enc_key, mac_key, &iv, &aad, plaintext)
            }
        }
    }

    fn open(
        &self,
        seq: u64,
        content_type: ContentType,
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, TlsError> {
        // The AAD commits to the *plaintext* length in real TLS 1.2 AEAD;
        // we commit to zero and bind length through the MAC input instead,
        // so the AAD is computable before decryption.
        let aad = record_aad(seq, content_type, 0);
        match self.protection {
            RecordProtection::ChaCha20Poly1305 => {
                let key: &[u8; 32] = self.enc_key[..32].try_into().expect("key len");
                let nonce = xor_nonce(&self.fixed_iv, seq);
                aead::chacha20poly1305_open(key, &nonce, &aad, ciphertext).map_err(Into::into)
            }
            RecordProtection::Aes128Gcm => {
                let key: &[u8; 16] = self.enc_key[..16].try_into().expect("key len");
                let nonce = xor_nonce(&self.fixed_iv, seq);
                aead::aes128gcm_open(key, &nonce, &aad, ciphertext).map_err(Into::into)
            }
            RecordProtection::CbcHmacSha256 => {
                let enc_key: &[u8; 16] = self.enc_key[..16].try_into().expect("key len");
                let mac_key: &[u8; 32] = self.mac_key[..32].try_into().expect("mac len");
                aead::cbc_hmac_open(enc_key, mac_key, &aad, ciphertext).map_err(Into::into)
            }
        }
    }
}

/// AAD = seq(8) || type(1) || version(2). Length is bound by the MAC body.
fn record_aad(seq: u64, content_type: ContentType, _len: usize) -> Vec<u8> {
    let mut aad = Vec::with_capacity(11);
    aad.extend_from_slice(&seq.to_be_bytes());
    aad.push(content_type.to_byte());
    aad.push(PROTOCOL_VERSION.0);
    aad.push(PROTOCOL_VERSION.1);
    aad
}

fn xor_nonce(fixed_iv: &[u8], seq: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&fixed_iv[..12]);
    for (i, b) in seq.to_be_bytes().iter().enumerate() {
        nonce[4 + i] ^= b;
    }
    nonce
}

/// Decrypt a captured protected record body out-of-band — the attacker's
/// primitive: given recovered direction keys and the record's sequence
/// number within its direction, recover the plaintext (§6).
pub fn decrypt_captured(
    keys: &DirectionKeys,
    seq: u64,
    content_type: ContentType,
    body: &[u8],
) -> Result<Vec<u8>, TlsError> {
    keys.open(seq, content_type, body)
}

/// Framing plus optional protection for one connection end.
pub struct RecordLayer {
    // Reassembly buffer of raw transport bytes — by definition what the
    // network already carried.
    // ctlint: public
    incoming: BytesMut,
    read_keys: Option<DirectionKeys>,
    write_keys: Option<DirectionKeys>,
    read_seq: u64,
    write_seq: u64,
}

impl Default for RecordLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordLayer {
    /// Fresh unprotected record layer.
    pub fn new() -> Self {
        RecordLayer {
            incoming: BytesMut::new(),
            read_keys: None,
            write_keys: None,
            read_seq: 0,
            write_seq: 0,
        }
    }

    /// Activate protection for the write direction (after sending CCS).
    pub fn set_write_keys(&mut self, keys: DirectionKeys) {
        self.write_keys = Some(keys);
        self.write_seq = 0;
    }

    /// Activate protection for the read direction (after receiving CCS).
    pub fn set_read_keys(&mut self, keys: DirectionKeys) {
        self.read_keys = Some(keys);
        self.read_seq = 0;
    }

    /// True once write protection is active.
    pub fn write_protected(&self) -> bool {
        self.write_keys.is_some()
    }

    /// Frame (and protect, if active) a payload into `out`, fragmenting at
    /// [`MAX_FRAGMENT_LEN`].
    pub fn write_record(&mut self, content_type: ContentType, payload: &[u8], out: &mut Vec<u8>) {
        let mut chunks: Vec<&[u8]> = payload.chunks(MAX_FRAGMENT_LEN).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        for chunk in chunks {
            let body = match &self.write_keys {
                Some(keys) => {
                    let sealed = keys.seal(self.write_seq, content_type, chunk);
                    self.write_seq += 1;
                    sealed
                }
                None => chunk.to_vec(),
            };
            out.push(content_type.to_byte());
            out.push(PROTOCOL_VERSION.0);
            out.push(PROTOCOL_VERSION.1);
            out.put_u16(body.len() as u16);
            out.extend_from_slice(&body);
        }
    }

    /// Feed raw transport bytes into the reassembly buffer.
    pub fn feed(&mut self, data: &[u8]) {
        self.incoming.extend_from_slice(data);
    }

    /// Pop the next complete record, decrypting if protection is active.
    /// Returns `Ok(None)` when more bytes are needed.
    pub fn next_record(&mut self) -> Result<Option<Record>, TlsError> {
        if self.incoming.len() < 5 {
            return Ok(None);
        }
        let content_type = ContentType::from_byte(self.incoming[0])
            .ok_or(TlsError::Decode("unknown content type"))?;
        if self.incoming[1] != PROTOCOL_VERSION.0 || self.incoming[2] != PROTOCOL_VERSION.1 {
            return Err(TlsError::Decode("unsupported record version"));
        }
        let len = u16::from_be_bytes([self.incoming[3], self.incoming[4]]) as usize;
        if len > MAX_FRAGMENT_LEN + 1024 {
            return Err(TlsError::Decode("record too long"));
        }
        if self.incoming.len() < 5 + len {
            return Ok(None);
        }
        self.incoming.advance(5);
        let body = self.incoming.split_to(len).to_vec();
        let payload = match &self.read_keys {
            Some(keys) => {
                let pt = keys.open(self.read_seq, content_type, &body)?;
                self.read_seq += 1;
                pt
            }
            None => body,
        };
        Ok(Some(Record {
            content_type,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cbc_keys(tag: u8) -> DirectionKeys {
        DirectionKeys {
            protection: RecordProtection::CbcHmacSha256,
            mac_key: vec![tag; 32],
            enc_key: vec![tag; 16],
            fixed_iv: vec![tag; 16],
        }
    }

    fn chacha_keys(tag: u8) -> DirectionKeys {
        DirectionKeys {
            protection: RecordProtection::ChaCha20Poly1305,
            mac_key: vec![],
            enc_key: vec![tag; 32],
            fixed_iv: vec![tag; 12],
        }
    }

    fn gcm_keys(tag: u8) -> DirectionKeys {
        DirectionKeys {
            protection: RecordProtection::Aes128Gcm,
            mac_key: vec![],
            enc_key: vec![tag; 16],
            fixed_iv: vec![tag; 12],
        }
    }

    #[test]
    fn plaintext_roundtrip() {
        let mut a = RecordLayer::new();
        let mut b = RecordLayer::new();
        let mut wire = Vec::new();
        a.write_record(ContentType::Handshake, b"hello", &mut wire);
        b.feed(&wire);
        let rec = b.next_record().unwrap().unwrap();
        assert_eq!(rec.content_type, ContentType::Handshake);
        assert_eq!(rec.payload, b"hello");
        assert!(b.next_record().unwrap().is_none());
    }

    #[test]
    fn partial_feed_needs_more_bytes() {
        let mut a = RecordLayer::new();
        let mut b = RecordLayer::new();
        let mut wire = Vec::new();
        a.write_record(ContentType::Alert, &[1, 0], &mut wire);
        b.feed(&wire[..3]);
        assert!(b.next_record().unwrap().is_none());
        b.feed(&wire[3..]);
        assert!(b.next_record().unwrap().is_some());
    }

    #[test]
    fn protected_roundtrip_all_algorithms() {
        for (mk, desc) in [
            (cbc_keys as fn(u8) -> DirectionKeys, "cbc"),
            (gcm_keys as fn(u8) -> DirectionKeys, "gcm"),
            (chacha_keys as fn(u8) -> DirectionKeys, "chacha"),
        ] {
            let mut writer = RecordLayer::new();
            let mut reader = RecordLayer::new();
            writer.set_write_keys(mk(7));
            reader.set_read_keys(mk(7));
            let mut wire = Vec::new();
            writer.write_record(ContentType::ApplicationData, b"secret data", &mut wire);
            // Ciphertext must differ from plaintext.
            assert!(!wire.windows(11).any(|w| w == b"secret data"), "{desc}");
            reader.feed(&wire);
            let rec = reader.next_record().unwrap().unwrap();
            assert_eq!(rec.payload, b"secret data", "{desc}");
        }
    }

    #[test]
    fn sequence_numbers_prevent_replay() {
        let mut writer = RecordLayer::new();
        writer.set_write_keys(chacha_keys(1));
        let mut wire = Vec::new();
        writer.write_record(ContentType::ApplicationData, b"msg", &mut wire);
        // Feed the same record twice to the reader: the second decryption
        // uses seq=1 and must fail.
        let mut reader = RecordLayer::new();
        reader.set_read_keys(chacha_keys(1));
        reader.feed(&wire);
        reader.feed(&wire);
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().is_err(), "replayed record rejected");
    }

    #[test]
    fn wrong_keys_rejected() {
        let mut writer = RecordLayer::new();
        writer.set_write_keys(chacha_keys(1));
        let mut wire = Vec::new();
        writer.write_record(ContentType::ApplicationData, b"msg", &mut wire);
        let mut reader = RecordLayer::new();
        reader.set_read_keys(chacha_keys(2));
        reader.feed(&wire);
        assert!(reader.next_record().is_err());
    }

    #[test]
    fn fragmentation_at_max_len() {
        let mut a = RecordLayer::new();
        let mut b = RecordLayer::new();
        let big = vec![0x61u8; MAX_FRAGMENT_LEN * 2 + 100];
        let mut wire = Vec::new();
        a.write_record(ContentType::ApplicationData, &big, &mut wire);
        b.feed(&wire);
        let mut total = Vec::new();
        let mut count = 0;
        while let Some(rec) = b.next_record().unwrap() {
            total.extend_from_slice(&rec.payload);
            count += 1;
        }
        assert_eq!(count, 3);
        assert_eq!(total, big);
    }

    #[test]
    fn empty_payload_still_framed() {
        let mut a = RecordLayer::new();
        let mut b = RecordLayer::new();
        let mut wire = Vec::new();
        a.write_record(ContentType::ChangeCipherSpec, &[], &mut wire);
        assert_eq!(wire.len(), 5);
        b.feed(&wire);
        let rec = b.next_record().unwrap().unwrap();
        assert!(rec.payload.is_empty());
    }

    #[test]
    fn garbage_rejected() {
        let mut b = RecordLayer::new();
        b.feed(&[0xff, 3, 3, 0, 0]);
        assert!(matches!(b.next_record(), Err(TlsError::Decode(_))));
        let mut b = RecordLayer::new();
        b.feed(&[22, 9, 9, 0, 0]);
        assert!(matches!(b.next_record(), Err(TlsError::Decode(_))));
    }

    #[test]
    fn interleaved_records_keep_order() {
        let mut a = RecordLayer::new();
        let mut b = RecordLayer::new();
        let mut wire = Vec::new();
        a.write_record(ContentType::Handshake, b"one", &mut wire);
        a.write_record(ContentType::ApplicationData, b"two", &mut wire);
        b.feed(&wire);
        assert_eq!(b.next_record().unwrap().unwrap().payload, b"one");
        assert_eq!(b.next_record().unwrap().unwrap().payload, b"two");
    }
}
