//! 8-thread contention stress for the sharded `SharedSessionCache`:
//! every thread hammers its own home-shard insert/lookup path while
//! simultaneously driving the cross-shard fallback against its
//! neighbours' sessions, and the final cache contents must match a
//! single-threaded oracle exactly. Runs under the TSan CI leg, where any
//! unsynchronized access across the shard locks becomes a hard failure.

use ts_tls::cache::SharedSessionCache;
use ts_tls::session::SessionState;
use ts_tls::suites::CipherSuite;

const THREADS: usize = 8;
const SESSIONS_PER_THREAD: usize = 32;

fn session(name: &str, t: usize, i: usize) -> SessionState {
    SessionState {
        master_secret: {
            let mut ms = [0u8; 48];
            ms[0] = t as u8;
            ms[1] = i as u8;
            ms
        },
        cipher_suite: CipherSuite::EcdheRsaChaCha20Poly1305,
        established_at: 1,
        server_name: name.into(),
    }
}

fn session_id(t: usize, i: usize) -> Vec<u8> {
    let mut id = vec![0u8; 32];
    id[0] = t as u8;
    id[1] = i as u8;
    id
}

fn sni(t: usize) -> String {
    format!("host{t}.stress.sim")
}

#[test]
fn eight_thread_contention_matches_single_thread_oracle() {
    // Capacity far above the working set: the final contents must then be
    // exactly the inserted set, independent of the interleaving (no
    // evictions to order-depend on).
    let cache = SharedSessionCache::new(300, 4096);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = cache.clone();
            scope.spawn(move || {
                let name = sni(t);
                let neighbour = (t + 1) % THREADS;
                for i in 0..SESSIONS_PER_THREAD {
                    // Home-shard path: insert then immediate same-thread
                    // lookup — the shard mutex makes this a guaranteed hit.
                    cache.insert(&name, session_id(t, i), session(&name, t, i), 1);
                    assert!(
                        cache.lookup(&name, &session_id(t, i), 2).is_some(),
                        "own insert must be visible to its own thread"
                    );
                    // Cross-shard path: probe the neighbour's sessions
                    // under OUR hostname, so the home shard misses and the
                    // fixed-order fallback scan runs concurrently with the
                    // neighbour's inserts. A hit or a miss are both valid
                    // mid-race; the scan must simply stay coherent.
                    if let Some(state) = cache.lookup(&name, &session_id(neighbour, i), 2) {
                        assert_eq!(
                            state.master_secret[0] as usize, neighbour,
                            "cross-shard hit returned someone else's session"
                        );
                    }
                }
            });
        }
    });

    // Single-threaded oracle: same inserts, serial.
    let oracle = SharedSessionCache::new(300, 4096);
    for t in 0..THREADS {
        let name = sni(t);
        for i in 0..SESSIONS_PER_THREAD {
            oracle.insert(&name, session_id(t, i), session(&name, t, i), 1);
        }
    }

    assert_eq!(cache.len(), THREADS * SESSIONS_PER_THREAD);
    assert_eq!(cache.len(), oracle.len());
    // dump_secrets is sorted by session ID, so the comparison is
    // independent of shard layout and insertion interleaving.
    assert_eq!(cache.dump_secrets(), oracle.dump_secrets());

    // Post-quiescence, every session resumes under every hostname (the
    // §5.1 cross-domain property), through home or fallback path alike.
    for t in 0..THREADS {
        for i in 0..SESSIONS_PER_THREAD {
            assert!(
                cache
                    .lookup(&sni((t + 3) % THREADS), &session_id(t, i), 2)
                    .is_some(),
                "cross-domain resumption failed for thread {t} session {i}"
            );
        }
    }
}
