//! The sans-I/O contract: `read_tls` must accept transport bytes in any
//! chunking — single bytes, mid-record cuts, whole flights — and produce
//! exactly the handshake that single-shot delivery produces. The property
//! test drives the same seeded handshake under arbitrary chunk schedules
//! and asserts the transcript hash, master secret, and full wire capture
//! are identical to the reference run.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_tls::config::{ClientConfig, ServerConfig, ServerIdentity};
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::{ClientConn, ConnectionCommon, ServerConn};
use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

/// CA + leaf built once; the per-handshake pieces (ephemeral cache, DRBGs)
/// are reconstructed from fixed seeds per run so every handshake is
/// byte-identical to every other.
struct Env {
    store: Arc<RootStore>,
    identity: Arc<ServerIdentity>,
}

fn env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let mut rng = HmacDrbg::new(b"chunked-io-env");
        let ca_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let ca_name = DistinguishedName::cn("Chunk CA");
        let ca = Certificate::issue(
            &CertificateParams {
                serial: 1,
                subject: ca_name.clone(),
                validity: Validity {
                    not_before: 0,
                    not_after: u32::MAX as u64,
                },
                dns_names: vec![],
                is_ca: true,
            },
            &ca_key.public,
            &ca_name,
            &ca_key,
        );
        let key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let leaf = Certificate::issue(
            &CertificateParams {
                serial: 2,
                subject: DistinguishedName::cn("chunk.sim"),
                validity: Validity {
                    not_before: 0,
                    not_after: u32::MAX as u64,
                },
                dns_names: vec!["chunk.sim".into()],
                is_ca: false,
            },
            &key.public,
            &ca_name,
            &ca_key,
        );
        let mut store = RootStore::new();
        store.add_root(ca);
        Env {
            store: Arc::new(store),
            identity: Arc::new(ServerIdentity {
                chain: vec![leaf],
                key,
            }),
        }
    })
}

fn fresh_pair() -> (ClientConn, ServerConn) {
    let e = env();
    // Fresh ephemeral cache per handshake, same seed: identical server
    // key-exchange bytes on every run.
    let eph = EphemeralCache::new(
        EphemeralPolicy::FreshPerHandshake,
        ts_crypto::dh::DhGroup::Sim256,
        HmacDrbg::new(b"chunk-eph"),
    );
    let cfg = ServerConfig::new(e.identity.clone(), eph);
    let client = ClientConn::new(
        ClientConfig::new(e.store.clone(), "chunk.sim", 100),
        HmacDrbg::new(b"chunk-c"),
    );
    let server = ServerConn::new(cfg, HmacDrbg::new(b"chunk-s"), 100);
    (client, server)
}

fn drain(conn: &mut ConnectionCommon) -> Vec<u8> {
    let mut buf = Vec::new();
    while conn.wants_write() {
        conn.write_tls(&mut buf).unwrap();
    }
    buf
}

/// Deliver `bytes` to `dst` under the chunk schedule, processing after
/// every chunk — partial records and split handshake messages are fine:
/// a mid-record `process_new_packets` just reports no new packets yet.
fn deliver_chunked<T: std::ops::DerefMut<Target = ConnectionCommon>>(
    dst: &mut T,
    bytes: &[u8],
    chunks: &mut dyn Iterator<Item = usize>,
    process: &dyn Fn(&mut T),
) {
    let mut pos = 0;
    while pos < bytes.len() {
        let take = chunks.next().unwrap_or(64).clamp(1, bytes.len() - pos);
        let mut rd: &[u8] = &bytes[pos..pos + take];
        while !rd.is_empty() {
            dst.read_tls(&mut rd).unwrap();
        }
        pos += take;
        process(dst);
    }
}

struct Outcome {
    transcript: [u8; 32],
    master: [u8; 48],
    client_to_server: Vec<u8>,
    server_to_client: Vec<u8>,
}

/// Run the fixed-seed handshake delivering bytes per `chunk_plan`
/// (cycled; `None` = single-shot).
fn run_handshake(chunk_plan: Option<Vec<usize>>) -> Outcome {
    let (mut client, mut server) = fresh_pair();
    let mut chunks: Box<dyn Iterator<Item = usize>> = match chunk_plan {
        Some(plan) if !plan.is_empty() => Box::new(plan.into_iter().cycle()),
        _ => Box::new(std::iter::repeat(usize::MAX)),
    };
    let mut c2s = Vec::new();
    let mut s2c = Vec::new();
    for _ in 0..16 {
        let mut progressed = false;
        let from_client = drain(&mut client);
        if !from_client.is_empty() {
            progressed = true;
            c2s.extend_from_slice(&from_client);
            deliver_chunked(&mut server, &from_client, &mut chunks, &|s| {
                s.process_new_packets().unwrap();
            });
        }
        let from_server = drain(&mut server);
        if !from_server.is_empty() {
            progressed = true;
            s2c.extend_from_slice(&from_server);
            deliver_chunked(&mut client, &from_server, &mut chunks, &|c| {
                c.process_new_packets().unwrap();
            });
        }
        if !progressed {
            break;
        }
    }
    assert!(client.is_established(), "client established");
    assert!(server.is_established(), "server established");
    Outcome {
        transcript: client.transcript_hash(),
        master: client.master_secret().expect("client master"),
        client_to_server: c2s,
        server_to_client: s2c,
    }
}

fn reference() -> &'static Outcome {
    static REF: OnceLock<Outcome> = OnceLock::new();
    REF.get_or_init(|| run_handshake(None))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_delivery_matches_single_shot(
        plan in proptest::collection::vec(1usize..600, 1..12),
    ) {
        let reference = reference();
        let chunked = run_handshake(Some(plan));
        prop_assert_eq!(chunked.transcript, reference.transcript);
        prop_assert_eq!(chunked.master, reference.master);
        prop_assert_eq!(chunked.client_to_server, reference.client_to_server);
        prop_assert_eq!(chunked.server_to_client, reference.server_to_client);
    }
}

#[test]
fn one_byte_at_a_time_still_handshakes() {
    let reference = reference();
    let byte_by_byte = run_handshake(Some(vec![1]));
    assert_eq!(byte_by_byte.transcript, reference.transcript);
    assert_eq!(byte_by_byte.master, reference.master);
    assert_eq!(byte_by_byte.client_to_server, reference.client_to_server);
    assert_eq!(byte_by_byte.server_to_client, reference.server_to_client);
}
