//! End-to-end handshake tests: full handshakes across every suite,
//! session-ID and ticket resumption, expiry behaviour, failure injection.

use std::sync::Arc;
use ts_crypto::dh::DhGroup;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_tls::cache::SharedSessionCache;
use ts_tls::config::{ClientConfig, ResumptionOffer, ServerConfig, ServerIdentity};
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::pump::{pump, pump_app_data};
use ts_tls::server::ResumeKind;
use ts_tls::suites::CipherSuite;
use ts_tls::ticket::{RotationPolicy, SharedStekManager, StekManager, TicketFormat};
use ts_tls::{ClientConn, ServerConn, TlsError};
use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

const HOST: &str = "www.test.sim";

struct TestEnv {
    root_store: Arc<RootStore>,
    identity: Arc<ServerIdentity>,
}

fn build_env() -> TestEnv {
    let mut rng = HmacDrbg::new(b"handshake-test-env");
    let ca_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let ca_name = DistinguishedName::cn("Test Root CA");
    let ca_cert = Certificate::issue(
        &CertificateParams {
            serial: 1,
            subject: ca_name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        },
        &ca_key.public,
        &ca_name,
        &ca_key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let leaf = Certificate::issue(
        &CertificateParams {
            serial: 2,
            subject: DistinguishedName::cn(HOST),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![HOST.into()],
            is_ca: false,
        },
        &leaf_key.public,
        &ca_name,
        &ca_key,
    );
    let mut store = RootStore::new();
    store.add_root(ca_cert);
    TestEnv {
        root_store: Arc::new(store),
        identity: Arc::new(ServerIdentity {
            chain: vec![leaf],
            key: leaf_key,
        }),
    }
}

fn server_config(env: &TestEnv, seed: &[u8]) -> ServerConfig {
    let eph = EphemeralCache::new(
        EphemeralPolicy::FreshPerHandshake,
        DhGroup::Sim256,
        HmacDrbg::new(&[seed, b"-eph"].concat()),
    );
    let mut cfg = ServerConfig::new(env.identity.clone(), eph);
    cfg.tickets = Some(SharedStekManager::new(StekManager::new(
        RotationPolicy::Static,
        TicketFormat::Rfc5077,
        HmacDrbg::new(&[seed, b"-stek"].concat()),
        0,
    )));
    cfg.ticket_lifetime_hint = 300;
    cfg.ticket_accept_window = 300;
    cfg
}

fn connect(
    env: &TestEnv,
    cfg: &ServerConfig,
    client_cfg: ClientConfig,
    now: u64,
    seed: &[u8],
) -> Result<(ClientConn, ServerConn), TlsError> {
    let _ = env;
    let mut client = ClientConn::new(client_cfg, HmacDrbg::new(&[seed, b"-c"].concat()));
    let mut server = ServerConn::new(cfg.clone(), HmacDrbg::new(&[seed, b"-s"].concat()), now);
    pump(&mut client, &mut server)?;
    Ok((client, server))
}

#[test]
fn full_handshake_every_suite() {
    let env = build_env();
    let cfg = server_config(&env, b"suites");
    for suite in CipherSuite::all() {
        let mut ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
        ccfg.suites = vec![suite];
        let (client, server) = connect(
            &env,
            &cfg,
            ccfg,
            100,
            format!("s-{:x}", suite.id()).as_bytes(),
        )
        .unwrap();
        assert!(client.is_established(), "{suite:?}");
        assert!(server.is_established(), "{suite:?}");
        let summary = client.summary().unwrap();
        assert_eq!(summary.cipher_suite, suite);
        assert_eq!(summary.resumed, None);
        assert_eq!(summary.trust, Some(Ok(())));
        assert_eq!(client.master_secret(), server.master_secret());
        // PFS suites expose a server KEX value; RSA does not.
        assert_eq!(
            summary.server_kex_public.is_some(),
            suite.is_forward_secret()
        );
        // Ticket issued since both sides support it.
        assert!(summary.new_ticket.is_some(), "{suite:?}");
    }
}

#[test]
fn application_data_flows_both_ways() {
    let env = build_env();
    let cfg = server_config(&env, b"appdata");
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (mut client, mut server) = connect(&env, &cfg, ccfg, 100, b"appdata").unwrap();
    client.send_app_data(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut cap = Default::default();
    pump_app_data(&mut client, &mut server, &mut cap).unwrap();
    assert_eq!(server.recv_app_data(), b"GET / HTTP/1.1\r\n\r\n");
    server
        .send_app_data(b"HTTP/1.1 200 OK\r\n\r\nhello")
        .unwrap();
    pump_app_data(&mut client, &mut server, &mut cap).unwrap();
    assert_eq!(client.recv_app_data(), b"HTTP/1.1 200 OK\r\n\r\nhello");
    // The wire never shows plaintext.
    assert!(!cap.client_to_server.windows(5).any(|w| w == b"GET /"));
    assert!(!cap.server_to_client.windows(5).any(|w| w == b"hello"));
}

#[test]
fn session_id_resumption_roundtrip() {
    let env = build_env();
    let cfg = server_config(&env, b"sid");
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"sid1").unwrap();
    let summary = client.summary().unwrap();
    assert!(!summary.server_session_id.is_empty(), "server issued an ID");

    // Second connection offering the session ID (within the 300 s default).
    let mut ccfg2 = ClientConfig::new(env.root_store.clone(), HOST, 200);
    ccfg2.resumption = ResumptionOffer {
        session: Some((summary.server_session_id.clone(), summary.session.clone())),
        ticket: None,
    };
    let (client2, server2) = connect(&env, &cfg, ccfg2, 200, b"sid2").unwrap();
    assert_eq!(
        client2.summary().unwrap().resumed,
        Some(ResumeKind::SessionId)
    );
    assert_eq!(server2.resumed(), Some(ResumeKind::SessionId));
    assert_eq!(client2.master_secret(), server2.master_secret());
    assert_eq!(
        client2.master_secret().unwrap(),
        summary.session.master_secret,
        "resumption reuses the original master secret"
    );
    // No certificate was presented on resumption.
    assert!(client2.summary().unwrap().chain_der.is_empty());
}

#[test]
fn session_id_resumption_expires_with_cache_lifetime() {
    let env = build_env();
    let cfg = server_config(&env, b"sid-exp");
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"sid-exp1").unwrap();
    let summary = client.summary().unwrap();

    // 301+ seconds later the cache entry has expired → full handshake.
    let mut ccfg2 = ClientConfig::new(env.root_store.clone(), HOST, 500);
    ccfg2.resumption = ResumptionOffer {
        session: Some((summary.server_session_id.clone(), summary.session.clone())),
        ticket: None,
    };
    let (client2, server2) = connect(&env, &cfg, ccfg2, 500, b"sid-exp2").unwrap();
    assert_eq!(
        client2.summary().unwrap().resumed,
        None,
        "expired → full handshake"
    );
    assert!(server2.is_established());
}

#[test]
fn ticket_resumption_roundtrip() {
    let env = build_env();
    let cfg = server_config(&env, b"tick");
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"tick1").unwrap();
    let summary = client.summary().unwrap();
    let nst = summary.new_ticket.clone().expect("ticket issued");
    assert_eq!(nst.lifetime_hint, 300);

    let mut ccfg2 = ClientConfig::new(env.root_store.clone(), HOST, 150);
    ccfg2.resumption = ResumptionOffer {
        session: None,
        ticket: Some((nst.ticket.clone(), summary.session.clone())),
    };
    let (client2, server2) = connect(&env, &cfg, ccfg2, 150, b"tick2").unwrap();
    assert_eq!(client2.summary().unwrap().resumed, Some(ResumeKind::Ticket));
    assert_eq!(server2.resumed(), Some(ResumeKind::Ticket));
    assert_eq!(client2.master_secret(), server2.master_secret());
    assert_eq!(
        client2.master_secret().unwrap(),
        summary.session.master_secret
    );
}

#[test]
fn ticket_resumption_respects_accept_window() {
    let env = build_env();
    let cfg = server_config(&env, b"tick-exp");
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"tick-exp1").unwrap();
    let summary = client.summary().unwrap();
    let nst = summary.new_ticket.clone().unwrap();

    // Past the 300 s acceptance window → full handshake instead.
    let mut ccfg2 = ClientConfig::new(env.root_store.clone(), HOST, 450);
    ccfg2.resumption = ResumptionOffer {
        session: None,
        ticket: Some((nst.ticket, summary.session.clone())),
    };
    let (client2, _server2) = connect(&env, &cfg, ccfg2, 450, b"tick-exp2").unwrap();
    let s2 = client2.summary().unwrap();
    assert_eq!(s2.resumed, None);
    // And a fresh ticket was issued on the new full handshake.
    assert!(s2.new_ticket.is_some());
}

#[test]
fn ticket_reissue_on_resumption_keeps_master_constant() {
    let env = build_env();
    let mut cfg = server_config(&env, b"reissue");
    cfg.reissue_ticket_on_resumption = true;
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"re1").unwrap();
    let s1 = client.summary().unwrap();
    let t1 = s1.new_ticket.clone().unwrap();

    let mut ccfg2 = ClientConfig::new(env.root_store.clone(), HOST, 150);
    ccfg2.resumption = ResumptionOffer {
        session: None,
        ticket: Some((t1.ticket.clone(), s1.session.clone())),
    };
    let (client2, _server2) = connect(&env, &cfg, ccfg2, 150, b"re2").unwrap();
    let s2 = client2.summary().unwrap();
    assert_eq!(s2.resumed, Some(ResumeKind::Ticket));
    let t2 = s2.new_ticket.clone().expect("fresh ticket reissued");
    assert_ne!(t1.ticket, t2.ticket, "ticket bytes differ");
    // But the session keys are constant (§2.2).
    assert_eq!(s2.session.master_secret, s1.session.master_secret);
}

#[test]
fn stek_rotation_invalidates_old_tickets() {
    let env = build_env();
    let mut cfg = server_config(&env, b"rot");
    cfg.tickets = Some(SharedStekManager::new(StekManager::new(
        RotationPolicy::OnRestart {
            restart_interval: 200,
        },
        TicketFormat::Rfc5077,
        HmacDrbg::new(b"rot-stek"),
        0,
    )));
    cfg.ticket_accept_window = 10_000;
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"rot1").unwrap();
    let s1 = client.summary().unwrap();
    let t1 = s1.new_ticket.clone().unwrap();

    // After the restart boundary the STEK is gone → full handshake.
    let mut ccfg2 = ClientConfig::new(env.root_store.clone(), HOST, 250);
    ccfg2.resumption = ResumptionOffer {
        session: None,
        ticket: Some((t1.ticket, s1.session.clone())),
    };
    let (client2, _server2) = connect(&env, &cfg, ccfg2, 250, b"rot2").unwrap();
    assert_eq!(client2.summary().unwrap().resumed, None);
}

#[test]
fn untrusted_chain_fails_when_verifying() {
    let env = build_env();
    let cfg = server_config(&env, b"untrusted");
    // Client with an empty root store.
    let empty = Arc::new(RootStore::new());
    let ccfg = ClientConfig::new(empty, HOST, 100);
    let err = connect(&env, &cfg, ccfg, 100, b"untrusted1")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, TlsError::Trust(_)), "{err:?}");
}

#[test]
fn untrusted_chain_recorded_when_not_verifying() {
    let env = build_env();
    let cfg = server_config(&env, b"permissive");
    let empty = Arc::new(RootStore::new());
    let mut ccfg = ClientConfig::new(empty, HOST, 100);
    ccfg.verify_certs = false;
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"permissive1").unwrap();
    let s = client.summary().unwrap();
    assert!(matches!(s.trust, Some(Err(_))));
    assert!(!s.chain_der.is_empty());
}

#[test]
fn hostname_mismatch_fails() {
    let env = build_env();
    let cfg = server_config(&env, b"hostname");
    let ccfg = ClientConfig::new(env.root_store.clone(), "other.sim", 100);
    let err = connect(&env, &cfg, ccfg, 100, b"hostname1")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, TlsError::Trust(_)));
}

#[test]
fn no_common_suite_fails_with_alert() {
    let env = build_env();
    let mut cfg = server_config(&env, b"nosuite");
    cfg.suites = vec![CipherSuite::EcdheRsaChaCha20Poly1305];
    let mut ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    ccfg.suites = vec![CipherSuite::RsaAes128CbcSha256];
    let err = connect(&env, &cfg, ccfg, 100, b"nosuite1")
        .map(|_| ())
        .unwrap_err();
    // The client observes the server's fatal alert.
    assert!(
        matches!(err, TlsError::NoCommonSuite | TlsError::PeerAlert(_)),
        "{err:?}"
    );
}

#[test]
fn server_without_tickets_issues_none() {
    let env = build_env();
    let mut cfg = server_config(&env, b"notickets");
    cfg.tickets = None;
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"notickets1").unwrap();
    assert!(client.summary().unwrap().new_ticket.is_none());
}

#[test]
fn server_without_session_ids_sends_empty_id() {
    let env = build_env();
    let mut cfg = server_config(&env, b"noids");
    cfg.issue_session_ids = false;
    cfg.session_cache = None;
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"noids1").unwrap();
    assert!(client.summary().unwrap().server_session_id.is_empty());
}

#[test]
fn client_not_offering_tickets_gets_none() {
    let env = build_env();
    let cfg = server_config(&env, b"noclientticket");
    let mut ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    ccfg.offer_ticket_support = false;
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"noct1").unwrap();
    assert!(client.summary().unwrap().new_ticket.is_none());
}

#[test]
fn shared_cache_resumes_across_servers() {
    // Two distinct server configs (distinct identities irrelevant) sharing
    // one session cache — the SSL-terminator scenario of §5.1.
    let env = build_env();
    let shared = SharedSessionCache::new(3600, 1000);
    let mut cfg_a = server_config(&env, b"shareda");
    cfg_a.session_cache = Some(shared.clone());
    let mut cfg_b = server_config(&env, b"sharedb");
    cfg_b.session_cache = Some(shared);

    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg_a, ccfg, 100, b"sh1").unwrap();
    let s = client.summary().unwrap();

    let mut ccfg2 = ClientConfig::new(env.root_store.clone(), HOST, 200);
    ccfg2.resumption = ResumptionOffer {
        session: Some((s.server_session_id.clone(), s.session.clone())),
        ticket: None,
    };
    // Resume against server B.
    let (client2, server2) = connect(&env, &cfg_b, ccfg2, 200, b"sh2").unwrap();
    assert_eq!(
        client2.summary().unwrap().resumed,
        Some(ResumeKind::SessionId)
    );
    assert!(server2.is_established());
}

#[test]
fn shared_stek_resumes_across_servers() {
    let env = build_env();
    let stek = SharedStekManager::new(StekManager::new(
        RotationPolicy::Static,
        TicketFormat::Rfc5077,
        HmacDrbg::new(b"shared-stek"),
        0,
    ));
    let mut cfg_a = server_config(&env, b"stek-a");
    cfg_a.tickets = Some(stek.clone());
    let mut cfg_b = server_config(&env, b"stek-b");
    cfg_b.tickets = Some(stek);

    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg_a, ccfg, 100, b"stekc1").unwrap();
    let s = client.summary().unwrap();
    let nst = s.new_ticket.clone().unwrap();

    let mut ccfg2 = ClientConfig::new(env.root_store.clone(), HOST, 150);
    ccfg2.resumption = ResumptionOffer {
        session: None,
        ticket: Some((nst.ticket, s.session.clone())),
    };
    let (client2, _server2) = connect(&env, &cfg_b, ccfg2, 150, b"stekc2").unwrap();
    assert_eq!(client2.summary().unwrap().resumed, Some(ResumeKind::Ticket));
}

#[test]
fn dhe_value_reuse_visible_across_connections() {
    let env = build_env();
    let mut cfg = server_config(&env, b"dhe-reuse");
    cfg.ephemeral = EphemeralCache::new(
        EphemeralPolicy::ReuseForever,
        DhGroup::Sim256,
        HmacDrbg::new(b"dhe-reuse-eph"),
    );
    let mut publics = Vec::new();
    for i in 0..3 {
        let mut ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100 + i);
        ccfg.suites = CipherSuite::dhe_only().to_vec();
        let (client, _server) =
            connect(&env, &cfg, ccfg, 100 + i, format!("dr{i}").as_bytes()).unwrap();
        publics.push(client.summary().unwrap().server_kex_public.unwrap());
    }
    assert_eq!(publics[0], publics[1]);
    assert_eq!(publics[1], publics[2]);

    // With a fresh-per-handshake policy the values differ.
    cfg.ephemeral = EphemeralCache::new(
        EphemeralPolicy::FreshPerHandshake,
        DhGroup::Sim256,
        HmacDrbg::new(b"dhe-fresh-eph"),
    );
    let mut publics = Vec::new();
    for i in 0..2 {
        let mut ccfg = ClientConfig::new(env.root_store.clone(), HOST, 200 + i);
        ccfg.suites = CipherSuite::dhe_only().to_vec();
        let (client, _server) =
            connect(&env, &cfg, ccfg, 200 + i, format!("df{i}").as_bytes()).unwrap();
        publics.push(client.summary().unwrap().server_kex_public.unwrap());
    }
    assert_ne!(publics[0], publics[1]);
}

#[test]
fn stek_identifier_visible_in_issued_tickets() {
    let env = build_env();
    let cfg = server_config(&env, b"stekid");
    let stek_name = cfg.tickets.as_ref().unwrap().active_key_name_at(100);
    let ccfg = ClientConfig::new(env.root_store.clone(), HOST, 100);
    let (client, _server) = connect(&env, &cfg, ccfg, 100, b"stekid1").unwrap();
    let nst = client.summary().unwrap().new_ticket.unwrap();
    let id = ts_tls::ticket::extract_stek_id(&nst.ticket, TicketFormat::Rfc5077).unwrap();
    assert_eq!(id, stek_name, "ticket leads with the STEK identifier");
}
