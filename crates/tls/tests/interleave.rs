//! Exhaustive-interleaving tests for the two concurrent structures the
//! simulation leans on: the epoch-pinned STEK snapshot
//! (`SharedStekManager` / `PinnedStekSet`) and the sharded
//! `SharedSessionCache` cross-shard fallback.
//!
//! Two granularities, both driven by `ts_core::interleave`:
//!
//! * **Operation-level models** mirror the exact load/store/lock sequence
//!   of the production methods (one harness step per primitive op, yield
//!   points injected between them) over a simplified state — published
//!   sets become generation numbers. These prove the *protocol*: the
//!   (epoch, set) pair can never be observed torn because both writes
//!   happen under the snapshot lock, and the deliberately broken variants
//!   (lock-free re-pin, hold-across fallback) are shown to fail, so the
//!   harness is demonstrably able to find the bugs it guards against.
//! * **Method-level runs** drive the real types, one production call per
//!   step, so every interleaving of whole refresh/accept calls runs
//!   against real tickets and real keys.

use ts_core::interleave::{step, try_step, Scenario, StepOutcome};
use ts_crypto::drbg::HmacDrbg;
use ts_tls::cache::SharedSessionCache;
use ts_tls::session::SessionState;
use ts_tls::suites::CipherSuite;
use ts_tls::ticket::{RotationPolicy, SharedStekManager, StekManager, TicketFormat};

// ---------------------------------------------------------------------------
// Operation-level model: refresh_pin vs. re-pin / pinned accept.
//
// State mirrors `SharedStekInner` with the published `Arc<StekSet>`
// reduced to a generation number. The paired-update invariant the real
// code maintains (ticket.rs `refresh_pin`): `published` is replaced and
// `epoch` bumped under the same snapshot lock, so anyone who reads both
// under that lock sees generation == epoch.

#[derive(Default)]
struct StekModel {
    /// The `published: Mutex<Arc<StekSet>>` lock.
    published_locked: bool,
    /// Which snapshot is published (generation counter; starts at 0).
    published_gen: u64,
    /// The `epoch: AtomicU64` (kept == published_gen when quiescent).
    epoch: u64,
    /// Refresher-local: the freshly built set's generation.
    r_set: u64,
    /// Reader-local pin (`PinnedStekSet { epoch, set }`).
    pin_epoch: u64,
    pin_gen: u64,
    /// Reader-local: epoch value loaded on the fast path.
    b_loaded: u64,
    /// Generation the reader's accept actually decrypted against.
    b_used_gen: Option<u64>,
}

/// The stale-snapshot arm of `refresh_pin`, one step per primitive op:
/// lock the snapshot; rebuild from the manager (manager lock is
/// uncontended in this scenario, so tick+build is one step); replace the
/// published set; bump the epoch and release.
fn refresher() -> Vec<ts_core::interleave::Step<StekModel>> {
    vec![
        try_step(|s: &mut StekModel| {
            if s.published_locked {
                return StepOutcome::Blocked;
            }
            s.published_locked = true;
            StepOutcome::Progressed
        }),
        step(|s: &mut StekModel| s.r_set = s.published_gen + 1),
        step(|s: &mut StekModel| s.published_gen = s.r_set),
        step(|s: &mut StekModel| {
            s.epoch += 1;
            s.published_locked = false;
        }),
    ]
}

#[test]
fn repin_under_lock_always_sees_a_paired_epoch_and_set() {
    // Reader = the valid-snapshot arm of `refresh_pin`: lock, read epoch,
    // read set, unlock — the epoch and set reads are split into separate
    // steps to prove the lock (not luck) keeps them paired.
    let reader = vec![
        try_step(|s: &mut StekModel| {
            if s.published_locked {
                return StepOutcome::Blocked;
            }
            s.published_locked = true;
            StepOutcome::Progressed
        }),
        step(|s: &mut StekModel| s.pin_epoch = s.epoch),
        step(|s: &mut StekModel| {
            s.pin_gen = s.published_gen;
            s.published_locked = false;
        }),
    ];
    let ran = Scenario::new()
        .thread(refresher())
        .thread(reader)
        .check(StekModel::default, |s| {
            if s.pin_epoch == s.pin_gen {
                Ok(())
            } else {
                Err(format!(
                    "torn pin: epoch {} but set generation {}",
                    s.pin_epoch, s.pin_gen
                ))
            }
        });
    assert!(ran >= 2, "exploration degenerated to {ran} schedules");
}

#[test]
fn lock_free_repin_would_tear_the_pair() {
    // The broken variant the lock exists to prevent: reading epoch and
    // set without the snapshot lock. Exhaustive exploration must find at
    // least one schedule observing (new set, old epoch) or (old set, new
    // epoch) — demonstrating the harness catches the bug the real code
    // avoids.
    let racy_reader = vec![
        step(|s: &mut StekModel| s.pin_epoch = s.epoch),
        step(|s: &mut StekModel| s.pin_gen = s.published_gen),
    ];
    let mut torn = 0usize;
    Scenario::new()
        .thread(refresher())
        .thread(racy_reader)
        .explore(StekModel::default, |_, s| {
            if s.pin_epoch != s.pin_gen {
                torn += 1;
            }
        });
    assert!(torn > 0, "the torn interleaving must be reachable");
}

#[test]
fn pinned_accept_fast_path_is_safe_at_every_interleaving() {
    // Reader holds a pin on generation 0 (epoch 0) and runs the
    // `accept_pinned` fast path: one atomic epoch load, then either use
    // the pinned set (epoch unchanged) or re-pin under the lock. At every
    // interleaving with a concurrent refresh, the set it decrypts with is
    // either its own still-consistent pin or a freshly paired snapshot —
    // never a torn mix.
    let reader = vec![
        step(|s: &mut StekModel| s.b_loaded = s.epoch),
        try_step(|s: &mut StekModel| {
            if s.b_loaded == s.pin_epoch {
                // Fast path: decrypt against the pinned snapshot.
                s.b_used_gen = Some(s.pin_gen);
                return StepOutcome::Progressed;
            }
            // Slow path: re-pin under the snapshot lock.
            if s.published_locked {
                return StepOutcome::Blocked;
            }
            s.pin_epoch = s.epoch;
            s.pin_gen = s.published_gen;
            s.b_used_gen = Some(s.pin_gen);
            StepOutcome::Progressed
        }),
    ];
    Scenario::new()
        .thread(refresher())
        .thread(reader)
        .check(StekModel::default, |s| {
            match s.b_used_gen {
                // Fast path: the snapshot pinned at epoch 0.
                Some(0) if s.pin_epoch == 0 && s.pin_gen == 0 => Ok(()),
                // Re-pin: must be the paired (epoch, set) the refresher
                // published.
                Some(g) if g == s.pin_gen && s.pin_epoch == s.pin_gen => Ok(()),
                other => Err(format!(
                    "unsound accept: used {:?}, pin = ({}, {})",
                    other, s.pin_epoch, s.pin_gen
                )),
            }
        });
}

// ---------------------------------------------------------------------------
// Operation-level model: two-shard cache, insert vs. cross-shard lookup.

#[derive(Default)]
struct CacheModel {
    locked: [bool; 2],
    present: [bool; 2],
    /// Lookup-thread outcome.
    found: Option<bool>,
}

fn lock_shard(i: usize) -> ts_core::interleave::Step<CacheModel> {
    try_step(move |s: &mut CacheModel| {
        if s.locked[i] {
            return StepOutcome::Blocked;
        }
        s.locked[i] = true;
        StepOutcome::Progressed
    })
}

#[test]
fn cross_shard_fallback_never_deadlocks_and_sees_a_coherent_entry() {
    // Writer: insert into shard 0 (the session's home). Reader: home
    // shard is 1 — miss there, then the fixed-order fallback scan hits
    // shard 0. Both follow the production discipline of one shard locked
    // at a time (lock, probe, unlock), so no schedule can deadlock, and
    // the lookup outcome must equal "had the insert's write happened when
    // the reader probed shard 0".
    let writer = vec![
        lock_shard(0),
        step(|s: &mut CacheModel| {
            s.present[0] = true;
            s.locked[0] = false;
        }),
    ];
    let reader = vec![
        lock_shard(1),
        step(|s: &mut CacheModel| {
            // Home-shard probe: always a miss in this scenario.
            assert!(!s.present[1]);
            s.locked[1] = false;
        }),
        lock_shard(0),
        step(|s: &mut CacheModel| {
            s.found = Some(s.present[0]);
            s.locked[0] = false;
        }),
    ];
    let mut outcomes = std::collections::BTreeSet::new();
    let ran = Scenario::new()
        .thread(writer)
        .thread(reader)
        .explore(CacheModel::default, |_, s| {
            assert!(!s.locked[0] && !s.locked[1], "all shards released");
            outcomes.insert(s.found.expect("lookup completed"));
        });
    assert!(ran >= 2);
    // Exhaustiveness: both the hit and the benign miss orderings exist.
    assert_eq!(outcomes.len(), 2, "both race outcomes must be reachable");
}

#[test]
#[should_panic(expected = "deadlock")]
fn holding_the_home_shard_across_the_fallback_would_deadlock() {
    // The forbidden variant (what the lock-across-callback / lock-order
    // rules and the temporary-guard discipline in cache.rs prevent):
    // the reader keeps shard 1 locked while taking shard 0, while a
    // writer moves an entry 0 -> 1 holding shard 0. Classic ABBA — the
    // explorer must reach and report the deadlock.
    let writer = vec![
        lock_shard(0),
        lock_shard(1),
        step(|s: &mut CacheModel| {
            s.locked[1] = false;
            s.locked[0] = false;
        }),
    ];
    let reader = vec![
        lock_shard(1),
        lock_shard(0),
        step(|s: &mut CacheModel| {
            s.locked[0] = false;
            s.locked[1] = false;
        }),
    ];
    Scenario::new()
        .thread(writer)
        .thread(reader)
        .explore(CacheModel::default, |_, _| {});
}

// ---------------------------------------------------------------------------
// Method-level: the real types, one production call per step.

fn session(name: &str) -> SessionState {
    SessionState {
        master_secret: [0x42; 48],
        cipher_suite: CipherSuite::EcdheRsaChaCha20Poly1305,
        established_at: 0,
        server_name: name.into(),
    }
}

struct RealStek {
    mgr: SharedStekManager,
    ticket: Vec<u8>,
    pin: Option<ts_tls::ticket::PinnedStekSet>,
    results: Vec<bool>,
}

#[test]
fn real_refresh_vs_pinned_accept_accepts_at_every_interleaving() {
    // Periodic rotation with overlap: the ticket issued at t=0 must be
    // accepted at t=10 (pre-rotation) and at t=101 (post-rotation, inside
    // the retired key's overlap) no matter how the concurrent pin
    // refreshes interleave with the accepts. Steps are whole production
    // calls — the sans-I/O API is externally synchronized, so call-level
    // atomicity is the honest granularity for the real types.
    let init = || {
        let mgr = SharedStekManager::new(StekManager::new(
            RotationPolicy::Periodic {
                period: 100,
                overlap: 50,
            },
            TicketFormat::Rfc5077,
            HmacDrbg::new(b"interleave-stek"),
            0,
        ));
        let ticket = mgr.issue(&session("pin.sim"), 0);
        RealStek {
            mgr,
            ticket,
            pin: None,
            results: Vec::new(),
        }
    };
    let refresher = vec![
        step(|s: &mut RealStek| {
            // Advancing time across the rotation boundary forces a
            // republish (epoch bump) on whoever gets there first.
            let _ = s.mgr.active_key_name_at(101);
        }),
        step(|s: &mut RealStek| {
            let _ = s.mgr.active_key_name_at(140);
        }),
    ];
    let acceptor = vec![
        step(|s: &mut RealStek| {
            let RealStek {
                mgr, ticket, pin, ..
            } = s;
            let ok = mgr.accept_pinned(pin, ticket, 10).is_ok();
            s.results.push(ok);
        }),
        step(|s: &mut RealStek| {
            let RealStek {
                mgr, ticket, pin, ..
            } = s;
            let ok = mgr.accept_pinned(pin, ticket, 101).is_ok();
            s.results.push(ok);
        }),
    ];
    let ran = Scenario::new()
        .thread(refresher)
        .thread(acceptor)
        .check(init, |s| {
            if s.results == [true, true] {
                Ok(())
            } else {
                Err(format!("accept results {:?}", s.results))
            }
        });
    assert_eq!(ran, 6, "2+2 steps must give C(4,2) schedules");
}

#[test]
fn real_two_shard_insert_vs_cross_fallback_lookup() {
    // Real SharedSessionCache: "alpha.sim" and its session ID live in
    // alpha's home shard; the lookup presents the same session ID under a
    // different SNI whose home shard misses, exercising the cross-shard
    // fallback against a concurrent insert. Every interleaving completes
    // (no deadlock possible at any granularity — one shard at a time) and
    // the outcome is exactly insert-before-lookup.
    struct S {
        cache: SharedSessionCache,
        found: Option<bool>,
    }
    let init = || S {
        cache: SharedSessionCache::new(300, 64),
        found: None,
    };
    let writer = vec![step(|s: &mut S| {
        s.cache
            .insert("alpha.sim", vec![7; 32], session("alpha.sim"), 1);
    })];
    let reader = vec![step(|s: &mut S| {
        s.found = Some(s.cache.lookup("beta.sim", &[7; 32], 2).is_some());
    })];
    let mut outcomes = std::collections::BTreeSet::new();
    let ran = Scenario::new()
        .thread(writer)
        .thread(reader)
        .explore(init, |sched, s| {
            let found = s.found.expect("lookup ran");
            outcomes.insert(found);
            // Schedule [0, 1] = insert first: the fallback must hit.
            if sched == [0, 1] {
                assert!(found, "insert-then-lookup must resume");
            }
        });
    assert_eq!(ran, 2);
    assert_eq!(
        outcomes,
        std::collections::BTreeSet::from([false, true]),
        "both orders must be observable"
    );
}
