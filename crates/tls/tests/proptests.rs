//! Property-based tests for the TLS wire formats and ticket machinery:
//! every encoder/decoder pair must round-trip arbitrary inputs, records
//! must survive arbitrary fragmentation, and tickets must round-trip
//! arbitrary session state under any format.

use proptest::prelude::*;
use ts_crypto::drbg::HmacDrbg;
use ts_tls::session::SessionState;
use ts_tls::suites::CipherSuite;
use ts_tls::ticket::{Stek, TicketFormat};
use ts_tls::wire::extensions::{decode_extensions, encode_extensions, Extension};
use ts_tls::wire::handshake::{
    ClientHello, HandshakeMessage, HandshakeReassembler, NewSessionTicket, ServerHello,
};
use ts_tls::wire::record::{ContentType, RecordLayer};

fn suite_strategy() -> impl Strategy<Value = CipherSuite> {
    prop_oneof![
        Just(CipherSuite::RsaAes128CbcSha256),
        Just(CipherSuite::DheRsaAes128CbcSha256),
        Just(CipherSuite::EcdheRsaAes128CbcSha256),
        Just(CipherSuite::DheRsaChaCha20Poly1305),
        Just(CipherSuite::EcdheRsaChaCha20Poly1305),
    ]
}

fn hostname_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,30}\\.sim"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_survive_arbitrary_fragmentation(
        payload in proptest::collection::vec(any::<u8>(), 0..40_000),
        cuts in proptest::collection::vec(1usize..500, 0..20),
    ) {
        let mut writer = RecordLayer::new();
        let mut wire = Vec::new();
        writer.write_record(ContentType::ApplicationData, &payload, &mut wire);
        // Feed the wire bytes in arbitrary chunk sizes.
        let mut reader = RecordLayer::new();
        let mut reassembled = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.into_iter().cycle();
        while pos < wire.len() {
            let take = cut_iter.next().unwrap_or(64).min(wire.len() - pos);
            reader.feed(&wire[pos..pos + take]);
            pos += take;
            while let Some(rec) = reader.next_record().unwrap() {
                prop_assert_eq!(rec.content_type, ContentType::ApplicationData);
                reassembled.extend_from_slice(&rec.payload);
            }
        }
        prop_assert_eq!(reassembled, payload);
    }

    #[test]
    fn extensions_roundtrip(
        host in hostname_strategy(),
        ticket in proptest::collection::vec(any::<u8>(), 0..200),
        groups in proptest::collection::vec(any::<u16>(), 0..8),
        unknown in proptest::collection::vec(any::<u8>(), 0..50),
        unknown_type in 100u16..60_000,
    ) {
        let exts = vec![
            Extension::ServerName(host),
            Extension::SessionTicket(ticket),
            Extension::SupportedGroups(groups),
            Extension::Unknown { ext_type: unknown_type, data: unknown },
        ];
        let mut buf = Vec::new();
        encode_extensions(&exts, &mut buf);
        prop_assert_eq!(decode_extensions(&buf).unwrap(), exts);
    }

    #[test]
    fn client_hello_roundtrips(
        random in proptest::collection::vec(any::<u8>(), 32..=32),
        session_id in proptest::collection::vec(any::<u8>(), 0..=32),
        suites in proptest::collection::vec(any::<u16>(), 1..20),
        host in hostname_strategy(),
    ) {
        let msg = HandshakeMessage::ClientHello(ClientHello {
            random: random.try_into().unwrap(),
            session_id,
            cipher_suites: suites,
            extensions: vec![Extension::ServerName(host)],
        });
        let enc = msg.encode();
        let (decoded, used) = HandshakeMessage::decode(&enc, None).unwrap().unwrap();
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn server_hello_roundtrips(
        random in proptest::collection::vec(any::<u8>(), 32..=32),
        session_id in proptest::collection::vec(any::<u8>(), 0..=32),
        suite in any::<u16>(),
        with_ticket_ext in any::<bool>(),
    ) {
        let extensions = if with_ticket_ext {
            vec![Extension::SessionTicket(Vec::new())]
        } else {
            vec![]
        };
        let msg = HandshakeMessage::ServerHello(ServerHello {
            random: random.try_into().unwrap(),
            session_id,
            cipher_suite: suite,
            extensions,
        });
        let enc = msg.encode();
        let (decoded, _) = HandshakeMessage::decode(&enc, None).unwrap().unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn nst_roundtrips(
        hint in any::<u32>(),
        ticket in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let msg = HandshakeMessage::NewSessionTicket(NewSessionTicket {
            lifetime_hint: hint,
            ticket,
        });
        let enc = msg.encode();
        let (decoded, _) = HandshakeMessage::decode(&enc, None).unwrap().unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_messages_never_panic_and_never_parse(
        random in proptest::collection::vec(any::<u8>(), 32..=32),
        cut_frac in 0.0f64..1.0,
    ) {
        let msg = HandshakeMessage::ClientHello(ClientHello {
            random: random.try_into().unwrap(),
            session_id: vec![1, 2, 3],
            cipher_suites: vec![0xc02f, 0x003c],
            extensions: vec![Extension::SessionTicket(vec![9; 40])],
        });
        let enc = msg.encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < enc.len());
        // Either "need more data" (None) or a clean decode error.
        match HandshakeMessage::decode(&enc[..cut], None) {
            Ok(None) | Err(_) => {}
            Ok(Some((_, used))) => prop_assert!(used <= cut),
        }
    }

    #[test]
    fn reassembler_handles_arbitrary_message_streams(
        hints in proptest::collection::vec(any::<u32>(), 1..6),
        chunk in 1usize..40,
    ) {
        let messages: Vec<HandshakeMessage> = hints
            .iter()
            .map(|&h| {
                HandshakeMessage::NewSessionTicket(NewSessionTicket {
                    lifetime_hint: h,
                    ticket: vec![h as u8; (h % 64) as usize],
                })
            })
            .collect();
        let mut stream = Vec::new();
        for m in &messages {
            stream.extend_from_slice(&m.encode());
        }
        let mut reasm = HandshakeReassembler::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            reasm.feed(piece);
            while let Some(m) = reasm.next(None).unwrap() {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, messages);
        prop_assert!(reasm.is_empty());
    }

    #[test]
    fn session_state_roundtrips(
        master in proptest::collection::vec(any::<u8>(), 48..=48),
        suite in suite_strategy(),
        established_at in any::<u64>(),
        host in hostname_strategy(),
    ) {
        let state = SessionState {
            master_secret: master.try_into().unwrap(),
            cipher_suite: suite,
            established_at,
            server_name: host,
        };
        prop_assert_eq!(SessionState::from_bytes(&state.to_bytes()), Some(state));
    }

    #[test]
    fn tickets_roundtrip_any_state_any_format(
        master in proptest::collection::vec(any::<u8>(), 48..=48),
        suite in suite_strategy(),
        established_at in any::<u64>(),
        host in hostname_strategy(),
        seed in any::<u64>(),
        format_pick in 0u8..3,
    ) {
        let format = match format_pick {
            0 => TicketFormat::Rfc5077,
            1 => TicketFormat::MbedTls,
            _ => TicketFormat::SChannel,
        };
        let state = SessionState {
            master_secret: master.try_into().unwrap(),
            cipher_suite: suite,
            established_at,
            server_name: host,
        };
        let mut rng = HmacDrbg::from_seed_label(seed, "prop-ticket");
        let stek = Stek::generate(&mut rng, 0);
        let ticket = stek.seal(&state, format, &mut rng);
        prop_assert_eq!(stek.open(&ticket, format).unwrap(), state);
        // The STEK id is recoverable and has the format's length.
        let id = ts_tls::ticket::extract_stek_id(&ticket, format).unwrap();
        prop_assert_eq!(id.len(), format.key_name_len());
    }

    #[test]
    fn tampered_tickets_never_open(
        seed in any::<u64>(),
        flip in any::<usize>(),
    ) {
        let state = SessionState {
            master_secret: [9; 48],
            cipher_suite: CipherSuite::EcdheRsaChaCha20Poly1305,
            established_at: 1,
            server_name: "t.sim".into(),
        };
        let mut rng = HmacDrbg::from_seed_label(seed, "prop-tamper");
        let stek = Stek::generate(&mut rng, 0);
        let mut ticket = stek.seal(&state, TicketFormat::Rfc5077, &mut rng);
        // Flip one bit anywhere beyond the key name — the sealed body must
        // reject; flipping the key name makes it a different key's ticket.
        let idx = 16 + (flip % (ticket.len() - 16));
        ticket[idx] ^= 1;
        prop_assert!(stek.open(&ticket, TicketFormat::Rfc5077).is_err());
    }
}
