//! Coverage for the pump driver and configuration surfaces that the
//! handshake tests exercise only implicitly.

use std::sync::Arc;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_tls::config::{ClientConfig, ServerConfig, ServerIdentity};
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::pump::{pump, pump_app_data, WireCapture};
use ts_tls::suites::CipherSuite;
use ts_tls::{ClientConn, ServerConn, TlsError};
use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

fn env(seed: &[u8]) -> (Arc<RootStore>, ServerConfig) {
    let mut rng = HmacDrbg::new(seed);
    let ca_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let ca_name = DistinguishedName::cn("Pump CA");
    let ca = Certificate::issue(
        &CertificateParams {
            serial: 1,
            subject: ca_name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        },
        &ca_key.public,
        &ca_name,
        &ca_key,
    );
    let key = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let leaf = Certificate::issue(
        &CertificateParams {
            serial: 2,
            subject: DistinguishedName::cn("pump.sim"),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec!["pump.sim".into()],
            is_ca: false,
        },
        &key.public,
        &ca_name,
        &ca_key,
    );
    let mut store = RootStore::new();
    store.add_root(ca);
    let identity = Arc::new(ServerIdentity {
        chain: vec![leaf],
        key,
    });
    let eph = EphemeralCache::new(
        EphemeralPolicy::FreshPerHandshake,
        ts_crypto::dh::DhGroup::Sim256,
        HmacDrbg::new(&[seed, b"-e"].concat()),
    );
    (Arc::new(store), ServerConfig::new(identity, eph))
}

#[test]
fn capture_contains_full_wire_traffic() {
    let (store, cfg) = env(b"pump-capture");
    let mut client = ClientConn::new(
        ClientConfig::new(store, "pump.sim", 100),
        HmacDrbg::new(b"c"),
    );
    let mut server = ServerConn::new(cfg, HmacDrbg::new(b"s"), 100);
    let result = pump(&mut client, &mut server).unwrap();
    // The capture starts with the TLS record header of the ClientHello:
    // handshake(22), version 3.3.
    assert_eq!(&result.capture.client_to_server[..3], &[22, 3, 3]);
    assert_eq!(&result.capture.server_to_client[..3], &[22, 3, 3]);
    assert!(result.capture.client_to_server.len() > 100);
    assert!(
        result.capture.server_to_client.len() > 300,
        "cert flight is big"
    );
}

#[test]
fn pump_surfaces_handshake_failures() {
    let (store, mut cfg) = env(b"pump-fail");
    cfg.suites = vec![CipherSuite::EcdheRsaChaCha20Poly1305];
    let mut ccfg = ClientConfig::new(store, "pump.sim", 100);
    ccfg.suites = vec![CipherSuite::RsaAes128CbcSha256];
    let mut client = ClientConn::new(ccfg, HmacDrbg::new(b"c"));
    let mut server = ServerConn::new(cfg, HmacDrbg::new(b"s"), 100);
    let err = pump(&mut client, &mut server).map(|_| ()).unwrap_err();
    assert!(matches!(
        err,
        TlsError::NoCommonSuite | TlsError::PeerAlert(_)
    ));
    assert!(server.is_failed());
}

#[test]
fn pump_app_data_is_incremental() {
    let (store, cfg) = env(b"pump-incr");
    let mut client = ClientConn::new(
        ClientConfig::new(store, "pump.sim", 100),
        HmacDrbg::new(b"c"),
    );
    let mut server = ServerConn::new(cfg, HmacDrbg::new(b"s"), 100);
    let result = pump(&mut client, &mut server).unwrap();
    let mut capture = result.capture;
    let before = capture.client_to_server.len();
    // Multiple rounds of app data extend the same capture.
    for i in 0..3 {
        client.send_app_data(format!("msg {i}").as_bytes()).unwrap();
        pump_app_data(&mut client, &mut server, &mut capture).unwrap();
    }
    assert_eq!(server.recv_app_data(), b"msg 0msg 1msg 2");
    assert!(capture.client_to_server.len() > before);
}

#[test]
fn app_data_before_establishment_rejected() {
    let (store, cfg) = env(b"pump-early");
    let mut client = ClientConn::new(
        ClientConfig::new(store, "pump.sim", 100),
        HmacDrbg::new(b"c"),
    );
    assert_eq!(client.send_app_data(b"too soon"), Err(TlsError::NotReady));
    let mut server = ServerConn::new(cfg, HmacDrbg::new(b"s"), 100);
    assert_eq!(server.send_app_data(b"too soon"), Err(TlsError::NotReady));
    assert!(client.summary().is_err(), "summary gated on establishment");
}

#[test]
fn default_configs_are_sane() {
    let (store, cfg) = env(b"pump-defaults");
    // Server defaults: all suites, session IDs on, 5-minute cache, no
    // tickets until configured.
    assert_eq!(cfg.suites.len(), 8);
    assert!(cfg.issue_session_ids);
    assert!(cfg.tickets.is_none());
    assert_eq!(cfg.session_cache.as_ref().unwrap().lifetime_secs(), 300);
    // Client defaults: ticket support advertised, verification on.
    let ccfg = ClientConfig::new(store, "pump.sim", 42);
    assert!(ccfg.offer_ticket_support);
    assert!(ccfg.verify_certs);
    assert_eq!(ccfg.now, 42);
    assert!(ccfg.resumption.session.is_none());
    assert!(ccfg.resumption.ticket.is_none());
}

#[test]
fn wire_capture_default_is_empty() {
    let c = WireCapture::default();
    assert!(c.client_to_server.is_empty());
    assert!(c.server_to_client.is_empty());
}

#[test]
fn tampered_wire_fails_cleanly() {
    // Flip a byte of the server's Finished (encrypted) in flight: the
    // client must fail with a MAC error, not panic or hang.
    let (store, cfg) = env(b"pump-tamper");
    let mut client = ClientConn::new(
        ClientConfig::new(store, "pump.sim", 100),
        HmacDrbg::new(b"c"),
    );
    let mut server = ServerConn::new(cfg, HmacDrbg::new(b"s"), 100);
    // Run the flights manually with the byte-port API so we can tamper
    // mid-way.
    fn drain(conn: &mut ts_tls::ConnectionCommon) -> Vec<u8> {
        let mut buf = Vec::new();
        while conn.wants_write() {
            conn.write_tls(&mut buf).unwrap();
        }
        buf
    }
    fn feed(conn: &mut ts_tls::ConnectionCommon, bytes: &[u8]) {
        let mut rd: &[u8] = bytes;
        while !rd.is_empty() {
            conn.read_tls(&mut rd).unwrap();
        }
    }
    let ch = drain(&mut client);
    feed(&mut server, &ch);
    server.process_new_packets().unwrap();
    let flight = drain(&mut server);
    feed(&mut client, &flight);
    client.process_new_packets().unwrap();
    let cke_ccs_fin = drain(&mut client);
    feed(&mut server, &cke_ccs_fin);
    server.process_new_packets().unwrap();
    let mut server_fin = drain(&mut server);
    // Tamper with the LAST byte (inside the encrypted Finished record).
    let last = server_fin.len() - 1;
    server_fin[last] ^= 0xff;
    feed(&mut client, &server_fin);
    let err = client.process_new_packets().unwrap_err();
    assert!(
        matches!(err, TlsError::Crypto(_) | TlsError::BadFinished),
        "{err:?}"
    );
    assert!(client.is_failed());
    // The failure queued a fatal alert for the peer.
    assert!(client.wants_write(), "alert queued on failure");
}
