//! Minimal X.509 v3 certificates with RSA-SHA256 signatures.
//!
//! Profile: version 3, RSA SubjectPublicKeyInfo, GeneralizedTime validity
//! on the simulation's virtual clock, a single-CN distinguished name, and
//! two extensions — basicConstraints (CA flag) and subjectAltName (DNS
//! names, wildcards allowed). That is exactly the surface the study's trust
//! decisions exercise.

use crate::der::{self, DerError, Reader, Tag};
use ts_crypto::bignum::Ub;
use ts_crypto::rsa::{RsaPrivateKey, RsaPublicKey};

/// OID arcs used by the profile.
mod oids {
    pub const SHA256_WITH_RSA: [u64; 7] = [1, 2, 840, 113549, 1, 1, 11];
    pub const RSA_ENCRYPTION: [u64; 7] = [1, 2, 840, 113549, 1, 1, 1];
    pub const COMMON_NAME: [u64; 4] = [2, 5, 4, 3];
    pub const BASIC_CONSTRAINTS: [u64; 4] = [2, 5, 29, 19];
    pub const SUBJECT_ALT_NAME: [u64; 4] = [2, 5, 29, 17];
}

/// A distinguished name, reduced to its Common Name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DistinguishedName {
    /// The CN attribute (e.g. `"SimCA Root 1"` or `"*.cdn-alpha.sim"`).
    pub common_name: String,
}

impl DistinguishedName {
    /// Construct from a CN string.
    pub fn cn(name: &str) -> Self {
        DistinguishedName {
            common_name: name.to_string(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        // RDNSequence → SET → SEQUENCE { OID, UTF8String }
        let attr = der::sequence(&[
            der::oid(&oids::COMMON_NAME),
            der::utf8_string(&self.common_name),
        ]);
        let mut set = Vec::new();
        der::write_tlv(&mut set, Tag::Set, &attr);
        der::sequence(&[set])
    }

    fn decode(r: &mut Reader) -> Result<Self, DerError> {
        let mut rdns = r.read_sequence()?;
        let set = rdns.read_tlv(Tag::Set)?;
        rdns.finish()?;
        let mut set_r = Reader::new(set);
        let mut attr = set_r.read_sequence()?;
        set_r.finish()?;
        let arcs = attr.read_oid()?;
        if arcs != oids::COMMON_NAME {
            return Err(DerError::BadValue("expected CN attribute"));
        }
        let cn = attr.read_utf8_string()?;
        attr.finish()?;
        Ok(DistinguishedName { common_name: cn })
    }
}

/// Certificate validity window in virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity {
    /// Inclusive start.
    pub not_before: u64,
    /// Inclusive end.
    pub not_after: u64,
}

impl Validity {
    /// True if `now` falls inside the window.
    pub fn contains(&self, now: u64) -> bool {
        self.not_before <= now && now <= self.not_after
    }
}

/// Parameters for issuing a certificate.
#[derive(Debug, Clone)]
pub struct CertificateParams {
    /// Serial number.
    pub serial: u64,
    /// Subject name.
    pub subject: DistinguishedName,
    /// Validity window.
    pub validity: Validity,
    /// DNS subjectAltNames; wildcard entries like `*.example.sim` allowed.
    pub dns_names: Vec<String>,
    /// CA certificate (can sign others)?
    pub is_ca: bool,
}

/// A parsed (or freshly issued) certificate plus its DER encoding.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Serial number.
    pub serial: Ub,
    /// Issuer name.
    pub issuer: DistinguishedName,
    /// Subject name.
    pub subject: DistinguishedName,
    /// Validity window.
    pub validity: Validity,
    /// Subject public key.
    pub public_key: RsaPublicKey,
    /// DNS names from subjectAltName.
    pub dns_names: Vec<String>,
    /// basicConstraints CA flag.
    pub is_ca: bool,
    /// The DER bytes of the TBSCertificate (what the signature covers).
    pub tbs_der: Vec<u8>,
    /// The signature over `tbs_der`.
    pub signature: Vec<u8>,
    /// The complete certificate DER.
    pub der: Vec<u8>,
}

impl PartialEq for Certificate {
    fn eq(&self, other: &Self) -> bool {
        self.der == other.der
    }
}
impl Eq for Certificate {}

fn encode_spki(key: &RsaPublicKey) -> Vec<u8> {
    let alg = der::sequence(&[der::oid(&oids::RSA_ENCRYPTION), der::null()]);
    let rsa_key = der::sequence(&[der::integer(&key.n), der::integer(&key.e)]);
    der::sequence(&[alg, der::bit_string(&rsa_key)])
}

fn decode_spki(r: &mut Reader) -> Result<RsaPublicKey, DerError> {
    let mut spki = r.read_sequence()?;
    let mut alg = spki.read_sequence()?;
    let arcs = alg.read_oid()?;
    if arcs != oids::RSA_ENCRYPTION {
        return Err(DerError::BadValue("unsupported key algorithm"));
    }
    alg.read_null()?;
    alg.finish()?;
    let key_bits = spki.read_bit_string()?;
    spki.finish()?;
    let mut key_r = Reader::new(key_bits);
    let mut rsa = key_r.read_sequence()?;
    key_r.finish()?;
    let n = rsa.read_integer()?;
    let e = rsa.read_integer()?;
    rsa.finish()?;
    Ok(RsaPublicKey::new(n, e))
}

fn encode_extensions(params: &CertificateParams) -> Vec<u8> {
    let mut exts = Vec::new();
    // basicConstraints: SEQUENCE { OID, critical TRUE, OCTET STRING { SEQUENCE { BOOLEAN } } }
    let bc_value = der::sequence(&[der::boolean(params.is_ca)]);
    exts.push(der::sequence(&[
        der::oid(&oids::BASIC_CONSTRAINTS),
        der::boolean(true),
        der::octet_string(&bc_value),
    ]));
    if !params.dns_names.is_empty() {
        // subjectAltName: GeneralNames, dNSName = [2] IMPLICIT IA5String.
        // We encode each as a context-2 primitive TLV by hand.
        let mut names = Vec::new();
        for name in &params.dns_names {
            names.push(0x82u8); // context-specific primitive [2]
            names.push(name.len() as u8);
            names.extend_from_slice(name.as_bytes());
        }
        let mut general_names = Vec::new();
        der::write_tlv(&mut general_names, Tag::Sequence, &names);
        exts.push(der::sequence(&[
            der::oid(&oids::SUBJECT_ALT_NAME),
            der::octet_string(&general_names),
        ]));
    }
    // Extensions ::= [3] EXPLICIT SEQUENCE OF Extension
    der::context(3, &der::sequence(&exts))
}

struct ParsedExtensions {
    dns_names: Vec<String>,
    is_ca: bool,
}

fn decode_extensions(r: &mut Reader) -> Result<ParsedExtensions, DerError> {
    let mut out = ParsedExtensions {
        dns_names: Vec::new(),
        is_ca: false,
    };
    let ctx = match r.read_optional_context(3)? {
        Some(c) => c,
        None => return Ok(out),
    };
    let mut ctx = ctx;
    let mut exts = ctx.read_sequence()?;
    ctx.finish()?;
    while !exts.is_empty() {
        let mut ext = exts.read_sequence()?;
        let arcs = ext.read_oid()?;
        // Optional critical flag.
        let _critical = if ext.peek_tag() == Some(0x01) {
            ext.read_boolean()?
        } else {
            false
        };
        let value = ext.read_octet_string()?;
        ext.finish()?;
        if arcs == oids::BASIC_CONSTRAINTS {
            let mut v = Reader::new(value);
            let mut seq = v.read_sequence()?;
            v.finish()?;
            out.is_ca = if seq.is_empty() {
                false
            } else {
                seq.read_boolean()?
            };
        } else if arcs == oids::SUBJECT_ALT_NAME {
            let mut v = Reader::new(value);
            let mut names = v.read_sequence()?;
            v.finish()?;
            while !names.is_empty() {
                let (tag, contents) = names.read_any()?;
                if tag == 0x82 {
                    let name = String::from_utf8(contents.to_vec())
                        .map_err(|_| DerError::BadValue("dNSName not UTF-8"))?;
                    out.dns_names.push(name);
                }
            }
        }
        // Unknown extensions are skipped (non-critical assumption: fine for
        // our own profile).
    }
    Ok(out)
}

impl Certificate {
    /// Issue a certificate for `subject_key`, signed by `issuer_key` under
    /// `issuer_name`. Pass the same key and name for self-signed roots.
    pub fn issue(
        params: &CertificateParams,
        subject_key: &RsaPublicKey,
        issuer_name: &DistinguishedName,
        issuer_key: &RsaPrivateKey,
    ) -> Self {
        let sig_alg = der::sequence(&[der::oid(&oids::SHA256_WITH_RSA), der::null()]);
        let tbs = der::sequence(&[
            der::context(0, &der::integer_u64(2)), // version v3
            der::integer_u64(params.serial),
            sig_alg.clone(),
            issuer_name.encode(),
            der::sequence(&[
                der::generalized_time(params.validity.not_before),
                der::generalized_time(params.validity.not_after),
            ]),
            params.subject.encode(),
            encode_spki(subject_key),
            encode_extensions(params),
        ]);
        let signature = issuer_key.sign(&tbs).expect("RSA signing cannot fail here");
        let der_bytes = der::sequence(&[tbs.clone(), sig_alg, der::bit_string(&signature)]);
        Certificate {
            serial: Ub::from_u64(params.serial),
            issuer: issuer_name.clone(),
            subject: params.subject.clone(),
            validity: params.validity,
            public_key: subject_key.clone(),
            dns_names: params.dns_names.clone(),
            is_ca: params.is_ca,
            tbs_der: tbs,
            signature,
            der: der_bytes,
        }
    }

    /// Parse a certificate from DER.
    pub fn parse(der_bytes: &[u8]) -> Result<Self, DerError> {
        let mut r = Reader::new(der_bytes);
        let mut cert = r.read_sequence()?;
        r.finish()?;
        // Capture the raw TBS bytes for signature verification: re-read the
        // outer structure manually.
        let tbs_der = {
            let mut probe = Reader::new(der_bytes);
            let mut outer = probe.read_sequence()?;
            // read_any preserves the full TLV? It returns contents only, so
            // reconstruct: simplest is to re-encode below after parsing.
            let (tag, contents) = outer.read_any()?;
            if tag != Tag::Sequence.byte() {
                return Err(DerError::BadValue("TBS not a SEQUENCE"));
            }
            let mut full = Vec::with_capacity(contents.len() + 4);
            der::write_tlv(&mut full, Tag::Sequence, contents);
            full
        };
        let mut tbs = cert.read_sequence()?;
        // version [0] EXPLICIT
        let mut version = tbs
            .read_optional_context(0)?
            .ok_or(DerError::BadValue("missing version"))?;
        if version.read_integer_u64()? != 2 {
            return Err(DerError::BadValue("unsupported X.509 version"));
        }
        let serial = tbs.read_integer()?;
        let mut sig_alg = tbs.read_sequence()?;
        if sig_alg.read_oid()? != oids::SHA256_WITH_RSA {
            return Err(DerError::BadValue("unsupported signature algorithm"));
        }
        sig_alg.read_null()?;
        let issuer = DistinguishedName::decode(&mut tbs)?;
        let mut validity_seq = tbs.read_sequence()?;
        let not_before = validity_seq.read_generalized_time()?;
        let not_after = validity_seq.read_generalized_time()?;
        validity_seq.finish()?;
        let subject = DistinguishedName::decode(&mut tbs)?;
        let public_key = decode_spki(&mut tbs)?;
        let exts = decode_extensions(&mut tbs)?;
        tbs.finish()?;
        // Outer signature algorithm + signature.
        let mut outer_alg = cert.read_sequence()?;
        if outer_alg.read_oid()? != oids::SHA256_WITH_RSA {
            return Err(DerError::BadValue("signature algorithm mismatch"));
        }
        outer_alg.read_null()?;
        let signature = cert.read_bit_string()?.to_vec();
        cert.finish()?;
        Ok(Certificate {
            serial,
            issuer,
            subject,
            validity: Validity {
                not_before,
                not_after,
            },
            public_key,
            dns_names: exts.dns_names,
            is_ca: exts.is_ca,
            tbs_der,
            signature,
            der: der_bytes.to_vec(),
        })
    }

    /// Verify this certificate's signature against an issuer public key.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> bool {
        issuer_key.verify(&self.tbs_der, &self.signature).is_ok()
    }

    /// True if `hostname` matches a SAN entry (or the subject CN as a
    /// fallback). Wildcards match exactly one leftmost label.
    pub fn matches_hostname(&self, hostname: &str) -> bool {
        let candidates: Vec<&str> = if self.dns_names.is_empty() {
            vec![self.subject.common_name.as_str()]
        } else {
            self.dns_names.iter().map(|s| s.as_str()).collect()
        };
        candidates.iter().any(|pat| hostname_matches(pat, hostname))
    }
}

/// RFC 6125-style hostname matching: exact, or `*.` wildcard covering one
/// leftmost label (never the registrable domain itself).
pub fn hostname_matches(pattern: &str, hostname: &str) -> bool {
    let pattern = pattern.to_ascii_lowercase();
    let hostname = hostname.to_ascii_lowercase();
    if let Some(suffix) = pattern.strip_prefix("*.") {
        match hostname.split_once('.') {
            Some((label, rest)) => !label.is_empty() && rest == suffix,
            None => false,
        }
    } else {
        pattern == hostname
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_crypto::drbg::HmacDrbg;

    fn keypair(seed: &[u8]) -> RsaPrivateKey {
        let mut rng = HmacDrbg::new(seed);
        RsaPrivateKey::generate(512, &mut rng).unwrap()
    }

    fn sample_params() -> CertificateParams {
        CertificateParams {
            serial: 42,
            subject: DistinguishedName::cn("www.example.sim"),
            validity: Validity {
                not_before: 100,
                not_after: 1_000_000,
            },
            dns_names: vec!["www.example.sim".into(), "*.cdn.example.sim".into()],
            is_ca: false,
        }
    }

    #[test]
    fn issue_parse_roundtrip() {
        let ca_key = keypair(b"ca");
        let leaf_key = keypair(b"leaf");
        let ca_name = DistinguishedName::cn("SimCA Root");
        let cert = Certificate::issue(&sample_params(), &leaf_key.public, &ca_name, &ca_key);
        let parsed = Certificate::parse(&cert.der).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(parsed.subject.common_name, "www.example.sim");
        assert_eq!(parsed.issuer.common_name, "SimCA Root");
        assert_eq!(parsed.serial, Ub::from_u64(42));
        assert_eq!(
            parsed.validity,
            Validity {
                not_before: 100,
                not_after: 1_000_000
            }
        );
        assert_eq!(
            parsed.dns_names,
            vec!["www.example.sim", "*.cdn.example.sim"]
        );
        assert!(!parsed.is_ca);
        assert_eq!(parsed.public_key, leaf_key.public);
    }

    #[test]
    fn signature_verifies_with_right_key_only() {
        let ca_key = keypair(b"ca2");
        let other = keypair(b"other");
        let leaf_key = keypair(b"leaf2");
        let cert = Certificate::issue(
            &sample_params(),
            &leaf_key.public,
            &DistinguishedName::cn("SimCA"),
            &ca_key,
        );
        assert!(cert.verify_signature(&ca_key.public));
        assert!(!cert.verify_signature(&other.public));
        assert!(!cert.verify_signature(&leaf_key.public));
    }

    #[test]
    fn parsed_cert_signature_still_verifies() {
        let ca_key = keypair(b"ca3");
        let leaf_key = keypair(b"leaf3");
        let cert = Certificate::issue(
            &sample_params(),
            &leaf_key.public,
            &DistinguishedName::cn("SimCA"),
            &ca_key,
        );
        let parsed = Certificate::parse(&cert.der).unwrap();
        assert!(parsed.verify_signature(&ca_key.public));
    }

    #[test]
    fn tampered_der_fails_signature_or_parse() {
        let ca_key = keypair(b"ca4");
        let leaf_key = keypair(b"leaf4");
        let cert = Certificate::issue(
            &sample_params(),
            &leaf_key.public,
            &DistinguishedName::cn("SimCA"),
            &ca_key,
        );
        // Flip a byte inside the subject name region.
        let mut tampered = cert.der.clone();
        let pos = tampered
            .windows(7)
            .position(|w| w == b"example")
            .expect("subject bytes present");
        tampered[pos] ^= 1;
        match Certificate::parse(&tampered) {
            Ok(parsed) => assert!(!parsed.verify_signature(&ca_key.public)),
            Err(_) => {} // structural break is fine too
        }
    }

    #[test]
    fn self_signed_root() {
        let ca_key = keypair(b"root");
        let name = DistinguishedName::cn("SimCA Root 1");
        let params = CertificateParams {
            serial: 1,
            subject: name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        };
        let cert = Certificate::issue(&params, &ca_key.public, &name, &ca_key);
        assert!(cert.verify_signature(&ca_key.public));
        assert!(cert.is_ca);
        assert_eq!(cert.issuer, cert.subject);
        let parsed = Certificate::parse(&cert.der).unwrap();
        assert!(parsed.is_ca);
    }

    #[test]
    fn hostname_matching_rules() {
        assert!(hostname_matches("www.example.sim", "www.example.sim"));
        assert!(hostname_matches("WWW.EXAMPLE.SIM", "www.example.sim"));
        assert!(hostname_matches("*.example.sim", "foo.example.sim"));
        assert!(!hostname_matches("*.example.sim", "example.sim"));
        assert!(!hostname_matches("*.example.sim", "a.b.example.sim"));
        assert!(!hostname_matches("*.example.sim", "fooexample.sim"));
        assert!(!hostname_matches("www.example.sim", "example.sim"));
    }

    #[test]
    fn cert_hostname_uses_san_then_cn() {
        let ca_key = keypair(b"ca5");
        let leaf_key = keypair(b"leaf5");
        let cert = Certificate::issue(
            &sample_params(),
            &leaf_key.public,
            &DistinguishedName::cn("SimCA"),
            &ca_key,
        );
        assert!(cert.matches_hostname("www.example.sim"));
        assert!(cert.matches_hostname("img.cdn.example.sim"));
        assert!(!cert.matches_hostname("other.sim"));
        // No SANs → CN fallback.
        let mut p = sample_params();
        p.dns_names.clear();
        let cert = Certificate::issue(
            &p,
            &leaf_key.public,
            &DistinguishedName::cn("SimCA"),
            &ca_key,
        );
        assert!(cert.matches_hostname("www.example.sim"));
    }

    #[test]
    fn validity_window() {
        let v = Validity {
            not_before: 10,
            not_after: 20,
        };
        assert!(!v.contains(9));
        assert!(v.contains(10));
        assert!(v.contains(15));
        assert!(v.contains(20));
        assert!(!v.contains(21));
    }
}
