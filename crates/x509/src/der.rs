//! ASN.1 DER encoding and decoding — the subset X.509 needs.
//!
//! Supported universal types: BOOLEAN, INTEGER, BIT STRING, OCTET STRING,
//! NULL, OBJECT IDENTIFIER, UTF8String, SEQUENCE, SET, GeneralizedTime
//! (encoded from virtual-clock seconds), plus context-specific constructed
//! tags for X.509 extensions and versions.

use ts_crypto::bignum::Ub;

/// DER universal tag numbers used by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// BOOLEAN (0x01)
    Boolean,
    /// INTEGER (0x02)
    Integer,
    /// BIT STRING (0x03)
    BitString,
    /// OCTET STRING (0x04)
    OctetString,
    /// NULL (0x05)
    Null,
    /// OBJECT IDENTIFIER (0x06)
    Oid,
    /// UTF8String (0x0c)
    Utf8String,
    /// SEQUENCE (constructed, 0x30)
    Sequence,
    /// SET (constructed, 0x31)
    Set,
    /// GeneralizedTime (0x18)
    GeneralizedTime,
    /// Context-specific constructed tag [n]
    Context(u8),
}

impl Tag {
    /// The encoded tag byte.
    pub fn byte(self) -> u8 {
        match self {
            Tag::Boolean => 0x01,
            Tag::Integer => 0x02,
            Tag::BitString => 0x03,
            Tag::OctetString => 0x04,
            Tag::Null => 0x05,
            Tag::Oid => 0x06,
            Tag::Utf8String => 0x0c,
            Tag::Sequence => 0x30,
            Tag::Set => 0x31,
            Tag::GeneralizedTime => 0x18,
            Tag::Context(n) => 0xa0 | (n & 0x1f),
        }
    }
}

/// Errors from DER parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerError {
    /// Input ended before a complete TLV.
    Truncated,
    /// A tag byte didn't match what the caller expected.
    UnexpectedTag {
        /// Tag the parser wanted.
        expected: u8,
        /// Tag actually present.
        found: u8,
    },
    /// A length field was malformed or non-minimal.
    BadLength,
    /// Value contents were invalid for the type.
    BadValue(&'static str),
    /// Data remained after a complete parse.
    TrailingData,
}

impl std::fmt::Display for DerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DerError::Truncated => write!(f, "DER input truncated"),
            DerError::UnexpectedTag { expected, found } => {
                write!(
                    f,
                    "unexpected DER tag {found:#04x} (wanted {expected:#04x})"
                )
            }
            DerError::BadLength => write!(f, "malformed DER length"),
            DerError::BadValue(what) => write!(f, "invalid DER value: {what}"),
            DerError::TrailingData => write!(f, "trailing data after DER value"),
        }
    }
}

impl std::error::Error for DerError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append a DER length to `out` (definite, minimal form).
fn write_len(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = len.to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let sig = &bytes[skip..];
        out.push(0x80 | sig.len() as u8);
        out.extend_from_slice(sig);
    }
}

/// Append a full TLV with the given tag and contents.
pub fn write_tlv(out: &mut Vec<u8>, tag: Tag, contents: &[u8]) {
    out.push(tag.byte());
    write_len(out, contents.len());
    out.extend_from_slice(contents);
}

/// Encode a SEQUENCE from pre-encoded children.
pub fn sequence(children: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = children.iter().map(|c| c.len()).sum();
    let mut contents = Vec::with_capacity(total);
    for c in children {
        contents.extend_from_slice(c);
    }
    let mut out = Vec::with_capacity(total + 4);
    write_tlv(&mut out, Tag::Sequence, &contents);
    out
}

/// Encode an explicit context tag `[n]` wrapping `inner`.
pub fn context(n: u8, inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(inner.len() + 4);
    write_tlv(&mut out, Tag::Context(n), inner);
    out
}

/// Encode a BOOLEAN.
pub fn boolean(v: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(3);
    write_tlv(&mut out, Tag::Boolean, &[if v { 0xff } else { 0x00 }]);
    out
}

/// Encode an INTEGER from an unsigned bignum (adds a leading zero when the
/// high bit is set, as DER requires for non-negative values).
pub fn integer(v: &Ub) -> Vec<u8> {
    let mut bytes = v.to_bytes_be();
    if bytes.is_empty() {
        bytes.push(0);
    }
    if bytes[0] & 0x80 != 0 {
        bytes.insert(0, 0);
    }
    let mut out = Vec::with_capacity(bytes.len() + 4);
    write_tlv(&mut out, Tag::Integer, &bytes);
    out
}

/// Encode an INTEGER from a u64.
pub fn integer_u64(v: u64) -> Vec<u8> {
    integer(&Ub::from_u64(v))
}

/// Encode an OCTET STRING.
pub fn octet_string(v: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() + 4);
    write_tlv(&mut out, Tag::OctetString, v);
    out
}

/// Encode a BIT STRING with zero unused bits.
pub fn bit_string(v: &[u8]) -> Vec<u8> {
    let mut contents = Vec::with_capacity(v.len() + 1);
    contents.push(0);
    contents.extend_from_slice(v);
    let mut out = Vec::with_capacity(contents.len() + 4);
    write_tlv(&mut out, Tag::BitString, &contents);
    out
}

/// Encode NULL.
pub fn null() -> Vec<u8> {
    vec![0x05, 0x00]
}

/// Encode a UTF8String.
pub fn utf8_string(s: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.len() + 4);
    write_tlv(&mut out, Tag::Utf8String, s.as_bytes());
    out
}

/// Encode an OBJECT IDENTIFIER from its arc components.
pub fn oid(arcs: &[u64]) -> Vec<u8> {
    assert!(arcs.len() >= 2, "OID needs at least two arcs");
    let mut contents = Vec::new();
    contents.push((arcs[0] * 40 + arcs[1]) as u8);
    for &arc in &arcs[2..] {
        let mut stack = Vec::new();
        let mut v = arc;
        stack.push((v & 0x7f) as u8);
        v >>= 7;
        while v > 0 {
            stack.push(0x80 | (v & 0x7f) as u8);
            v >>= 7;
        }
        stack.reverse();
        contents.extend_from_slice(&stack);
    }
    let mut out = Vec::with_capacity(contents.len() + 4);
    write_tlv(&mut out, Tag::Oid, &contents);
    out
}

/// Encode a GeneralizedTime from virtual-clock seconds since the simulated
/// epoch ("2016-01-01T00:00:00Z" in spirit). We render the seconds count as
/// `YYYYMMDDHHMMSSZ` with a fictional calendar of 86,400-second days and
/// 30-day months — the *ordering* is all validation needs.
pub fn generalized_time(secs: u64) -> Vec<u8> {
    let days = secs / 86_400;
    let rem = secs % 86_400;
    let year = 2016 + days / 360;
    let month = (days % 360) / 30 + 1;
    let day = (days % 30) + 1;
    let h = rem / 3600;
    let m = (rem % 3600) / 60;
    let s = rem % 60;
    let text = format!("{year:04}{month:02}{day:02}{h:02}{m:02}{s:02}Z");
    let mut out = Vec::with_capacity(text.len() + 4);
    write_tlv(&mut out, Tag::GeneralizedTime, text.as_bytes());
    out
}

/// Decode a GeneralizedTime produced by [`generalized_time`] back to
/// virtual seconds.
pub fn parse_generalized_time(text: &[u8]) -> Result<u64, DerError> {
    let s = std::str::from_utf8(text).map_err(|_| DerError::BadValue("time not UTF-8"))?;
    if s.len() != 15 || !s.ends_with('Z') {
        return Err(DerError::BadValue("time format"));
    }
    let num = |r: std::ops::Range<usize>| -> Result<u64, DerError> {
        s[r].parse().map_err(|_| DerError::BadValue("time digits"))
    };
    let year = num(0..4)?;
    let month = num(4..6)?;
    let day = num(6..8)?;
    let h = num(8..10)?;
    let m = num(10..12)?;
    let sec = num(12..14)?;
    if year < 2016 || month == 0 || month > 12 || day == 0 || day > 30 {
        return Err(DerError::BadValue("time out of range"));
    }
    let days = (year - 2016) * 360 + (month - 1) * 30 + (day - 1);
    Ok(days * 86_400 + h * 3600 + m * 60 + sec)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A cursor over DER-encoded bytes.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// True when all input is consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Peek the next tag byte without consuming.
    pub fn peek_tag(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    /// Fail unless all input was consumed.
    pub fn finish(&self) -> Result<(), DerError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DerError::TrailingData)
        }
    }

    fn read_len(&mut self) -> Result<usize, DerError> {
        let first = *self.data.get(self.pos).ok_or(DerError::Truncated)?;
        self.pos += 1;
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n = (first & 0x7f) as usize;
        if n == 0 || n > 8 {
            return Err(DerError::BadLength);
        }
        if self.pos + n > self.data.len() {
            return Err(DerError::Truncated);
        }
        let mut len = 0usize;
        for i in 0..n {
            len = len.checked_shl(8).ok_or(DerError::BadLength)? | self.data[self.pos + i] as usize;
        }
        self.pos += n;
        if len < 0x80 || (n > 1 && len < (1 << (8 * (n - 1)))) {
            return Err(DerError::BadLength); // non-minimal encoding
        }
        Ok(len)
    }

    /// Read a TLV with the expected tag; returns the contents.
    pub fn read_tlv(&mut self, tag: Tag) -> Result<&'a [u8], DerError> {
        let found = *self.data.get(self.pos).ok_or(DerError::Truncated)?;
        if found != tag.byte() {
            return Err(DerError::UnexpectedTag {
                expected: tag.byte(),
                found,
            });
        }
        self.pos += 1;
        let len = self.read_len()?;
        if self.pos + len > self.data.len() {
            return Err(DerError::Truncated);
        }
        let contents = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(contents)
    }

    /// Read a SEQUENCE and return a sub-reader over its contents.
    pub fn read_sequence(&mut self) -> Result<Reader<'a>, DerError> {
        Ok(Reader::new(self.read_tlv(Tag::Sequence)?))
    }

    /// Read an explicit context tag `[n]`, returning a sub-reader, or
    /// `None` if the next tag differs (optional fields).
    pub fn read_optional_context(&mut self, n: u8) -> Result<Option<Reader<'a>>, DerError> {
        if self.peek_tag() == Some(Tag::Context(n).byte()) {
            Ok(Some(Reader::new(self.read_tlv(Tag::Context(n))?)))
        } else {
            Ok(None)
        }
    }

    /// Read an INTEGER as an unsigned bignum (rejects negative values).
    pub fn read_integer(&mut self) -> Result<Ub, DerError> {
        let contents = self.read_tlv(Tag::Integer)?;
        if contents.is_empty() {
            return Err(DerError::BadValue("empty INTEGER"));
        }
        if contents[0] & 0x80 != 0 {
            return Err(DerError::BadValue("negative INTEGER"));
        }
        if contents.len() > 1 && contents[0] == 0 && contents[1] & 0x80 == 0 {
            return Err(DerError::BadValue("non-minimal INTEGER"));
        }
        Ok(Ub::from_bytes_be(contents))
    }

    /// Read an INTEGER expecting it to fit a u64.
    pub fn read_integer_u64(&mut self) -> Result<u64, DerError> {
        let v = self.read_integer()?;
        let bytes = v.to_bytes_be();
        if bytes.len() > 8 {
            return Err(DerError::BadValue("INTEGER exceeds u64"));
        }
        let mut buf = [0u8; 8];
        buf[8 - bytes.len()..].copy_from_slice(&bytes);
        Ok(u64::from_be_bytes(buf))
    }

    /// Read a BOOLEAN.
    pub fn read_boolean(&mut self) -> Result<bool, DerError> {
        let contents = self.read_tlv(Tag::Boolean)?;
        match contents {
            [0x00] => Ok(false),
            [0xff] => Ok(true),
            _ => Err(DerError::BadValue("BOOLEAN contents")),
        }
    }

    /// Read an OCTET STRING.
    pub fn read_octet_string(&mut self) -> Result<&'a [u8], DerError> {
        self.read_tlv(Tag::OctetString)
    }

    /// Read a BIT STRING, requiring zero unused bits.
    pub fn read_bit_string(&mut self) -> Result<&'a [u8], DerError> {
        let contents = self.read_tlv(Tag::BitString)?;
        match contents.split_first() {
            Some((0, rest)) => Ok(rest),
            _ => Err(DerError::BadValue("BIT STRING unused bits")),
        }
    }

    /// Read NULL.
    pub fn read_null(&mut self) -> Result<(), DerError> {
        let contents = self.read_tlv(Tag::Null)?;
        if contents.is_empty() {
            Ok(())
        } else {
            Err(DerError::BadValue("NULL with contents"))
        }
    }

    /// Read a UTF8String.
    pub fn read_utf8_string(&mut self) -> Result<String, DerError> {
        let contents = self.read_tlv(Tag::Utf8String)?;
        String::from_utf8(contents.to_vec()).map_err(|_| DerError::BadValue("not UTF-8"))
    }

    /// Read an OBJECT IDENTIFIER back to arcs.
    pub fn read_oid(&mut self) -> Result<Vec<u64>, DerError> {
        let contents = self.read_tlv(Tag::Oid)?;
        if contents.is_empty() {
            return Err(DerError::BadValue("empty OID"));
        }
        let mut arcs = vec![(contents[0] / 40) as u64, (contents[0] % 40) as u64];
        let mut acc: u64 = 0;
        let mut in_arc = false;
        for &b in &contents[1..] {
            acc = acc
                .checked_shl(7)
                .ok_or(DerError::BadValue("OID arc overflow"))?
                | (b & 0x7f) as u64;
            in_arc = true;
            if b & 0x80 == 0 {
                arcs.push(acc);
                acc = 0;
                in_arc = false;
            }
        }
        if in_arc {
            return Err(DerError::BadValue("OID ends mid-arc"));
        }
        Ok(arcs)
    }

    /// Read a GeneralizedTime to virtual seconds.
    pub fn read_generalized_time(&mut self) -> Result<u64, DerError> {
        let contents = self.read_tlv(Tag::GeneralizedTime)?;
        parse_generalized_time(contents)
    }

    /// Read the next TLV whatever its tag; returns (tag byte, contents).
    pub fn read_any(&mut self) -> Result<(u8, &'a [u8]), DerError> {
        let tag = *self.data.get(self.pos).ok_or(DerError::Truncated)?;
        self.pos += 1;
        let len = self.read_len()?;
        if self.pos + len > self.data.len() {
            return Err(DerError::Truncated);
        }
        let contents = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok((tag, contents))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlv_short_and_long_lengths() {
        let mut out = Vec::new();
        write_tlv(&mut out, Tag::OctetString, &[0xaa; 5]);
        assert_eq!(out[..2], [0x04, 0x05]);
        let mut out = Vec::new();
        write_tlv(&mut out, Tag::OctetString, &vec![0xbb; 200]);
        assert_eq!(out[..3], [0x04, 0x81, 200]);
        let mut out = Vec::new();
        write_tlv(&mut out, Tag::OctetString, &vec![0xcc; 1000]);
        assert_eq!(out[..4], [0x04, 0x82, 0x03, 0xe8]);
    }

    #[test]
    fn integer_roundtrip() {
        for v in [0u64, 1, 127, 128, 255, 256, 0x8000, u64::MAX] {
            let enc = integer_u64(v);
            let mut r = Reader::new(&enc);
            assert_eq!(r.read_integer_u64().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn integer_high_bit_gets_leading_zero() {
        let enc = integer_u64(0x80);
        // 02 02 00 80
        assert_eq!(enc, vec![0x02, 0x02, 0x00, 0x80]);
    }

    #[test]
    fn integer_rejects_negative_and_nonminimal() {
        let mut r = Reader::new(&[0x02, 0x01, 0x80]);
        assert!(matches!(r.read_integer(), Err(DerError::BadValue(_))));
        let mut r = Reader::new(&[0x02, 0x02, 0x00, 0x01]);
        assert!(matches!(r.read_integer(), Err(DerError::BadValue(_))));
    }

    #[test]
    fn oid_roundtrip() {
        // sha256WithRSAEncryption = 1.2.840.113549.1.1.11
        let arcs = [1u64, 2, 840, 113549, 1, 1, 11];
        let enc = oid(&arcs);
        let mut r = Reader::new(&enc);
        assert_eq!(r.read_oid().unwrap(), arcs);
        // Known encoding from RFC 8017.
        assert_eq!(
            enc,
            vec![0x06, 0x09, 0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x0b]
        );
    }

    #[test]
    fn boolean_strict_der() {
        let mut r = Reader::new(&[0x01, 0x01, 0xff]);
        assert!(r.read_boolean().unwrap());
        let mut r = Reader::new(&[0x01, 0x01, 0x01]);
        assert!(matches!(r.read_boolean(), Err(DerError::BadValue(_))));
    }

    #[test]
    fn bit_string_roundtrip() {
        let enc = bit_string(b"key bits");
        let mut r = Reader::new(&enc);
        assert_eq!(r.read_bit_string().unwrap(), b"key bits");
    }

    #[test]
    fn sequence_nesting() {
        let inner = sequence(&[integer_u64(7), utf8_string("x")]);
        let outer = sequence(&[inner.clone(), null()]);
        let mut r = Reader::new(&outer);
        let mut seq = r.read_sequence().unwrap();
        let mut inner_r = seq.read_sequence().unwrap();
        assert_eq!(inner_r.read_integer_u64().unwrap(), 7);
        assert_eq!(inner_r.read_utf8_string().unwrap(), "x");
        inner_r.finish().unwrap();
        seq.read_null().unwrap();
        seq.finish().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn context_tags_optional() {
        let payload = context(3, &integer_u64(9));
        let mut r = Reader::new(&payload);
        assert!(r.read_optional_context(0).unwrap().is_none());
        let mut inner = r.read_optional_context(3).unwrap().unwrap();
        assert_eq!(inner.read_integer_u64().unwrap(), 9);
    }

    #[test]
    fn generalized_time_roundtrip() {
        for secs in [0u64, 1, 86_399, 86_400, 123_456_789, 5_184_000] {
            let enc = generalized_time(secs);
            let mut r = Reader::new(&enc);
            assert_eq!(r.read_generalized_time().unwrap(), secs, "secs {secs}");
        }
    }

    #[test]
    fn generalized_time_ordering_preserved() {
        // Ordering must survive the encode/decode, since validity checks
        // compare times.
        let times = [0u64, 100, 86_400 * 45, 86_400 * 400, 86_400 * 800];
        for w in times.windows(2) {
            let a = generalized_time(w[0]);
            let b = generalized_time(w[1]);
            assert!(a < b || w[0] == w[1], "lexicographic order matches numeric");
        }
    }

    #[test]
    fn truncated_and_trailing_inputs_rejected() {
        let enc = octet_string(b"abcdef");
        let mut r = Reader::new(&enc[..4]);
        assert!(matches!(r.read_octet_string(), Err(DerError::Truncated)));
        let mut with_extra = enc.clone();
        with_extra.push(0);
        let mut r = Reader::new(&with_extra);
        r.read_octet_string().unwrap();
        assert_eq!(r.finish(), Err(DerError::TrailingData));
    }

    #[test]
    fn wrong_tag_reports_both() {
        let enc = integer_u64(5);
        let mut r = Reader::new(&enc);
        match r.read_octet_string() {
            Err(DerError::UnexpectedTag { expected, found }) => {
                assert_eq!(expected, 0x04);
                assert_eq!(found, 0x02);
            }
            other => panic!("expected tag error, got {other:?}"),
        }
    }

    #[test]
    fn nonminimal_length_rejected() {
        // 0x81 0x05 encodes length 5 non-minimally (5 < 0x80).
        let bad = [0x04u8, 0x81, 0x05, 1, 2, 3, 4, 5];
        let mut r = Reader::new(&bad);
        assert_eq!(r.read_octet_string(), Err(DerError::BadLength));
    }
}
