//! # ts-x509 — minimal X.509 certificates over a real DER codec
//!
//! The study restricts every measurement to HTTPS sites that present
//! *browser-trusted* certificates chaining to the NSS root store. This crate
//! provides the certificate machinery the simulated ecosystem needs:
//!
//! * [`der`] — an ASN.1 DER encoder/decoder subset (the types X.509 uses)
//! * [`cert`] — a minimal X.509 v3 profile with RSA-SHA256 signatures,
//!   subjectAltName DNS entries (including wildcards, which CDNs lean on),
//!   and basicConstraints
//! * [`store`] — a root store ("NSS-sim"), chain building/validation, and
//!   the institutional blacklist the paper's scans honour
//!
//! The profile is deliberately small: the measurements only require that
//! trust decisions (trusted / untrusted / blacklisted) behave like the real
//! ecosystem's, not that every X.509 corner case exists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod der;
pub mod store;

pub use cert::{hostname_matches, Certificate, CertificateParams, DistinguishedName, Validity};
pub use store::{Blacklist, RootStore, TrustError};
