//! Root store and chain validation.
//!
//! Models the paper's trust filter: scans only count domains whose
//! certificate chains to the NSS root store. The simulated ecosystem issues
//! from a handful of "SimCA" roots (the trusted set), a non-trusted CA (for
//! the ~"self-signed / invalid" population) and supports an institutional
//! blacklist of domains the scanner must skip.

use crate::cert::Certificate;
use std::collections::BTreeSet;

/// Why a chain failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrustError {
    /// The presented chain was empty.
    EmptyChain,
    /// No root in the store matches the top of the chain.
    UnknownRoot,
    /// A signature in the chain failed to verify.
    BadSignature {
        /// Index of the certificate whose signature failed (0 = leaf).
        index: usize,
    },
    /// A certificate is outside its validity window.
    Expired {
        /// Index of the expired certificate.
        index: usize,
    },
    /// An intermediate lacks the CA flag.
    NotACa {
        /// Index of the offending certificate.
        index: usize,
    },
    /// Issuer/subject names do not chain.
    NameChainBroken {
        /// Index whose issuer does not match the next subject.
        index: usize,
    },
    /// The leaf does not cover the requested hostname.
    HostnameMismatch,
}

impl std::fmt::Display for TrustError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrustError::EmptyChain => write!(f, "empty certificate chain"),
            TrustError::UnknownRoot => write!(f, "chain does not reach a trusted root"),
            TrustError::BadSignature { index } => write!(f, "bad signature at chain index {index}"),
            TrustError::Expired { index } => write!(f, "certificate {index} outside validity"),
            TrustError::NotACa { index } => write!(f, "certificate {index} is not a CA"),
            TrustError::NameChainBroken { index } => write!(f, "name chain broken at {index}"),
            TrustError::HostnameMismatch => write!(f, "hostname not covered by leaf"),
        }
    }
}

impl std::error::Error for TrustError {}

/// A set of trusted root certificates ("NSS-sim").
#[derive(Debug, Clone, Default)]
pub struct RootStore {
    roots: Vec<Certificate>,
}

impl RootStore {
    /// Empty store.
    pub fn new() -> Self {
        RootStore { roots: Vec::new() }
    }

    /// Add a trusted root.
    pub fn add_root(&mut self, root: Certificate) {
        self.roots.push(root);
    }

    /// Number of roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True if no roots are loaded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Validate `chain` (leaf first) for `hostname` at virtual time `now`.
    ///
    /// Rules: every certificate in-validity; each cert's signature verifies
    /// under the next cert's key (or a root's key at the top); each
    /// non-leaf is a CA; names chain issuer→subject; and the leaf covers
    /// `hostname`.
    pub fn validate(
        &self,
        chain: &[Certificate],
        hostname: &str,
        now: u64,
    ) -> Result<(), TrustError> {
        let leaf = chain.first().ok_or(TrustError::EmptyChain)?;
        for (i, cert) in chain.iter().enumerate() {
            if !cert.validity.contains(now) {
                return Err(TrustError::Expired { index: i });
            }
            if i > 0 && !cert.is_ca {
                return Err(TrustError::NotACa { index: i });
            }
        }
        // Verify signatures up the chain.
        for i in 0..chain.len() {
            let cert = &chain[i];
            if i + 1 < chain.len() {
                let issuer = &chain[i + 1];
                if cert.issuer != issuer.subject {
                    return Err(TrustError::NameChainBroken { index: i });
                }
                if !cert.verify_signature(&issuer.public_key) {
                    return Err(TrustError::BadSignature { index: i });
                }
            } else {
                // Top of the presented chain: must be signed by (or be) a
                // trusted root.
                let root = self
                    .roots
                    .iter()
                    .find(|r| r.subject == cert.issuer)
                    .ok_or(TrustError::UnknownRoot)?;
                if !root.validity.contains(now) {
                    return Err(TrustError::UnknownRoot);
                }
                if !cert.verify_signature(&root.public_key) {
                    return Err(TrustError::BadSignature { index: i });
                }
            }
        }
        if !leaf.matches_hostname(hostname) {
            return Err(TrustError::HostnameMismatch);
        }
        Ok(())
    }
}

/// The institutional blacklist the scanning methodology honours
/// (paper §3: "followed the institutional blacklist").
#[derive(Debug, Clone, Default)]
pub struct Blacklist {
    entries: BTreeSet<String>,
}

impl Blacklist {
    /// Empty blacklist.
    pub fn new() -> Self {
        Blacklist {
            entries: BTreeSet::new(),
        }
    }

    /// Add a domain.
    pub fn add(&mut self, domain: &str) {
        self.entries.insert(domain.to_ascii_lowercase());
    }

    /// True if `domain` must not be scanned.
    pub fn contains(&self, domain: &str) -> bool {
        self.entries.contains(&domain.to_ascii_lowercase())
    }

    /// Number of blacklisted domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertificateParams, DistinguishedName, Validity};
    use ts_crypto::drbg::HmacDrbg;
    use ts_crypto::rsa::RsaPrivateKey;

    struct TestPki {
        store: RootStore,
        root_key: RsaPrivateKey,
        root_name: DistinguishedName,
        inter_key: RsaPrivateKey,
        inter_cert: Certificate,
    }

    fn build_pki() -> TestPki {
        let mut rng = HmacDrbg::new(b"pki");
        let root_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let root_name = DistinguishedName::cn("SimCA Root");
        let root_cert = Certificate::issue(
            &CertificateParams {
                serial: 1,
                subject: root_name.clone(),
                validity: Validity {
                    not_before: 0,
                    not_after: 1_000_000_000,
                },
                dns_names: vec![],
                is_ca: true,
            },
            &root_key.public,
            &root_name,
            &root_key,
        );
        let inter_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let inter_name = DistinguishedName::cn("SimCA Intermediate");
        let inter_cert = Certificate::issue(
            &CertificateParams {
                serial: 2,
                subject: inter_name,
                validity: Validity {
                    not_before: 0,
                    not_after: 1_000_000_000,
                },
                dns_names: vec![],
                is_ca: true,
            },
            &inter_key.public,
            &root_name,
            &root_key,
        );
        let mut store = RootStore::new();
        store.add_root(root_cert);
        TestPki {
            store,
            root_key,
            root_name,
            inter_key,
            inter_cert,
        }
    }

    fn leaf(pki: &TestPki, host: &str, not_after: u64) -> Certificate {
        let mut rng = HmacDrbg::new(host.as_bytes());
        let key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        Certificate::issue(
            &CertificateParams {
                serial: 99,
                subject: DistinguishedName::cn(host),
                validity: Validity {
                    not_before: 0,
                    not_after,
                },
                dns_names: vec![host.to_string()],
                is_ca: false,
            },
            &key.public,
            &pki.inter_cert.subject,
            &pki.inter_key,
        )
    }

    #[test]
    fn valid_chain_accepted() {
        let pki = build_pki();
        let leaf = leaf(&pki, "site.sim", 500_000);
        let chain = vec![leaf, pki.inter_cert.clone()];
        pki.store.validate(&chain, "site.sim", 100).unwrap();
    }

    #[test]
    fn direct_root_issued_leaf_accepted() {
        let pki = build_pki();
        let mut rng = HmacDrbg::new(b"direct");
        let key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let leaf = Certificate::issue(
            &CertificateParams {
                serial: 7,
                subject: DistinguishedName::cn("direct.sim"),
                validity: Validity {
                    not_before: 0,
                    not_after: 500_000,
                },
                dns_names: vec!["direct.sim".into()],
                is_ca: false,
            },
            &key.public,
            &pki.root_name,
            &pki.root_key,
        );
        pki.store.validate(&[leaf], "direct.sim", 100).unwrap();
    }

    #[test]
    fn empty_chain_rejected() {
        let pki = build_pki();
        assert_eq!(
            pki.store.validate(&[], "x.sim", 0),
            Err(TrustError::EmptyChain)
        );
    }

    #[test]
    fn unknown_root_rejected() {
        let pki = build_pki();
        let mut rng = HmacDrbg::new(b"rogue");
        let rogue_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let rogue_name = DistinguishedName::cn("Rogue CA");
        let key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let leaf = Certificate::issue(
            &CertificateParams {
                serial: 66,
                subject: DistinguishedName::cn("evil.sim"),
                validity: Validity {
                    not_before: 0,
                    not_after: 500_000,
                },
                dns_names: vec!["evil.sim".into()],
                is_ca: false,
            },
            &key.public,
            &rogue_name,
            &rogue_key,
        );
        assert_eq!(
            pki.store.validate(&[leaf], "evil.sim", 100),
            Err(TrustError::UnknownRoot)
        );
    }

    #[test]
    fn expired_leaf_rejected() {
        let pki = build_pki();
        let leaf = leaf(&pki, "old.sim", 50);
        let chain = vec![leaf, pki.inter_cert.clone()];
        assert_eq!(
            pki.store.validate(&chain, "old.sim", 100),
            Err(TrustError::Expired { index: 0 })
        );
    }

    #[test]
    fn hostname_mismatch_rejected() {
        let pki = build_pki();
        let leaf = leaf(&pki, "a.sim", 500_000);
        let chain = vec![leaf, pki.inter_cert.clone()];
        assert_eq!(
            pki.store.validate(&chain, "b.sim", 100),
            Err(TrustError::HostnameMismatch)
        );
    }

    #[test]
    fn non_ca_intermediate_rejected() {
        let pki = build_pki();
        // Build a "chain" where the intermediate position holds a non-CA.
        let fake_inter = leaf(&pki, "notaca.sim", 500_000);
        let end = leaf(&pki, "site.sim", 500_000);
        let chain = vec![end, fake_inter];
        assert_eq!(
            pki.store.validate(&chain, "site.sim", 100),
            Err(TrustError::NotACa { index: 1 })
        );
    }

    #[test]
    fn broken_name_chain_rejected() {
        let pki = build_pki();
        let mut rng = HmacDrbg::new(b"second-root");
        let other_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let other_name = DistinguishedName::cn("Other CA");
        let other_ca = Certificate::issue(
            &CertificateParams {
                serial: 5,
                subject: other_name.clone(),
                validity: Validity {
                    not_before: 0,
                    not_after: 1_000_000_000,
                },
                dns_names: vec![],
                is_ca: true,
            },
            &other_key.public,
            &pki.root_name,
            &pki.root_key,
        );
        let end = leaf(&pki, "site.sim", 500_000); // issued by SimCA Intermediate
        let chain = vec![end, other_ca];
        assert_eq!(
            pki.store.validate(&chain, "site.sim", 100),
            Err(TrustError::NameChainBroken { index: 0 })
        );
    }

    #[test]
    fn blacklist_behaviour() {
        let mut bl = Blacklist::new();
        assert!(bl.is_empty());
        bl.add("Badsite.SIM");
        assert!(bl.contains("badsite.sim"));
        assert!(bl.contains("BADSITE.sim"));
        assert!(!bl.contains("goodsite.sim"));
        assert_eq!(bl.len(), 1);
    }
}
