//! Property-based tests for the DER codec and certificate machinery.

use proptest::prelude::*;
use ts_x509::der::{self, Reader};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn integers_roundtrip(v in any::<u64>()) {
        let enc = der::integer_u64(v);
        let mut r = Reader::new(&enc);
        prop_assert_eq!(r.read_integer_u64().unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn big_integers_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        use ts_crypto::bignum::Ub;
        let n = Ub::from_bytes_be(&bytes);
        let enc = der::integer(&n);
        let mut r = Reader::new(&enc);
        prop_assert_eq!(r.read_integer().unwrap(), n);
    }

    #[test]
    fn octet_and_utf8_strings_roundtrip(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
        text in "[ -~]{0,100}",
    ) {
        let enc = der::octet_string(&bytes);
        let mut r = Reader::new(&enc);
        prop_assert_eq!(r.read_octet_string().unwrap(), &bytes[..]);

        let enc = der::utf8_string(&text);
        let mut r = Reader::new(&enc);
        prop_assert_eq!(r.read_utf8_string().unwrap(), text);
    }

    #[test]
    fn bit_strings_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let enc = der::bit_string(&bytes);
        let mut r = Reader::new(&enc);
        prop_assert_eq!(r.read_bit_string().unwrap(), &bytes[..]);
    }

    #[test]
    fn oids_roundtrip(
        first in 0u64..3,
        second in 0u64..40,
        rest in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        let mut arcs = vec![first, second];
        arcs.extend(rest.iter().map(|&x| x as u64));
        let enc = der::oid(&arcs);
        let mut r = Reader::new(&enc);
        prop_assert_eq!(r.read_oid().unwrap(), arcs);
    }

    #[test]
    fn generalized_time_roundtrips_and_orders(
        a in 0u64..(700 * 86_400),
        b in 0u64..(700 * 86_400),
    ) {
        let ea = der::generalized_time(a);
        let eb = der::generalized_time(b);
        let mut ra = Reader::new(&ea);
        prop_assert_eq!(ra.read_generalized_time().unwrap(), a);
        // Encoding preserves order (validity comparisons depend on it).
        prop_assert_eq!(ea.cmp(&eb), a.cmp(&b));
    }

    #[test]
    fn nested_sequences_roundtrip(
        ints in proptest::collection::vec(any::<u64>(), 0..10),
    ) {
        let children: Vec<Vec<u8>> = ints.iter().map(|&v| der::integer_u64(v)).collect();
        let seq = der::sequence(&children);
        let outer = der::sequence(&[seq.clone(), der::null()]);
        let mut r = Reader::new(&outer);
        let mut o = r.read_sequence().unwrap();
        let mut inner = o.read_sequence().unwrap();
        for &v in &ints {
            prop_assert_eq!(inner.read_integer_u64().unwrap(), v);
        }
        inner.finish().unwrap();
        o.read_null().unwrap();
        o.finish().unwrap();
    }

    #[test]
    fn random_bytes_never_panic_the_reader(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Fuzz: whatever bytes arrive, parsing returns Ok or Err — never
        // panics, never reads out of bounds.
        let mut r = Reader::new(&data);
        let _ = r.read_any();
        let mut r = Reader::new(&data);
        let _ = r.read_sequence().map(|mut s| {
            let _ = s.read_integer();
            let _ = s.read_oid();
        });
        let mut r = Reader::new(&data);
        let _ = r.read_integer();
        let _ = der::parse_generalized_time(&data);
    }

    #[test]
    fn hostname_matching_never_panics_and_wildcards_behave(
        label in "[a-z0-9-]{1,12}",
        domain in "[a-z0-9.-]{1,30}",
    ) {
        use ts_x509::hostname_matches;
        let pattern = format!("*.{domain}");
        let host = format!("{label}.{domain}");
        prop_assert!(hostname_matches(&pattern, &host));
        prop_assert!(!hostname_matches(&pattern, &domain), "wildcard never matches the apex");
        prop_assert!(hostname_matches(&host, &host), "exact always matches");
    }
}
