//! The §6.1/§7 nation-state scenario, end to end:
//!
//! 1. passively record "forward-secret" HTTPS connections for a week;
//! 2. compromise the SSL terminator *once*, stealing one 16-byte STEK;
//! 3. decrypt the entire recorded week — then show the same theft failing
//!    against a provider that rotates its STEK daily;
//! 4. print the §7.2 target-analysis arithmetic for the Google analogue.
//!
//! ```text
//! cargo run --release --example nation_state
//! ```

use tls_shortcuts::attacker::passive::CapturedConnection;
use tls_shortcuts::attacker::stek::bulk_decrypt;
use tls_shortcuts::crypto::drbg::HmacDrbg;
use tls_shortcuts::population::{Population, PopulationConfig};
use tls_shortcuts::tls::config::ClientConfig;
use tls_shortcuts::tls::pump::pump_app_data;

fn main() {
    println!("building the simulated ecosystem...");
    let mut cfg = PopulationConfig::new(7, 2_000);
    cfg.flakiness = 0.0;
    let pop = Population::build(cfg);

    // The victim: a civic site fronted by the never-rotating CDN analogue.
    let victim = pop
        .truth
        .iter()
        .find(|t| t.operator.as_deref() == Some("fastlane"))
        .expect("fastlane exists")
        .name
        .clone();
    println!("victim: {victim} (CDN with a synchronized, never-rotated STEK)\n");

    // --- Phase 1: passive collection (XKEYSCORE-style buffer). ---
    let mut rng = HmacDrbg::new(b"nation-state-traffic");
    let ip = pop.dns.resolve(&victim, &mut rng).unwrap();
    let mut captures = Vec::new();
    for day in 0..7u64 {
        let now = day * 86_400 + 12 * 3_600;
        let cfg = ClientConfig::new(pop.root_store.clone(), &victim, now);
        let conn = pop.net.connect(ip, cfg, now, &mut rng).expect("connects");
        let (mut client, mut server, mut capture) = (conn.client, conn.server, conn.capture);
        client
            .send_app_data(format!("POST /donate amount=100 day={day}").as_bytes())
            .unwrap();
        pump_app_data(&mut client, &mut server, &mut capture).unwrap();
        server
            .send_app_data(format!("receipt #{day}: donor identity ...").as_bytes())
            .unwrap();
        pump_app_data(&mut client, &mut server, &mut capture).unwrap();
        let parsed = CapturedConnection::parse(&capture).unwrap();
        println!(
            "  day {day}: recorded {} encrypted bytes ({} suite, PFS: {})",
            capture.client_to_server.len() + capture.server_to_client.len(),
            format!("{:?}", parsed.cipher_suite),
            parsed.cipher_suite.is_forward_secret(),
        );
        captures.push(parsed);
    }

    // --- Phase 2: one intrusion, one 16-byte key. ---
    let pod = pop
        .terminators
        .iter()
        .find(|t| t.domains().contains(&victim))
        .expect("victim's terminator");
    let stolen = pod.stek.as_ref().unwrap().steal_keys();
    println!(
        "\nday 7: single compromise of the terminator — stole {} STEK(s), 16-byte key name {}...",
        stolen.len(),
        stolen[0]
            .key_name
            .iter()
            .take(6)
            .map(|b| format!("{b:02x}"))
            .collect::<String>(),
    );

    // --- Phase 3: retroactive decryption of the whole week. ---
    let recovered = bulk_decrypt(&captures, &stolen);
    println!(
        "\ndecrypted {}/{} recorded connections despite ECDHE key exchange:",
        recovered.len(),
        captures.len()
    );
    for (i, r) in &recovered {
        println!(
            "  day {i}: C→S {:?} | S→C {:?}",
            String::from_utf8_lossy(&r.client_to_server),
            String::from_utf8_lossy(&r.server_to_client),
        );
    }

    // --- Phase 4: the same theft against a daily rotator fails. ---
    let rotator = pop
        .truth
        .iter()
        .find(|t| t.operator.as_deref() == Some("cirrusflare"))
        .unwrap()
        .name
        .clone();
    let rip = pop.dns.resolve(&rotator, &mut rng).unwrap();
    let ccfg = ClientConfig::new(pop.root_store.clone(), &rotator, 3_600);
    let conn = pop
        .net
        .connect(rip, ccfg, 3_600, &mut rng)
        .expect("connects");
    let early_capture = CapturedConnection::parse(&conn.capture).unwrap();
    let rot_pod = pop
        .terminators
        .iter()
        .find(|t| t.domains().contains(&rotator))
        .unwrap();
    // Compromise 30 days later; rotation has long since destroyed the key.
    rot_pod
        .stek
        .as_ref()
        .unwrap()
        .active_key_name_at(30 * 86_400);
    let late_keys = rot_pod.stek.as_ref().unwrap().steal_keys();
    let outcome =
        tls_shortcuts::attacker::stek::decrypt_with_stolen_steks(&early_capture, &late_keys);
    println!(
        "\ncontrast — {rotator} (daily STEK rotation), key stolen 30 days after capture:\n  {}",
        match outcome {
            Err(e) => format!("decryption fails: {e}"),
            Ok(_) => "DECRYPTED — simulation bug!".into(),
        }
    );
    println!("\n→ rotation bounds the vulnerability window; a static STEK voids forward secrecy.");
}
