//! Quickstart: build a small simulated Internet, handshake with a site,
//! resume by session ID and by ticket, and read off everything the study
//! measures from a single connection.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tls_shortcuts::population::{Population, PopulationConfig};
use tls_shortcuts::scanner::{GrabOptions, Scanner};
use tls_shortcuts::tls::server::ResumeKind;

fn main() {
    // A deterministic 1,000-domain "Top Million": same seed, same world.
    println!("building a 1,000-domain simulated HTTPS ecosystem...");
    let pop = Population::build(PopulationConfig::new(42, 1_000));
    println!(
        "  {} domains in the daily list, {} browser-trusted in the stable core,\n  \
         {} SSL terminators, {} ASes\n",
        pop.churn.core().len(),
        pop.core_trusted().len(),
        pop.terminators.len(),
        pop.as_plan.as_count(),
    );

    let mut scanner = Scanner::new(&pop, "quickstart");

    // --- A full handshake, observed like the paper's modified zgrab. ---
    let domain = "yahoo.sim"; // the Table 2 headliner: 63 days on one STEK
    let grab = scanner.grab(domain, 10_000, &GrabOptions::new());
    let obs = grab.ok().expect("handshake succeeds").clone();
    println!("full handshake with {domain}:");
    println!(
        "  cipher suite : {:?} (forward secret: {})",
        obs.cipher_suite,
        obs.cipher_suite.is_forward_secret()
    );
    println!("  trusted chain: {}", obs.trusted);
    println!("  session ID   : {} bytes", obs.session_id.len());
    let nst = obs.ticket.clone().expect("server issues tickets");
    println!(
        "  ticket       : {} bytes, lifetime hint {}s",
        nst.ticket.len(),
        nst.lifetime_hint
    );
    println!(
        "  STEK id      : {}",
        obs.stek_id.clone().expect("parseable")
    );
    println!(
        "  server KEX   : {}...\n",
        &obs.kex_value_fp.clone().expect("PFS exchange")[..16]
    );

    // --- Session-ID resumption one second later. ---
    let opts = GrabOptions::new().resume_session(obs.session_id.clone(), obs.session.clone());
    let g2 = scanner.grab(domain, 10_001, &opts);
    let obs2 = g2.ok().expect("resumption works");
    println!(
        "1s later, offering the session ID: resumed = {:?}",
        obs2.resumed == Some(ResumeKind::SessionId)
    );

    // --- Ticket resumption ten minutes later. ---
    let opts = GrabOptions::new().resume_ticket(nst.ticket.clone(), obs.session.clone());
    let g3 = scanner.grab(domain, 10_600, &opts);
    let obs3 = g3.ok().expect("connects");
    println!(
        "10min later, offering the original ticket: resumed = {:?}",
        obs3.resumed == Some(ResumeKind::Ticket)
    );

    // --- The measurement that matters: the STEK never changes. ---
    let day = 86_400;
    let mut ids = Vec::new();
    for d in [0u64, 7, 30, 62] {
        let g = scanner.grab(domain, d * day + 3_600, &GrabOptions::new());
        if let Some(o) = g.ok() {
            ids.push((d, o.stek_id.clone().unwrap()));
        }
    }
    println!("\nSTEK identifier across the 9-week study:");
    for (d, id) in &ids {
        println!("  day {d:>2}: {}", &id[..24]);
    }
    let all_same = ids.windows(2).all(|w| w[0].1 == w[1].1);
    println!(
        "  → identical on every probe: {all_same} — every \"forward secret\" connection \
         in between\n    falls to one stolen 16-byte key (paper §6.1)."
    );
}
