//! A miniature end-to-end replication of the 9-week study: daily scans,
//! span estimation, service-group inference, combined exposure — the whole
//! §3→§6 pipeline on a small population, printing the headline numbers.
//!
//! ```text
//! cargo run --release --example scan_campaign [size]
//! ```
//!
//! (For the full per-table/figure output, use `cargo run --release -p
//! ts-bench --bin repro`.)

use tls_shortcuts::core::cdf::Cdf;
use tls_shortcuts::core::lifetime::SpanEstimator;
use tls_shortcuts::core::observations::KexKind;
use tls_shortcuts::core::report::pct;
use tls_shortcuts::population::{Population, PopulationConfig};
use tls_shortcuts::scanner::crossdomain::{build_targets, stek_sharing_scan};
use tls_shortcuts::scanner::daily::{run_campaign, CampaignOptions};
use tls_shortcuts::scanner::Scanner;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_200);
    println!("building a {size}-domain simulated Top Million (seed 2016)...");
    let pop = Population::build(PopulationConfig::new(2016, size));
    let core = pop.core_trusted();
    println!(
        "  stable core: {} domains, {} browser-trusted ({})",
        pop.churn.core().len(),
        core.len(),
        pct(core.len() as f64 / pop.churn.core().len() as f64),
    );

    // --- The 63-day daily campaign. ---
    println!("\nrunning 63 daily scans (ticket + DHE + ECDHE grabs per domain)...");
    let mut scanner = Scanner::new(&pop, "campaign");
    let targets = core.clone();
    let data = run_campaign(&mut scanner, &CampaignOptions::new(), move |_d| {
        targets.clone()
    });
    println!(
        "  {} handshake attempts, {} ticket sightings",
        data.attempts,
        data.tickets.len()
    );

    // --- STEK lifetimes (Figure 3's shape). ---
    let mut stek = SpanEstimator::new();
    stek.record_tickets(&data.tickets);
    let cdf = Cdf::from_samples(stek.max_spans());
    println!("\nSTEK lifetime over {} ticket-issuing domains:", cdf.len());
    println!(
        "  fresh daily : {} (paper ~53% of issuers)",
        pct(cdf.fraction_le(1))
    );
    println!("  span ≥ 7d   : {} (paper ~28%)", pct(cdf.fraction_ge(7)));
    println!("  span ≥ 30d  : {} (paper ~13%)", pct(cdf.fraction_ge(30)));

    // --- KEX value reuse (Figure 5's shape). ---
    let mut dhe = SpanEstimator::new();
    dhe.record_kex(&data.kex, KexKind::Dhe);
    let mut ecdhe = SpanEstimator::new();
    ecdhe.record_kex(&data.kex, KexKind::Ecdhe);
    let d7 = dhe.domains_with_span_at_least(7).len();
    let e7 = ecdhe.domains_with_span_at_least(7).len();
    println!("\nephemeral value reuse ≥7 days:");
    println!(
        "  DHE  : {d7} domains ({})",
        pct(d7 as f64 / core.len() as f64)
    );
    println!(
        "  ECDHE: {e7} domains ({})",
        pct(e7 as f64 / core.len() as f64)
    );

    // --- STEK service groups (Table 6's shape). ---
    println!("\ninferring STEK service groups from a one-day sharing scan...");
    let scanner2 = Scanner::new(&pop, "groups");
    let frame = build_targets(&scanner2, &core);
    let mut scanner2 = scanner2;
    let (groups, _) = stek_sharing_scan(&mut scanner2, &frame, 40 * 86_400, 6 * 3_600, 10, 1_800);
    println!("  {} groups; the five largest:", groups.len());
    for g in groups.iter().take(5) {
        println!("    {:<28} {} domains", g.label, g.size());
    }

    println!(
        "\nshapes to check against the paper: tickets ≫ ECDHE ≫ DHE persistence; one\n\
         CDN-like group dwarfing everything; a long singleton tail."
    );
}
