//! `repro` — regenerate every table and figure from the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--size N] [--seed S] [--days D] [--step SECS]
//!       [--workers N] [--telemetry-json PATH]
//! repro loadgen [--workers N] [--targets M] [--requests R] [--bulk PCT]
//!       [--mix FULL/SID/TICKET] [--seed S] [--telemetry-json PATH]
//!
//! EXPERIMENT: all (default) | table1 | table2 | table3 | table4 |
//!             table5 | table6 | table7 | fig1 | fig2 | fig3 | fig4 |
//!             fig5 | fig6 | fig7 | fig8 | google | demo | tls13 |
//!             ablation | campaign
//! ```
//!
//! `campaign` (explicit-only, like `ablation`) runs the sharded daily
//! campaign and prints a `campaign/v1` JSON summary on stdout: shard
//! layout, domain-days, streamed pair/group counts and the bounded-memory
//! high-water marks from [`ts_bench::exp_campaign::CampaignStats`]. Every
//! field is deterministic for a fixed (seed, size, days) at any worker
//! count — CI diffs it across `--workers` values.
//!
//! `loadgen` is not an experiment: it drives the sans-I/O connection API
//! with N worker threads against a simulated server fleet and prints a
//! `loadgen/v1` JSON report (deterministic work counts + measured
//! throughput/latency). `BENCH_7.json` archives its scaling curve.
//!
//! Absolute counts scale with `--size`; the percentages, orderings and
//! crossovers are the reproduction targets (see EXPERIMENTS.md).
//!
//! `--telemetry-json PATH` writes the merged telemetry snapshot (counters,
//! histograms, span timers) in its deterministic form — byte-identical
//! across runs for a fixed (seed, size, experiment) regardless of worker
//! count, because wall-clock durations are excluded. `--telemetry-wall`
//! switches the file to the full form, adding the wall-flagged
//! performance metrics (`campaign.domains_per_sec`, `process.peak_rss_kb`,
//! span wall nanos) for perf trajectories; that form is *not* covered by
//! the byte-identical claim.
//!
//! `--workers N` pins the fan-out thread count. It exists to *prove* it
//! doesn't matter: `tests/repro_determinism.rs` runs `--workers 1` and
//! `--workers 8` and asserts byte-identical stdout and telemetry.

use std::time::Instant;
use ts_bench::{
    exp_ablation, exp_campaign, exp_exposure, exp_lifetimes, exp_sharing, exp_support, exp_target,
    exp_tls13, Context, DAY,
};
use ts_core::json::Json;
use ts_scanner::probe::ProbeSchedule;
use ts_telemetry::{Histogram, SpanStat};

static SPAN_BUILD: SpanStat = SpanStat::new("repro.build_population");
static SPAN_TABLE1: SpanStat = SpanStat::new("repro.table1");
static SPAN_FIG1: SpanStat = SpanStat::new("repro.fig1");
static SPAN_FIG2: SpanStat = SpanStat::new("repro.fig2");
static SPAN_CAMPAIGN: SpanStat = SpanStat::new("repro.campaign");
static SPAN_TABLE5: SpanStat = SpanStat::new("repro.table5");
static SPAN_TABLE6: SpanStat = SpanStat::new("repro.table6");
static SPAN_TABLE7: SpanStat = SpanStat::new("repro.table7");
static SPAN_FIG8: SpanStat = SpanStat::new("repro.fig8");

/// Campaign throughput in domain-days per wall second. Wall-flagged: the
/// deterministic telemetry form drops it, so same-seed `--telemetry-json`
/// files stay byte-identical while `--telemetry-wall` archives the rate.
static CAMPAIGN_DOMAINS_PER_SEC: Histogram = Histogram::new_wall(
    "campaign.domains_per_sec",
    &[
        10, 100, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000,
    ],
);

/// Process peak resident set (VmHWM) in kB, sampled once per run just
/// before the telemetry snapshot is written. Wall-flagged for the same
/// reason: memory ceilings are host facts, not artefacts of the seed.
static PROCESS_PEAK_RSS_KB: Histogram = Histogram::new_wall(
    "process.peak_rss_kb",
    &[
        10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
    ],
);

/// Peak resident set size of this process in kB (Linux `VmHWM`), or
/// `None` where `/proc` is unavailable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Run `f`, recording wall time and the experiment's virtual-time window
/// under `span`.
fn timed<T>(span: &'static SpanStat, virtual_secs: u64, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    span.record(virtual_secs, t.elapsed().as_nanos() as u64);
    out
}

struct Args {
    experiment: String,
    size: usize,
    seed: u64,
    days: u64,
    step: u64,
    workers: usize,
    telemetry_json: Option<String>,
    telemetry_wall: bool,
    bench_smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".into(),
        size: 8_000,
        seed: 2016,
        days: 63,
        step: 300,  // the paper's probe cadence
        workers: 0, // 0 = hardware default
        telemetry_json: None,
        telemetry_wall: false,
        bench_smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--size" => {
                i += 1;
                args.size = argv[i].parse().expect("--size N");
            }
            "--seed" => {
                i += 1;
                args.seed = argv[i].parse().expect("--seed S");
            }
            "--days" => {
                i += 1;
                args.days = argv[i].parse().expect("--days D");
            }
            "--step" => {
                i += 1;
                args.step = argv[i].parse().expect("--step SECS");
            }
            "--workers" => {
                i += 1;
                args.workers = argv[i].parse().expect("--workers N");
            }
            "--telemetry-json" => {
                i += 1;
                args.telemetry_json = Some(argv[i].clone());
            }
            "--telemetry-wall" => {
                args.telemetry_wall = true;
            }
            "--bench-smoke" => {
                args.bench_smoke = true;
            }
            "--help" | "-h" => {
                println!(
                    "repro [EXPERIMENT] [--size N] [--seed S] [--days D] [--step SECS] \
                     [--workers N] [--telemetry-json PATH] [--telemetry-wall] [--bench-smoke]\n\
                     experiments: all table1..table7 fig1..fig8 google demo tls13 ablation \
                     campaign\n\
                     campaign: sharded daily campaign; deterministic campaign/v1 JSON on stdout\n\
                     --telemetry-wall: include wall-flagged perf metrics (domains/sec, \
                     peak RSS) in the telemetry JSON — no longer byte-identical\n\
                     --bench-smoke: skip experiments; print handshake/modexp \
                     throughput JSON (schema bench-smoke/v1)"
                );
                std::process::exit(0);
            }
            other => args.experiment = other.to_string(),
        }
        i += 1;
    }
    args
}

/// `repro loadgen ...` — its own tiny arg surface, separate from the
/// experiment flags.
fn run_loadgen(argv: &[String]) -> ! {
    let mut cfg = ts_loadgen::LoadgenConfig::default();
    let mut telemetry_json: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--workers" => {
                i += 1;
                cfg.workers = argv[i].parse().expect("--workers N");
            }
            "--targets" => {
                i += 1;
                cfg.targets = argv[i].parse().expect("--targets M");
            }
            "--requests" => {
                i += 1;
                cfg.requests_per_worker = argv[i].parse().expect("--requests R");
            }
            "--seed" => {
                i += 1;
                cfg.seed = argv[i].parse().expect("--seed S");
            }
            "--mix" => {
                i += 1;
                let parts: Vec<u8> = argv[i]
                    .split('/')
                    .map(|p| p.parse().expect("--mix FULL/SID/TICKET"))
                    .collect();
                assert_eq!(parts.len(), 3, "--mix FULL/SID/TICKET");
                cfg.mix = ts_loadgen::Mix {
                    full_pct: parts[0],
                    session_id_pct: parts[1],
                    ticket_pct: parts[2],
                };
            }
            "--bulk" => {
                i += 1;
                cfg.bulk_pct = argv[i].parse().expect("--bulk PCT");
            }
            "--bulk-bytes" => {
                i += 1;
                cfg.bulk_bytes = argv[i].parse().expect("--bulk-bytes N");
            }
            "--telemetry-json" => {
                i += 1;
                telemetry_json = Some(argv[i].clone());
            }
            "--help" | "-h" => {
                println!(
                    "repro loadgen [--workers N] [--targets M] [--requests R] \
                     [--mix FULL/SID/TICKET] [--seed S] [--bulk PCT] \
                     [--bulk-bytes N] [--telemetry-json PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown loadgen flag '{other}'"),
        }
        i += 1;
    }
    // Clock injected here so ts-loadgen itself stays wall-clock-free
    // under the determinism lint.
    let t0 = Instant::now();
    let clock = move || t0.elapsed().as_nanos() as u64;
    let report = ts_loadgen::run(&cfg, &clock);
    println!("{}", report.to_json());
    eprintln!(
        "[loadgen] {} handshakes ({} full, {} sid, {} ticket) with {} workers: \
         {:.1} hs/s wall, {:.1} hs/s on ideal cores, p50 {:?}us p99 {:?}us",
        report.work.handshakes,
        report.work.full,
        report.work.resume_session_id,
        report.work.resume_ticket,
        cfg.workers,
        report.handshakes_per_sec(),
        report.modeled_ideal_core_hs_per_sec(),
        report.p50_us,
        report.p99_us,
    );
    if let Some(path) = &telemetry_json {
        // Deterministic form: wall-flagged latency histograms excluded, so
        // the file is byte-identical across same-seed runs at any worker
        // count.
        let json = ts_telemetry::snapshot().to_json(false).to_json_string();
        std::fs::write(path, json).expect("write telemetry json");
        eprintln!("[loadgen] telemetry snapshot written to {path}");
    }
    std::process::exit(0);
}

fn main() {
    let first: Vec<String> = std::env::args().skip(1).collect();
    if first.first().map(String::as_str) == Some("loadgen") {
        run_loadgen(&first[1..]);
    }
    let args = parse_args();
    if args.bench_smoke {
        // Performance probe, not an experiment: no population build, JSON
        // on stdout so CI can archive/diff it against BENCH_5.json. The
        // clock is injected here so ts-bench stays wall-clock-free under
        // the determinism lint.
        let t0 = Instant::now();
        let clock = move || t0.elapsed().as_nanos() as u64;
        println!("{}", ts_bench::bench_smoke::run(&clock));
        return;
    }
    ts_core::par::set_default_workers(args.workers);
    let t0 = Instant::now();
    eprintln!(
        "[repro] building population: size={} seed={} days={}",
        args.size, args.seed, args.days
    );
    let mut cfg = ts_population::PopulationConfig::new(args.seed, args.size);
    cfg.study_days = args.days;
    let ctx = timed(&SPAN_BUILD, 0, || Context::from_config(cfg));
    eprintln!(
        "[repro] population ready in {:.1}s: {} core domains, {} trusted, {} terminators",
        t0.elapsed().as_secs_f64(),
        ctx.pop.churn.core().len(),
        ctx.core_trusted.len(),
        ctx.pop.terminators.len(),
    );
    let schedule = ProbeSchedule::coarse(args.step, 24 * 3_600);

    let run = |name: &str| args.experiment == "all" || args.experiment == name;
    let mut ran = false;
    let section = |title: &str| {
        println!("\n{}", "=".repeat(74));
        println!("{title}");
        println!("{}", "=".repeat(74));
    };

    if run("table1") {
        ran = true;
        let t = Instant::now();
        section("TABLE 1");
        println!(
            "{}",
            timed(&SPAN_TABLE1, 0, || exp_support::table1_support(&ctx)).report
        );
        eprintln!("[repro] table1 in {:.1}s", t.elapsed().as_secs_f64());
    }
    if run("fig1") {
        ran = true;
        let t = Instant::now();
        section("FIGURE 1");
        println!(
            "{}",
            timed(&SPAN_FIG1, 24 * 3_600, || {
                exp_lifetimes::fig1_session_id_lifetime(&ctx, &schedule)
            })
            .report
        );
        eprintln!("[repro] fig1 in {:.1}s", t.elapsed().as_secs_f64());
    }
    if run("fig2") {
        ran = true;
        let t = Instant::now();
        section("FIGURE 2");
        println!(
            "{}",
            timed(&SPAN_FIG2, 24 * 3_600, || {
                exp_lifetimes::fig2_ticket_lifetime(&ctx, &schedule)
            })
            .report
        );
        eprintln!("[repro] fig2 in {:.1}s", t.elapsed().as_secs_f64());
    }
    let campaign_needed = args.experiment == "campaign"
        || [
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "table3", "table4", "tls13",
        ]
        .iter()
        .any(|e| run(e));
    if campaign_needed {
        let t = Instant::now();
        let campaign = timed(&SPAN_CAMPAIGN, args.days * DAY, || ctx.campaign());
        let wall = t.elapsed().as_secs_f64();
        // Wall-side throughput: domain-days streamed per second of wall
        // time. Recorded into a wall-flagged histogram so it reaches
        // `--telemetry-wall` archives without touching the deterministic
        // form.
        let dps = if wall > 0.0 {
            campaign.stats.domain_days as f64 / wall
        } else {
            0.0
        };
        CAMPAIGN_DOMAINS_PER_SEC.observe(dps as u64);
        eprintln!(
            "[repro] daily campaign: {} attempts over {} days in {:.1}s \
             ({} shards, {} domain-days, {:.0} domain-days/s, \
             peak {} live stream entries)",
            campaign.attempts,
            campaign.days,
            wall,
            campaign.stats.shards,
            campaign.stats.domain_days,
            dps,
            campaign.stats.peak_live_entries,
        );
    }
    if args.experiment == "campaign" {
        // Explicit-only, like `ablation`: stdout is exactly one JSON
        // document (schema campaign/v1), every field a pure function of
        // (seed, size, days) — CI compares it across worker counts.
        ran = true;
        let campaign = ctx.campaign();
        let spans = &campaign.spans;
        let mut top = ts_core::stream::TopK::new(10);
        for (domain, ds) in spans.stek.domain_spans() {
            top.push(&domain, ds.max_span_days);
        }
        let top_reusers = Json::Array(
            top.into_vec()
                .into_iter()
                .map(|(domain, span)| {
                    Json::obj(vec![
                        ("domain", Json::str(domain)),
                        ("span_days", Json::uint(span)),
                    ])
                })
                .collect(),
        );
        let report = Json::obj(vec![
            ("schema", Json::str("campaign/v1")),
            ("size", Json::uint(args.size as u64)),
            ("seed", Json::uint(args.seed)),
            ("days", Json::uint(campaign.days)),
            ("shards", Json::uint(campaign.stats.shards as u64)),
            ("domains", Json::uint(campaign.stats.domains as u64)),
            ("domain_days", Json::uint(campaign.stats.domain_days)),
            ("attempts", Json::uint(campaign.attempts)),
            ("stek_pairs", Json::uint(spans.stek.pair_count() as u64)),
            ("dhe_pairs", Json::uint(spans.dhe.pair_count() as u64)),
            ("ecdhe_pairs", Json::uint(spans.ecdhe.pair_count() as u64)),
            ("stek_groups", Json::uint(campaign.stek_groups.len() as u64)),
            ("dh_groups", Json::uint(campaign.dh_groups.len() as u64)),
            ("hinted_domains", Json::uint(campaign.hints.len() as u64)),
            (
                "peak_live_entries",
                Json::uint(campaign.stats.peak_live_entries as u64),
            ),
            (
                "evicted_group_ids",
                Json::uint(campaign.stats.evicted_group_ids),
            ),
            ("top_stek_reusers", top_reusers),
        ]);
        println!("{}", report.to_json_string());
    }
    if run("fig3") {
        ran = true;
        section("FIGURE 3");
        println!("{}", exp_campaign::fig3_stek_lifetime(&ctx).report);
    }
    if run("fig4") {
        ran = true;
        section("FIGURE 4");
        println!("{}", exp_campaign::fig4_stek_by_rank(&ctx));
    }
    if run("fig5") {
        ran = true;
        section("FIGURE 5");
        println!("{}", exp_campaign::fig5_kex_reuse(&ctx).report);
    }
    if run("table2") {
        ran = true;
        section("TABLE 2");
        println!("{}", exp_campaign::table2_stek_reuse(&ctx));
    }
    if run("table3") {
        ran = true;
        section("TABLE 3");
        println!("{}", exp_campaign::table3_dhe_reuse(&ctx));
    }
    if run("table4") {
        ran = true;
        section("TABLE 4");
        println!("{}", exp_campaign::table4_ecdhe_reuse(&ctx));
    }
    if run("table5") {
        ran = true;
        let t = Instant::now();
        section("TABLE 5");
        println!(
            "{}",
            timed(&SPAN_TABLE5, 0, || exp_sharing::table5_cache_groups(&ctx)).report
        );
        eprintln!("[repro] table5 in {:.1}s", t.elapsed().as_secs_f64());
    }
    if run("table6") {
        ran = true;
        let t = Instant::now();
        section("TABLE 6");
        println!(
            "{}",
            timed(&SPAN_TABLE6, 0, || exp_sharing::table6_stek_groups(&ctx)).report
        );
        eprintln!("[repro] table6 in {:.1}s", t.elapsed().as_secs_f64());
    }
    if run("table7") {
        ran = true;
        let t = Instant::now();
        section("TABLE 7");
        println!(
            "{}",
            timed(&SPAN_TABLE7, 0, || exp_sharing::table7_dh_groups(&ctx)).report
        );
        eprintln!("[repro] table7 in {:.1}s", t.elapsed().as_secs_f64());
    }
    if run("fig6") || run("fig7") {
        ran = true;
        section("FIGURES 6 & 7");
        println!("{}", exp_sharing::fig6_fig7_treemaps(&ctx));
    }
    if run("fig8") {
        ran = true;
        let t = Instant::now();
        section("FIGURE 8");
        println!(
            "{}",
            timed(&SPAN_FIG8, 24 * 3_600, || exp_exposure::fig8_exposure(
                &ctx, &schedule
            ))
            .report
        );
        eprintln!("[repro] fig8 in {:.1}s", t.elapsed().as_secs_f64());
    }
    if run("google") {
        ran = true;
        section("§7.2 TARGET ANALYSIS");
        println!("{}", exp_target::google_target_analysis(&ctx));
    }
    if run("demo") {
        ran = true;
        section("§6.1 STEK THEFT DEMO");
        println!("{}", exp_target::stek_theft_demo(&ctx));
    }
    if run("tls13") {
        ran = true;
        section("§8.1 TLS 1.3 OUTLOOK");
        println!("{}", exp_tls13::tls13_outlook(&ctx));
    }
    if args.experiment == "ablation" {
        // Not part of `all`: ablations are follow-on analyses, not paper
        // artefacts.
        ran = true;
        section("ABLATION: STEK ROTATION SWEEP");
        println!("{}", exp_ablation::rotation_sweep(&ctx));
        section("ABLATION: PROBE-STEP SENSITIVITY");
        println!("{}", exp_ablation::probe_step_sensitivity(&ctx));
    }

    if !ran {
        eprintln!("unknown experiment '{}'; try --help", args.experiment);
        std::process::exit(2);
    }

    if let Some(kb) = peak_rss_kb() {
        PROCESS_PEAK_RSS_KB.observe(kb);
        eprintln!("[repro] peak RSS {kb} kB (VmHWM)");
    }
    let snap = ts_telemetry::snapshot();
    let handshakes = snap.counter("simnet.connect.ok");
    let resumptions = snap.counter("tls.server.resume.ticket.hit")
        + snap.counter("tls.server.resume.session_id.hit");
    eprintln!(
        "[repro] telemetry: {handshakes} successful handshakes ({resumptions} resumed), \
         {} full, {} STEK rotations — the paper's full-scale runs totalled \
         33.6M successful handshakes",
        snap.counter("tls.server.handshake.full"),
        snap.counter("tls.stek.rotations"),
    );
    if let Some(path) = &args.telemetry_json {
        // Deterministic form by default: wall-clock durations (and the
        // wall-flagged perf histograms) excluded, so the file is
        // byte-identical for a fixed (seed, size, experiment).
        // `--telemetry-wall` opts into the full form for perf archives.
        let json = snap.to_json(args.telemetry_wall).to_json_string();
        std::fs::write(path, json).expect("write telemetry json");
        eprintln!("[repro] telemetry snapshot written to {path}");
    }
    eprintln!("[repro] total {:.1}s", t0.elapsed().as_secs_f64());
}
