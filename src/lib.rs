//! # tls-shortcuts — *Measuring the Security Harm of TLS Crypto Shortcuts*
//!
//! A full reproduction of Springall, Durumeric & Halderman's IMC 2016
//! measurement study as a Rust workspace: a from-scratch TLS 1.2 stack
//! with white-box access to resumption state, a deterministic simulated
//! HTTPS ecosystem calibrated to the paper's Alexa Top Million findings,
//! the modified-ZMap scan toolchain, the analysis pipeline for every table
//! and figure, and the §6/§7 attacker who retroactively decrypts
//! "forward-secret" traffic from stolen STEKs, session caches, and reused
//! Diffie-Hellman values.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`crypto`] | `ts-crypto` | primitives: SHA-256, HMAC, TLS PRF, AES-CBC, ChaCha20-Poly1305, bignum/DH, X25519, RSA, DRBG |
//! | [`x509`] | `ts-x509` | DER, minimal X.509, root store, blacklist |
//! | [`tls`] | `ts-tls` | TLS 1.2 wire + state machines, session caches, RFC 5077 tickets/STEKs, ephemeral reuse, TLS 1.3 PSK model |
//! | [`simnet`] | `ts-simnet` | virtual time, ASes/IPs, DNS, the in-memory network |
//! | [`population`] | `ts-population` | the synthetic, calibrated Top-Million analogue |
//! | [`scanner`] | `ts-scanner` | burst scans, resumption probes, daily campaigns, cross-domain probing |
//! | [`core`] | `ts-core` | span estimators, CDFs, service groups, vulnerability windows, reports |
//! | [`attacker`] | `ts-attacker` | passive capture + STEK/cache/DH theft decryption, target analysis |
//!
//! ## Quickstart
//!
//! ```
//! use tls_shortcuts::population::{Population, PopulationConfig};
//! use tls_shortcuts::scanner::{GrabOptions, Scanner};
//!
//! // A deterministic 300-domain Internet.
//! let pop = Population::build(PopulationConfig::new(1, 300));
//! let mut scanner = Scanner::new(&pop, "quickstart");
//! let grab = scanner.grab("yahoo.sim", 1_000, &GrabOptions::new());
//! let obs = grab.ok().expect("handshake succeeds");
//! assert!(obs.trusted);
//! assert!(obs.stek_id.is_some(), "ticket carries its STEK identifier");
//! ```
//!
//! See `examples/` for the paper's headline experiments and
//! `src/bin/repro.rs` for the per-table/figure harness.

#![forbid(unsafe_code)]

pub use ts_attacker as attacker;
pub use ts_core as core;
pub use ts_crypto as crypto;
pub use ts_population as population;
pub use ts_scanner as scanner;
pub use ts_simnet as simnet;
pub use ts_tls as tls;
pub use ts_x509 as x509;
