//! Cross-crate integration: the full §3→§6 pipeline on one world —
//! population → scanner → analysis → attacker — validated against the
//! population's ground truth.

use tls_shortcuts::attacker::passive::CapturedConnection;
use tls_shortcuts::attacker::stek::decrypt_with_stolen_steks;
use tls_shortcuts::core::lifetime::SpanEstimator;
use tls_shortcuts::core::observations::KexKind;
use tls_shortcuts::crypto::drbg::HmacDrbg;
use tls_shortcuts::population::{Population, PopulationConfig};
use tls_shortcuts::scanner::crossdomain::{build_targets, stek_sharing_scan};
use tls_shortcuts::scanner::daily::{run_campaign, CampaignOptions};
use tls_shortcuts::scanner::{GrabOptions, Scanner};
use tls_shortcuts::tls::config::ClientConfig;
use tls_shortcuts::tls::pump::pump_app_data;

const DAY: u64 = 86_400;

fn world(seed: u64, size: usize, days: u64) -> Population {
    let mut cfg = PopulationConfig::new(seed, size);
    cfg.flakiness = 0.002;
    cfg.study_days = days;
    Population::build(cfg)
}

#[test]
fn campaign_spans_match_ground_truth_for_every_measured_domain() {
    let pop = world(100, 500, 12);
    let core = pop.core_trusted();
    let mut scanner = Scanner::new(&pop, "e2e-campaign");
    let options = CampaignOptions::new().days(0..12);
    let targets = core.clone();
    let data = run_campaign(&mut scanner, &options, move |_| targets.clone());

    let mut stek = SpanEstimator::new();
    stek.record_tickets(&data.tickets);
    let spans = stek.domain_spans();
    let mut static_checked = 0;
    let mut daily_checked = 0;
    for (domain, ds) in &spans {
        let truth = pop.truth.get(domain).expect("scanned domains have truth");
        match truth.stek_period {
            // Never-rotating STEKs must span (almost) the whole window.
            Some(u64::MAX) => {
                static_checked += 1;
                assert!(
                    ds.max_span_days >= 10,
                    "{domain}: static STEK span {} too short",
                    ds.max_span_days
                );
            }
            // Sub-daily rotation must never span multiple days...
            Some(p) if p <= 12 * 3_600 => {
                daily_checked += 1;
                assert!(
                    ds.max_span_days <= 2,
                    "{domain}: rotating STEK span {}",
                    ds.max_span_days
                );
            }
            _ => {}
        }
    }
    assert!(
        static_checked >= 3,
        "static STEK domains measured: {static_checked}"
    );
    assert!(
        daily_checked >= 10,
        "daily rotators measured: {daily_checked}"
    );
}

#[test]
fn kex_reuse_detected_only_where_configured() {
    let pop = world(101, 500, 8);
    let core = pop.core_trusted();
    let mut scanner = Scanner::new(&pop, "e2e-kex");
    let options = CampaignOptions::new().days(0..8);
    let targets = core.clone();
    let data = run_campaign(&mut scanner, &options, move |_| targets.clone());
    let mut ecdhe = SpanEstimator::new();
    ecdhe.record_kex(&data.kex, KexKind::Ecdhe);
    for (domain, ds) in ecdhe.domain_spans() {
        let truth = pop.truth.get(&domain).expect("truth");
        let configured = truth.ecdhe_reuse.unwrap_or(0);
        if configured == 0 {
            assert_eq!(
                ds.max_span_days, 1,
                "{domain}: fresh-policy domain showed multi-day ECDHE span"
            );
        }
        if configured >= 8 * DAY && ds.days_seen >= 6 {
            assert!(
                ds.max_span_days >= 6,
                "{domain}: configured {configured}s reuse but measured {}d",
                ds.max_span_days
            );
        }
    }
}

#[test]
fn stek_groups_match_configured_units() {
    let pop = world(102, 2_000, 8);
    let core = pop.core_trusted();
    let scanner = Scanner::new(&pop, "e2e-groups");
    let frame = build_targets(&scanner, &core);
    let mut scanner = scanner;
    let (groups, _) = stek_sharing_scan(&mut scanner, &frame, 9_000, 6 * 3_600, 6, 1_800);
    // Every multi-domain group must correspond to one configured STEK unit.
    let mut multi_checked = 0;
    for g in groups.iter().filter(|g| g.size() >= 2) {
        let units: std::collections::HashSet<Option<usize>> = g
            .members
            .iter()
            .map(|m| pop.truth.get(m).and_then(|t| t.stek_unit))
            .collect();
        assert_eq!(units.len(), 1, "group {} spans units {units:?}", g.label);
        multi_checked += 1;
    }
    assert!(
        multi_checked >= 3,
        "multi-domain groups found: {multi_checked}"
    );
    // And the largest group is the CDN analogue.
    assert!(
        groups[0].label.contains("cirrusflare"),
        "largest group: {} ({})",
        groups[0].label,
        groups[0].size()
    );
}

#[test]
fn full_pipeline_capture_to_decryption() {
    // Scan → find a long-STEK domain → record traffic → steal → decrypt.
    let pop = world(103, 600, 5);
    let mut scanner = Scanner::new(&pop, "e2e-attack");

    // The scanner notices yahoo.sim never rotates (5 daily sightings, 1 id).
    let mut ids = std::collections::HashSet::new();
    for day in 0..5u64 {
        let g = scanner.grab("yahoo.sim", day * DAY + 3_600, &GrabOptions::new());
        if let Some(obs) = g.ok() {
            ids.insert(obs.stek_id.clone().unwrap());
        }
    }
    assert_eq!(ids.len(), 1, "yahoo.sim uses one STEK all week");

    // A victim's connection is recorded on day 5.
    let mut rng = HmacDrbg::new(b"e2e-victim");
    let ip = pop.dns.resolve("yahoo.sim", &mut rng).unwrap();
    let ccfg = ClientConfig::new(pop.root_store.clone(), "yahoo.sim", 5 * DAY);
    let conn = pop
        .net
        .connect(ip, ccfg, 5 * DAY, &mut rng)
        .expect("connects");
    let (mut client, mut server, mut capture) = (conn.client, conn.server, conn.capture);
    client.send_app_data(b"GET /mail/inbox").unwrap();
    pump_app_data(&mut client, &mut server, &mut capture).unwrap();
    server.send_app_data(b"inbox: 3 unread").unwrap();
    pump_app_data(&mut client, &mut server, &mut capture).unwrap();
    let parsed = CapturedConnection::parse(&capture).unwrap();
    assert!(parsed.cipher_suite.is_forward_secret());

    // Weeks later, the attacker obtains the terminator's STEK.
    let pod = pop
        .terminators
        .iter()
        .find(|t| t.domains().contains(&"yahoo.sim".to_string()))
        .unwrap();
    let stolen = pod.stek.as_ref().unwrap().steal_keys();
    let recovered = decrypt_with_stolen_steks(&parsed, &stolen).expect("decrypts");
    assert_eq!(recovered.client_to_server, b"GET /mail/inbox");
    assert_eq!(recovered.server_to_client, b"inbox: 3 unread");
}

#[test]
fn whole_study_is_deterministic() {
    let run = || {
        let pop = world(104, 300, 4);
        let core = pop.core_trusted();
        let mut scanner = Scanner::new(&pop, "e2e-det");
        let options = CampaignOptions::new().days(0..4);
        let targets = core.clone();
        let data = run_campaign(&mut scanner, &options, move |_| targets.clone());
        let mut tickets = data.tickets;
        tickets.sort_by(|a, b| (&a.domain, a.day).cmp(&(&b.domain, b.day)));
        tickets
            .iter()
            .map(|t| format!("{}:{}:{}", t.domain, t.day, t.stek_id))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "identical seeds → identical observations");
}

#[test]
fn blacklisted_domains_never_scanned() {
    let pop = world(105, 800, 3);
    let blacklisted: Vec<String> = pop
        .truth
        .iter()
        .filter(|t| t.blacklisted)
        .map(|t| t.name.clone())
        .collect();
    if blacklisted.is_empty() {
        return; // seed produced no blacklist entries at this size
    }
    let mut scanner = Scanner::new(&pop, "e2e-blacklist");
    let options = CampaignOptions::new().days(0..3);
    let targets = blacklisted.clone();
    let data = run_campaign(&mut scanner, &options, move |_| targets.clone());
    assert!(
        data.tickets.is_empty(),
        "no observations from blacklisted domains"
    );
    assert!(data.kex.is_empty());
}
