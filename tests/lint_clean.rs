//! Enforce the secret-hygiene lint from `cargo test`.
//!
//! `ts-lint` walks every production `.rs` file in the workspace and fails
//! this test on any unsuppressed finding — non-constant-time comparisons
//! on key material, Debug/Display leak surfaces, missing zeroization, or
//! secret-indexed table lookups — and equally on any *stale* `ctlint.toml`
//! allowlist entry, so suppressions cannot outlive the code they excuse.

use std::path::Path;

#[test]
fn workspace_passes_secret_hygiene_lint() {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ts_lint::check_workspace(root).expect("ctlint.toml parses");
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — workspace walk is broken",
        report.files_scanned
    );
    assert!(report.is_clean(), "\n{}", report.render());
}
