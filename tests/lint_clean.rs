//! Enforce the secret-hygiene lint from `cargo test`.
//!
//! `ts-lint` walks every production `.rs` file in the workspace and fails
//! this test on any unsuppressed finding — non-constant-time comparisons
//! on key material, Debug/Display leak surfaces, missing zeroization,
//! secret-indexed table lookups, or secret-tainted values reaching a
//! telemetry sink — and equally on any *stale* `ctlint.toml` allowlist
//! entry, so suppressions cannot outlive the code they excuse.

use std::path::Path;

#[test]
fn workspace_passes_secret_hygiene_lint() {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ts_lint::check_workspace(root).expect("ctlint.toml parses");
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — workspace walk is broken",
        report.files_scanned
    );
    assert!(report.is_clean(), "\n{}", report.render());
}

#[test]
fn telemetry_sink_rule_is_armed_for_the_workspace_scan() {
    // The clean verdict above must include the telemetry-sink rule: the
    // built-in sink names and the extra `[telemetry] sinks` entries from
    // ctlint.toml have to survive config parsing, or the rule silently
    // checks nothing.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let toml = std::fs::read_to_string(root.join("ctlint.toml")).expect("ctlint.toml");
    let config = ts_lint::Config::from_toml(&toml).expect("ctlint.toml parses");
    for sink in ["observe", "emit", "record", "count_outcome"] {
        assert!(
            config.telemetry_sinks.iter().any(|s| s == sink),
            "telemetry sink `{sink}` missing from the effective config"
        );
    }
    assert!(ts_lint::Rule::all()
        .iter()
        .any(|r| r.id() == "telemetry-sink"));
}
