//! Enforce the secret-hygiene lint from `cargo test`.
//!
//! `ts-lint` walks every production `.rs` file in the workspace and fails
//! this test on any unsuppressed finding — non-constant-time comparisons
//! on key material, Debug/Display leak surfaces, missing zeroization,
//! secret-indexed table lookups, secret-tainted values reaching a
//! telemetry sink, lifetime-class violations, skippable wipes, or
//! unjustified `unsafe` — and equally on any *stale* `ctlint.toml`
//! allowlist entry, so suppressions cannot outlive the code they excuse.

use std::path::Path;

#[test]
fn workspace_passes_secret_hygiene_lint() {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ts_lint::check_workspace(root).expect("ctlint.toml parses");
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — workspace walk is broken",
        report.files_scanned
    );
    assert!(report.is_clean(), "\n{}", report.render());
}

#[test]
fn workspace_report_is_identical_at_any_worker_count() {
    // The parallel driver and the Jacobi flow fixpoint promise
    // byte-identical output regardless of fan-out — the property the
    // determinism rules demand of everything else in this repo.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let serial = ts_lint::check_workspace_with_workers(root, 1)
        .expect("ctlint.toml parses")
        .render();
    let parallel = ts_lint::check_workspace_with_workers(root, 8)
        .expect("ctlint.toml parses")
        .render();
    assert_eq!(serial, parallel);
}

#[test]
fn concurrency_model_dump_is_identical_at_any_worker_count() {
    // The `--model` dump now includes the inferred lock-acquisition graph
    // and interprocedural held-lock sets; like every other analyzer
    // output, the rendered form must be byte-identical no matter how the
    // parse fan-out is sliced.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let serial = ts_lint::workspace_concurrency_model(root, 1)
        .expect("ctlint.toml parses")
        .render();
    let parallel = ts_lint::workspace_concurrency_model(root, 8)
        .expect("ctlint.toml parses")
        .render();
    assert_eq!(serial, parallel);
    // The exemplar the lock-order rule checks: STEK republication nests
    // `published` -> `manager` (and nothing else may invert it).
    assert!(
        serial.contains("SharedStekInner.published -> SharedStekInner.manager"),
        "expected the STEK republication edge in the model dump:\n{serial}"
    );
    assert!(
        serial.contains("SharedStekInner.epoch  publishes(published)"),
        "expected the epoch publisher annotation in the model dump:\n{serial}"
    );
}

#[test]
fn stale_concurrency_waiver_fails_the_lint() {
    // `[[concurrency]]` entries obey the same contract as the other
    // waiver sections: one that matches no finding flips the report to
    // not-clean, so a deadlock waiver cannot outlive the cycle it excused.
    let mut config = ts_lint::Config::default();
    config.allows.push(ts_lint::Allow {
        section: ts_lint::RuleFamily::Concurrency,
        rule: "lock-order".into(),
        file: "crates/gone/src/cache.rs".into(),
        ident: "Gone.shards".into(),
        reason: "a cycle that no longer exists".into(),
    });
    let report = ts_lint::analyze_sources(
        &[(
            "lib.rs".into(),
            "fn ok(a: u32, b: u32) -> bool { a == b }".into(),
        )],
        &config,
    );
    assert!(!report.is_clean(), "\n{}", report.render());
    assert_eq!(report.stale_allows.len(), 1, "\n{}", report.render());
    assert!(
        report.stale_allows[0].starts_with("[[concurrency]]"),
        "{}",
        report.stale_allows[0]
    );
}

#[test]
fn stale_lifetime_waiver_fails_the_lint() {
    // A `[[lifetime]]` entry that matches no finding must flip the report
    // to not-clean, exactly like stale `[[allow]]`/`[[determinism]]`
    // entries — shortcut waivers cannot outlive the shortcut they excuse.
    let mut config = ts_lint::Config::default();
    config.allows.push(ts_lint::Allow {
        section: ts_lint::RuleFamily::Lifetime,
        rule: "secret-lifetime".into(),
        file: "crates/gone/src/cache.rs".into(),
        ident: "held".into(),
        reason: "a shortcut that no longer exists".into(),
    });
    let report = ts_lint::analyze_sources(
        &[(
            "lib.rs".into(),
            "fn ok(a: u32, b: u32) -> bool { a == b }".into(),
        )],
        &config,
    );
    assert!(!report.is_clean(), "\n{}", report.render());
    assert_eq!(report.stale_allows.len(), 1, "\n{}", report.render());
    assert!(
        report.stale_allows[0].starts_with("[[lifetime]]"),
        "{}",
        report.stale_allows[0]
    );
}

#[test]
fn removed_connection_api_has_no_callers() {
    // The PR that introduced the sans-I/O `ConnectionCommon` deleted the
    // old `input`/`take_output` surface in the same sweep. This grep keeps
    // it deleted: no file in the workspace may call the removed methods.
    // The needles are assembled at runtime so this test never matches its
    // own source.
    let needles = [
        format!(".{}{}(", "take_", "output"),
        format!(".{}{}(", "in", "put"),
        format!(".{}{}(", "take_", "app_data"),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenders = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable dir") {
            let entry = entry.expect("dir entry");
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                // Vendored stand-ins and build output are not ours to police.
                if name != "target" && name != "vendor" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let text = std::fs::read_to_string(&path).expect("readable source");
                for needle in &needles {
                    if text.contains(needle.as_str()) {
                        offenders.push(format!(
                            "{}: calls removed API `{}...)`",
                            path.strip_prefix(root).unwrap_or(&path).display(),
                            needle
                        ));
                    }
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "removed connection API still has callers:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn telemetry_sink_rule_is_armed_for_the_workspace_scan() {
    // The clean verdict above must include the telemetry-sink rule: the
    // built-in sink names and the extra `[telemetry] sinks` entries from
    // ctlint.toml have to survive config parsing, or the rule silently
    // checks nothing.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let toml = std::fs::read_to_string(root.join("ctlint.toml")).expect("ctlint.toml");
    let config = ts_lint::Config::from_toml(&toml).expect("ctlint.toml parses");
    for sink in ["observe", "emit", "record", "count_outcome"] {
        assert!(
            config.telemetry_sinks.iter().any(|s| s == sink),
            "telemetry sink `{sink}` missing from the effective config"
        );
    }
    assert!(ts_lint::Rule::all()
        .iter()
        .any(|r| r.id() == "telemetry-sink"));
}
