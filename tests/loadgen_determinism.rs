//! Loadgen determinism: the work a load profile performs — handshake
//! counts per kind and every deterministic telemetry counter — is a pure
//! function of the profile, independent of scheduling and repeatable
//! run-to-run. Wall-clock latency lands only in wall-flagged histograms,
//! which the deterministic telemetry form drops, so the `to_json(false)`
//! rendering of a run's delta must be byte-identical across same-seed
//! runs.
//!
//! Own integration-test binary on purpose: telemetry metrics are global
//! and monotone, so before/after snapshot deltas only isolate a run's
//! contribution when nothing else in the process is generating load.

use std::sync::atomic::{AtomicU64, Ordering};
use ts_loadgen::{LoadgenConfig, LoadgenReport, Mix};
use ts_telemetry::{snapshot, Snapshot};

/// Run a profile against a deterministic fake clock and return the report
/// plus the telemetry delta attributable to the run.
fn run_profile(cfg: &LoadgenConfig) -> (LoadgenReport, Snapshot) {
    let ticks = AtomicU64::new(0);
    let clock = move || ticks.fetch_add(1, Ordering::Relaxed) * 1_000;
    let base = snapshot();
    let report = ts_loadgen::run(cfg, &clock);
    (report, snapshot().delta_since(&base))
}

fn profile() -> LoadgenConfig {
    LoadgenConfig {
        workers: 4,
        targets: 3,
        requests_per_worker: 120,
        mix: Mix {
            full_pct: 10,
            session_id_pct: 45,
            ticket_pct: 45,
        },
        seed: 2016,
        ..LoadgenConfig::default()
    }
}

#[test]
fn same_profile_repeats_identically() {
    let cfg = profile();
    let (first, first_delta) = run_profile(&cfg);
    let (second, second_delta) = run_profile(&cfg);

    // The work counts are identical run-to-run...
    assert_eq!(first.work, second.work);
    assert_eq!(
        first.work.handshakes,
        (cfg.workers * cfg.requests_per_worker) as u64
    );
    // ...and so is every deterministic counter, bucket by bucket.
    assert_eq!(first_delta.counters, second_delta.counters);

    // The deterministic telemetry form (what `repro loadgen
    // --telemetry-json` writes) is byte-identical: wall-clock latency
    // lives only in wall-flagged histograms, which it drops.
    let first_json = first_delta.to_json(false).to_json_string();
    let second_json = second_delta.to_json(false).to_json_string();
    assert_eq!(first_json, second_json);
    assert!(
        !first_json.contains("loadgen.handshake_us"),
        "wall histogram leaked into the deterministic form"
    );

    // The full form keeps the wall histogram for humans.
    let full = first_delta.to_json(true).to_json_string();
    assert!(full.contains("loadgen.handshake_us"));
}

#[test]
fn loadgen_counters_match_report_work() {
    let cfg = profile();
    let (report, delta) = run_profile(&cfg);
    assert_eq!(
        delta.counter("loadgen.handshake.ok"),
        report.work.handshakes
    );
    assert_eq!(delta.counter("loadgen.handshake.full"), report.work.full);
    assert_eq!(
        delta.counter("loadgen.resume.session_id"),
        report.work.resume_session_id
    );
    assert_eq!(
        delta.counter("loadgen.resume.ticket"),
        report.work.resume_ticket
    );
    // The resumption-heavy schedule really resumes: after each worker's
    // first lap over the targets, every session-ID and ticket slot hits.
    assert!(report.work.resume_session_id > 0);
    assert!(report.work.resume_ticket > 0);
}
