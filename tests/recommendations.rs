//! §8.2 — the paper's operator recommendations, validated executably:
//! each mitigation measurably shrinks the attack surface in the simulation.

use std::sync::Arc;
use tls_shortcuts::attacker::cache::{decrypt_with_cache_dump, steal_cache};
use tls_shortcuts::attacker::passive::CapturedConnection;
use tls_shortcuts::attacker::stek::{bulk_decrypt, decrypt_with_stolen_steks};
use tls_shortcuts::crypto::drbg::HmacDrbg;
use tls_shortcuts::crypto::rsa::RsaPrivateKey;
use tls_shortcuts::tls::cache::SharedSessionCache;
use tls_shortcuts::tls::config::{ClientConfig, ServerConfig, ServerIdentity};
use tls_shortcuts::tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use tls_shortcuts::tls::pump::{pump, pump_app_data, WireCapture};
use tls_shortcuts::tls::ticket::{RotationPolicy, SharedStekManager, StekManager, TicketFormat};
use tls_shortcuts::tls::{ClientConn, ServerConn};
use tls_shortcuts::x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

const DAY: u64 = 86_400;
const HOUR: u64 = 3_600;

struct Site {
    store: Arc<RootStore>,
    config: ServerConfig,
}

fn site(seed: &[u8], rotation: RotationPolicy) -> Site {
    let mut rng = HmacDrbg::new(seed);
    let ca_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let ca_name = DistinguishedName::cn("Rec CA");
    let ca = Certificate::issue(
        &CertificateParams {
            serial: 1,
            subject: ca_name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        },
        &ca_key.public,
        &ca_name,
        &ca_key,
    );
    let key = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let leaf = Certificate::issue(
        &CertificateParams {
            serial: 2,
            subject: DistinguishedName::cn("site.sim"),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec!["site.sim".into()],
            is_ca: false,
        },
        &key.public,
        &ca_name,
        &ca_key,
    );
    let mut store = RootStore::new();
    store.add_root(ca);
    let identity = Arc::new(ServerIdentity {
        chain: vec![leaf],
        key,
    });
    let eph = EphemeralCache::new(
        EphemeralPolicy::FreshPerHandshake,
        tls_shortcuts::crypto::dh::DhGroup::Sim256,
        HmacDrbg::new(&[seed, b"-eph"].concat()),
    );
    let mut config = ServerConfig::new(identity, eph);
    config.tickets = Some(SharedStekManager::new(StekManager::new(
        rotation,
        TicketFormat::Rfc5077,
        HmacDrbg::new(&[seed, b"-stek"].concat()),
        0,
    )));
    config.ticket_accept_window = 24 * HOUR;
    config.ticket_lifetime_hint = (24 * HOUR) as u32;
    Site {
        store: Arc::new(store),
        config,
    }
}

fn connect_at(site: &Site, seed: &[u8], now: u64) -> (WireCapture, ClientConn, ServerConn) {
    let ccfg = ClientConfig::new(site.store.clone(), "site.sim", now);
    let mut client = ClientConn::new(ccfg, HmacDrbg::new(&[seed, b"-c"].concat()));
    let mut server = ServerConn::new(
        site.config.clone(),
        HmacDrbg::new(&[seed, b"-s"].concat()),
        now,
    );
    let result = pump(&mut client, &mut server).expect("handshake");
    let mut capture = result.capture;
    client.send_app_data(b"private request").unwrap();
    pump_app_data(&mut client, &mut server, &mut capture).unwrap();
    server.send_app_data(b"private response").unwrap();
    pump_app_data(&mut client, &mut server, &mut capture).unwrap();
    (capture, client, server)
}

#[test]
fn recommendation_rotate_steks_frequently() {
    // 14 days of recorded traffic; a single compromise on day 14.
    // Static STEK: everything falls. 6-hour rotation: at most the
    // overlap window falls.
    let static_site = site(b"rec-static", RotationPolicy::Static);
    let rotating_site = site(
        b"rec-rotating",
        RotationPolicy::Periodic {
            period: 6 * HOUR,
            overlap: 6 * HOUR,
        },
    );
    let mut static_caps = Vec::new();
    let mut rot_caps = Vec::new();
    for day in 0..14u64 {
        let (cap, _c, _s) = connect_at(&static_site, format!("s{day}").as_bytes(), day * DAY);
        static_caps.push(CapturedConnection::parse(&cap).unwrap());
        let (cap, _c, _s) = connect_at(&rotating_site, format!("r{day}").as_bytes(), day * DAY);
        rot_caps.push(CapturedConnection::parse(&cap).unwrap());
    }
    // Advance the rotating site's manager to day 14, then steal both.
    rotating_site
        .config
        .tickets
        .as_ref()
        .unwrap()
        .active_key_name_at(14 * DAY);
    let static_stolen = static_site.config.tickets.as_ref().unwrap().steal_keys();
    let rot_stolen = rotating_site.config.tickets.as_ref().unwrap().steal_keys();

    let static_fallen = bulk_decrypt(&static_caps, &static_stolen).len();
    let rot_fallen = bulk_decrypt(&rot_caps, &rot_stolen).len();
    assert_eq!(
        static_fallen, 14,
        "static STEK: whole fortnight decryptable"
    );
    assert_eq!(rot_fallen, 0, "6h rotation: nothing older than the overlap");
}

#[test]
fn recommendation_reduce_session_cache_lifetimes() {
    // Two sites, compromised at the same instant; the one with a short
    // cache lifetime (and hygienic sweeping) exposes fewer sessions.
    let long_site = site(b"rec-long-cache", RotationPolicy::Static);
    long_site.config.session_cache.as_ref().unwrap(); // default 300s
    let mut long_cfg = long_site.config.clone();
    long_cfg.session_cache = Some(SharedSessionCache::new(24 * HOUR, 10_000));
    let long_site = Site {
        store: long_site.store,
        config: long_cfg,
    };

    let short_site = site(b"rec-short-cache", RotationPolicy::Static);
    let mut short_cfg = short_site.config.clone();
    short_cfg.session_cache = Some(SharedSessionCache::new(5 * 60, 10_000));
    let short_site = Site {
        store: short_site.store,
        config: short_cfg,
    };

    // Connections spread over 12 hours, plus one a minute before the
    // compromise; both caches sweep at compromise.
    let mut long_caps = Vec::new();
    let mut short_caps = Vec::new();
    let times: Vec<u64> = (0..12u64)
        .map(|k| k * HOUR)
        .chain([12 * HOUR - 60])
        .collect();
    for (k, &t) in times.iter().enumerate() {
        let (cap, _c, _s) = connect_at(&long_site, format!("l{k}").as_bytes(), t);
        long_caps.push(CapturedConnection::parse(&cap).unwrap());
        let (cap, _c, _s) = connect_at(&short_site, format!("h{k}").as_bytes(), t);
        short_caps.push(CapturedConnection::parse(&cap).unwrap());
    }
    let now = 12 * HOUR;
    long_site.config.session_cache.as_ref().unwrap().sweep(now);
    short_site.config.session_cache.as_ref().unwrap().sweep(now);
    let long_dump = steal_cache(long_site.config.session_cache.as_ref().unwrap());
    let short_dump = steal_cache(short_site.config.session_cache.as_ref().unwrap());
    let long_fallen = long_caps
        .iter()
        .filter(|c| decrypt_with_cache_dump(c, &long_dump).is_ok())
        .count();
    let short_fallen = short_caps
        .iter()
        .filter(|c| decrypt_with_cache_dump(c, &short_dump).is_ok())
        .count();
    assert_eq!(long_fallen, 13, "24h cache: every session still resident");
    assert_eq!(
        short_fallen, 1,
        "5min cache: only the one-minute-old session survives"
    );
}

#[test]
fn recommendation_regional_steks_bound_blast_radius() {
    // One global STEK vs per-region STEKs: compromising one region's key
    // must not decrypt another region's traffic.
    let region_a = site(b"rec-region-a", RotationPolicy::Static);
    let region_b = site(b"rec-region-b", RotationPolicy::Static);
    // Global deployment: both regions share region_a's manager.
    let mut global_b_cfg = region_b.config.clone();
    global_b_cfg.tickets = region_a.config.tickets.clone();
    let global_b = Site {
        store: region_b.store.clone(),
        config: global_b_cfg,
    };

    let (cap_global, _c, _s) = connect_at(&global_b, b"gb", 1_000);
    let parsed_global = CapturedConnection::parse(&cap_global).unwrap();
    let stolen_a = region_a.config.tickets.as_ref().unwrap().steal_keys();
    assert!(
        decrypt_with_stolen_steks(&parsed_global, &stolen_a).is_ok(),
        "global STEK: region A's key decrypts region B's traffic"
    );

    // Regional deployment: region B keeps its own key.
    let (cap_regional, _c, _s) = connect_at(&region_b, b"rb", 1_000);
    let parsed_regional = CapturedConnection::parse(&cap_regional).unwrap();
    assert!(
        decrypt_with_stolen_steks(&parsed_regional, &stolen_a).is_err(),
        "regional STEKs: region A's key is useless against region B"
    );
}

#[test]
fn recommendation_disable_resumption_entirely() {
    // The maximal setting: no cache, no tickets, fresh ephemerals — after
    // the connection, nothing on the server decrypts it.
    let base = site(b"rec-disable", RotationPolicy::Static);
    let mut cfg = base.config.clone();
    cfg.tickets = None;
    cfg.session_cache = None;
    cfg.issue_session_ids = false;
    let hardened = Site {
        store: base.store.clone(),
        config: cfg,
    };
    let (capture, _client, server) = connect_at(&hardened, b"hard", 500);
    let parsed = CapturedConnection::parse(&capture).unwrap();
    assert!(parsed.issued_ticket.is_none());
    assert!(parsed.server_session_id.is_empty());
    // Nothing to steal: the only secret was the connection's own state.
    let (dhe, ecdhe) = hardened.config.ephemeral.steal();
    let ecdhe = ecdhe.expect("value cached during handshake");
    // Fresh-per-handshake: the cached value is already superseded for the
    // *next* connection, but a same-instant theft can still break the last
    // handshake — forward secrecy begins once it is erased/regenerated.
    let outcome = tls_shortcuts::attacker::dhe::decrypt_with_stolen_ecdhe(&parsed, &ecdhe);
    assert!(outcome.is_ok(), "the window is the connection itself");
    let _ = (dhe, server);
    // After one more handshake the value is gone.
    let (_cap2, _c2, _s2) = connect_at(&hardened, b"hard2", 600);
    let (_, later) = hardened.config.ephemeral.steal();
    let outcome =
        tls_shortcuts::attacker::dhe::decrypt_with_stolen_ecdhe(&parsed, &later.expect("cached"));
    assert!(
        outcome.is_err(),
        "fresh value per handshake: old capture is safe"
    );
}
