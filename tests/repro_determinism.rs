//! The determinism claim, proved end to end: `repro` as two separate
//! subprocesses — `--workers 1` vs `--workers 8` — must produce
//! byte-identical stdout and byte-identical `--telemetry-json` artifacts.
//!
//! This is the strongest form of the guarantee the ts-lint determinism
//! rules and the fixed-chunk `parallel_map` layout exist to uphold:
//! in-process tests can share state by accident, but two OS processes with
//! different ASLR layouts, different `HashMap` seeds, and different thread
//! interleavings can only agree byte-for-byte if results truly are a pure
//! function of `(seed, size, experiment)`.
//!
//! Stdout carries the tables; stderr (progress lines, wall-clock timings)
//! is deliberately outside the claim. The test skips gracefully when the
//! release binary has not been built (`cargo build --release`).

use std::path::PathBuf;
use std::process::Command;

fn repro_binary() -> Option<PathBuf> {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    let bin = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("release")
        .join("repro");
    bin.is_file().then_some(bin)
}

struct Run {
    stdout: Vec<u8>,
    telemetry: String,
}

fn run_repro(bin: &PathBuf, workers: usize, tag: &str) -> Run {
    let json_path = std::env::temp_dir().join(format!(
        "repro_det_{}_{tag}_w{workers}.telemetry.json",
        std::process::id()
    ));
    let output = Command::new(bin)
        .args([
            "table6",
            "--size",
            "300",
            "--seed",
            "77",
            "--days",
            "8",
            "--workers",
            &workers.to_string(),
            "--telemetry-json",
        ])
        .arg(&json_path)
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "repro --workers {workers} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let telemetry = std::fs::read_to_string(&json_path).expect("telemetry artifact written");
    let _ = std::fs::remove_file(&json_path);
    Run {
        stdout: output.stdout,
        telemetry,
    }
}

#[test]
fn repro_output_is_byte_identical_across_worker_counts() {
    let Some(bin) = repro_binary() else {
        eprintln!("skipping: target/release/repro not built (run `cargo build --release`)");
        return;
    };
    let serial = run_repro(&bin, 1, "a");
    let fanned = run_repro(&bin, 8, "b");

    assert!(
        !serial.stdout.is_empty() && serial.stdout.windows(7).any(|w| w == b"TABLE 6"),
        "table6 produced no report on stdout"
    );
    assert_eq!(
        serial.stdout, fanned.stdout,
        "stdout diverged between --workers 1 and --workers 8"
    );
    assert_eq!(
        serial.telemetry, fanned.telemetry,
        "telemetry artifacts diverged between --workers 1 and --workers 8"
    );

    // Same flags, separate process, different hash seeds: replaying the
    // run must also replay it exactly.
    let replay = run_repro(&bin, 1, "c");
    assert_eq!(
        serial.stdout, replay.stdout,
        "re-run with identical flags diverged"
    );
    assert_eq!(
        serial.telemetry, replay.telemetry,
        "telemetry re-run diverged"
    );
}
