//! Telemetry determinism: counter totals are a pure function of the work
//! performed, independent of how `parallel_map` partitions that work.
//!
//! This lives in its own integration-test binary on purpose: telemetry
//! metrics are global and monotone, so the measurement below isolates its
//! own contribution with before/after snapshot deltas — which only works
//! if no other test in the same process is grabbing concurrently.

use ts_core::par::parallel_map;
use ts_population::{Population, PopulationConfig};
use ts_scanner::{GrabOptions, Scanner};
use ts_telemetry::{snapshot, Snapshot};

/// Grab every domain once, fanned out over `workers` threads, and return
/// the telemetry delta attributable to those grabs.
///
/// Each domain gets a *fresh* scanner seeded by its own name, so the RNG
/// stream a domain sees does not depend on which chunk it landed in.
fn scan_with_workers(pop: &Population, domains: &[String], workers: usize) -> Snapshot {
    let base = snapshot();
    let _done: Vec<()> = parallel_map(domains, workers, |_chunk_id, chunk| {
        chunk
            .iter()
            .map(|domain| {
                let mut scanner = Scanner::new(pop, &format!("det-{domain}"));
                let _ = scanner.grab(domain, 5_000, &GrabOptions::new());
            })
            .collect()
    });
    snapshot().delta_since(&base)
}

#[test]
fn worker_count_does_not_change_counter_totals() {
    let pop = Population::build(PopulationConfig::new(17, 300));
    let domains: Vec<String> = pop.churn.core().iter().take(120).cloned().collect();
    assert!(!domains.is_empty());

    let single = scan_with_workers(&pop, &domains, 1);
    let fanned = scan_with_workers(&pop, &domains, 8);

    // The same work produced the same merged counters, histograms and
    // spans, bucket by bucket.
    assert_eq!(single, fanned, "1-worker vs 8-worker telemetry deltas");

    // And the work actually moved the needle.
    let grabs = single.counter("scanner.grab.ok")
        + single.counter("scanner.grab.refused")
        + single.counter("scanner.grab.timeout")
        + single.counter("scanner.grab.tls_failed")
        + single.counter("scanner.grab.blacklisted")
        + single.counter("scanner.grab.no_dns");
    assert_eq!(grabs, domains.len() as u64, "every domain concluded");
    assert!(
        single.counter("simnet.connect.ok") > 0,
        "handshakes happened"
    );

    // The delta snapshot round-trips through ts_core::json unchanged.
    let back = Snapshot::from_json(&single.to_json(true)).expect("parses");
    assert_eq!(back, single);
    // The deterministic form differs only in dropping wall-clock time.
    let det = Snapshot::from_json(&single.to_json(false)).expect("parses");
    assert_eq!(det.counters, single.counters);
    assert_eq!(det.histograms, single.histograms);
}
