//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset the TLS wire layer uses: big-endian
//! `put_*` writers on `Vec<u8>` via [`BufMut`], and a growable input
//! buffer [`BytesMut`] with `advance`/`split_to` front-consumption. The
//! backing store is a plain `Vec<u8>` plus a head offset; `advance` lazily
//! compacts once the dead prefix outgrows the live payload, so long-lived
//! record-layer buffers stay O(live bytes).

use std::ops::Deref;

/// Write access to a growable byte sink (big-endian integer encoders).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read cursor over buffered bytes.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Discard the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

/// A growable byte buffer that supports cheap front-consumption.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Live byte count.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// True when no live bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append bytes at the tail.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `at` live bytes.
    ///
    /// Panics if `at > self.len()`, matching `bytes::BytesMut::split_to`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {} > {}",
            at,
            self.len()
        );
        let front = self.data[self.head..self.head + at].to_vec();
        self.advance(at);
        BytesMut {
            data: front,
            head: 0,
        }
    }

    /// Copy the live bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    fn compact_if_needed(&mut self) {
        if self.head > 0 && self.head >= self.data.len() - self.head {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance out of bounds: {} > {}",
            cnt,
            self.len()
        );
        self.head += cnt;
        self.compact_if_needed();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn putters_are_big_endian() {
        let mut v = Vec::new();
        v.put_u8(0x01);
        v.put_u16(0x0203);
        v.put_u32(0x04050607);
        v.put_u64(0x08090a0b0c0d0e0f);
        assert_eq!(v[..3], [1, 2, 3]);
        assert_eq!(v[3..7], [4, 5, 6, 7]);
        assert_eq!(v.len(), 15);
    }

    #[test]
    fn split_and_advance_consume_front() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        b.advance(1);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        let front = b.split_to(2);
        assert_eq!(front.to_vec(), vec![2, 3]);
        assert_eq!(&b[..], &[4, 5]);
        b.extend_from_slice(&[6]);
        assert_eq!(b.to_vec(), vec![4, 5, 6]);
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        for i in 0..100u8 {
            b.extend_from_slice(&[i]);
        }
        b.advance(90);
        assert_eq!(b.len(), 10);
        assert_eq!(b[0], 90);
    }
}
