//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the `ts-bench` benchmark targets use —
//! groups, throughput annotation, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timer. No statistics engine: each benchmark runs a warm-up
//! pass, then a fixed sampling window, and reports the median per-iteration
//! time (plus throughput when annotated) on stdout. Good enough to compare
//! runs by eye and, more importantly, to keep `cargo test`/`cargo bench`
//! compiling and running without the crates.io dependency.

use std::time::{Duration, Instant};

/// Re-exports measurement marker types (API compatibility).
pub mod measurement {
    /// Wall-clock time measurement (the only measurement supported).
    pub struct WallTime;
}

/// Opaque hint to the optimizer that `x` is used.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How much setup output `iter_batched` should amortize per batch.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small setup values; batch many per timing window.
    SmallInput,
    /// Large setup values; one per timing window.
    LargeInput,
    /// Exactly one setup call per iteration.
    PerIteration,
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
            measurement_time,
        }
    }

    /// Time `routine` repeatedly until the sampling budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration pass.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
        if self.samples.is_empty() {
            self.samples.push(one);
        }
    }

    /// Time `routine` over fresh values from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
        if self.samples.is_empty() {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let per_iter = median.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench: {name:<48} {median:>12.3?}/iter{rate}");
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        report(&name.into(), b.median(), None);
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration (accepted for API compatibility; the
    /// stand-in always does a single calibration iteration instead).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Cap the sampling window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        let full = format!("{}/{}", self.name, id.into());
        report(&full, b.median(), self.throughput);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a named runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness=false bench binaries with
            // test-runner flags; a bare `--test` run should be a fast no-op
            // so plain `cargo test` doesn't pay for a full benchmark pass.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.measurement_time(Duration::from_millis(10));
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 32], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
    }
}
