//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace; since Rust
//! 1.63 the standard library provides the same guarantee (scoped threads
//! that may borrow from the enclosing stack frame), so this shim forwards
//! to `std::thread::scope` while keeping crossbeam's calling convention:
//! the scope closure and every spawned closure receive a `&Scope`, and
//! `scope()` returns a `Result` (always `Ok`; std propagates panics from
//! unjoined threads by resumption, matching what callers here expect).

/// Scoped-thread API surface, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads (wraps [`std::thread::Scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread (wraps [`std::thread::ScopedJoinHandle`]).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawns_and_joins() {
        let data = vec![1u32, 2, 3];
        let sum: u32 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
