//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal API-compatible subset backed by `std::sync`. Semantics match the
//! parts of parking_lot this workspace uses: `lock()`/`read()`/`write()`
//! return guards directly (no `Result`); a poisoned std lock is recovered
//! transparently because parking_lot has no poisoning concept.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive, parking_lot-flavoured (no lock poisoning).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Reader-writer lock, parking_lot-flavoured (no lock poisoning).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
