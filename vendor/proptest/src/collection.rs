//! Collection strategies: `vec` and `hash_set`, mirroring
//! `proptest::collection` for the size-range forms this workspace uses.

use crate::{Strategy, TestRng};
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's size.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let width = self.hi_inclusive - self.lo + 1;
        self.lo + rng.below(width as u128) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate hash sets whose elements come from `element`; the target size is
/// drawn from `size`, backing off when the element space is too small to
/// reach it (the set may then be smaller than requested, never larger).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(64) + 64 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_len_in_range() {
        let strat = vec(any::<u8>(), 2..=5);
        let mut rng = TestRng::for_test("vec_len");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_backs_off_on_tiny_domains() {
        // Only 2 possible values but we ask for up to 10.
        let strat = hash_set(0u64..2, 1..10);
        let mut rng = TestRng::for_test("hs");
        let s = strat.generate(&mut rng);
        assert!(!s.is_empty() && s.len() <= 2);
    }
}
