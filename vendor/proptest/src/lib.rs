//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a self-contained property-testing harness that accepts the same source
//! syntax the real proptest does for the subset these test suites use:
//!
//! - the `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`
//!   block macro;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`;
//! - strategies: integer and float ranges, `any::<T>()`, `Just`,
//!   `prop_oneof!`, tuples, regex-subset string literals, and
//!   `proptest::collection::{vec, hash_set}`.
//!
//! Differences from real proptest, deliberately accepted: generation is
//! driven by a fast deterministic RNG seeded from the test's module path
//! (stable across runs — failures are reproducible), there is **no
//! shrinking** (the failing inputs are printed instead), and `prop_assume!`
//! rejections simply skip the case without a rejection-rate cap.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod string;

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    /// Alias module, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving all value generation.
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from a test identifier.
    pub fn for_test(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng(h.finish() | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Config and case errors
// ---------------------------------------------------------------------------

/// Per-block configuration (only `cases` is meaningful here).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; not a failure.
    Reject,
    /// An assertion failed; aborts the whole test.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and primitive strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: `prop_oneof!` boxes strategies behind `dyn Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
        } else {
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {}..{}", self.start, self.end);
                let width = self.end as i128 - self.start as i128;
                (self.start as i128 + rng.below(width as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {}..={}", lo, hi);
                let width = hi as i128 - lo as i128 + 1;
                (lo as i128 + rng.below(width as u128) as i128) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u128) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String literals act as regex-subset strategies, as in real proptest.
impl Strategy for &'_ str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strategy)),+];
        $crate::Union::new(options)
    }};
}

/// Assert inside a proptest body; failure aborts with the generated inputs shown.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} (at {}:{})", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} (at {}:{})", format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (at {}:{})",
                stringify!($left), stringify!($right), file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}: {} (at {}:{})",
                stringify!($left), stringify!($right), format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (at {}:{})",
                stringify!($left), stringify!($right), file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}: {} (at {}:{})",
                stringify!($left), stringify!($right), format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Filter out the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The proptest block macro: wraps `fn name(arg in strategy, ..) { body }`
/// test definitions into case-generating `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    match (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })() {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {}/{} failed: {}", case + 1, config.cases, msg);
                        }
                    }
                }
            }
        )*
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $(
            $(#[$meta])*
            fn $name($($arg in $strategy),+) $body
        )*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(k == 1 || k == 2);
            prop_assume!(k == 1);
            prop_assert_eq!(k, 1);
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-c][0-9]{2}") {
            prop_assert_eq!(s.len(), 3);
            let bytes = s.as_bytes();
            prop_assert!((b'a'..=b'c').contains(&bytes[0]));
            prop_assert!(bytes[1].is_ascii_digit() && bytes[2].is_ascii_digit());
        }

        #[test]
        fn tuples_and_sets(
            (a, b) in (any::<u8>(), 1u8..5),
            set in crate::collection::hash_set(0u64..40, 1..10),
        ) {
            prop_assert!(b >= 1 && b < 5);
            let _ = a;
            prop_assert!(!set.is_empty() && set.len() < 10);
            prop_assert_ne!(set.len(), 0);
        }
    }
}
