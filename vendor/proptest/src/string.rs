//! Regex-subset string generation for `&str` strategies.
//!
//! Real proptest compiles the full regex syntax; this stand-in supports the
//! subset the workspace's test patterns use — literal characters, `\x`
//! escapes, character classes with ranges (`[a-z0-9.-]`), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `+`, `*` (the open-ended ones capped at
//! 8 repetitions). Unsupported constructs panic with the offending pattern
//! so a new test pattern fails loudly rather than generating junk.

use crate::TestRng;

enum Element {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Quantified {
    element: Element,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let element = match chars[i] {
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                match c {
                    'd' => Element::Class(vec![('0', '9')]),
                    'w' => Element::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    _ => Element::Literal(c),
                }
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if lo == '\\' {
                        i += 1;
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                        continue;
                    }
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                Element::Class(ranges)
            }
            '.' => {
                i += 1;
                // Any printable ASCII, close enough for test identifiers.
                Element::Class(vec![(' ', '~')])
            }
            '(' | ')' | '|' => panic!(
                "unsupported regex construct {:?} in pattern {pattern:?} \
                 (vendored proptest stand-in supports literals, classes, and quantifiers)",
                chars[i]
            ),
            c => {
                i += 1;
                Element::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse()
                            .unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}")),
                        hi.parse()
                            .unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}")),
                    ),
                    None => {
                        let n = body
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}"));
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        out.push(Quantified { element, min, max });
    }
    out
}

fn sample_element(e: &Element, rng: &mut TestRng) -> char {
    match e {
        Element::Literal(c) => *c,
        Element::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total as u128) as u64;
            for (lo, hi) in ranges {
                let span = *hi as u64 - *lo as u64 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap();
                }
                pick -= span;
            }
            unreachable!()
        }
    }
}

/// Generate one string matching `pattern` (see module docs for the subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let elements = parse(pattern);
    let mut out = String::new();
    for q in &elements {
        let n = q.min + rng.below((q.max - q.min + 1) as u128) as usize;
        for _ in 0..n {
            out.push(sample_element(&q.element, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_patterns_generate_plausible_values() {
        let mut rng = TestRng::for_test("patterns");
        for _ in 0..200 {
            let host = generate_from_pattern("[a-z][a-z0-9-]{0,30}\\.sim", &mut rng);
            assert!(host.ends_with(".sim"), "{host}");
            assert!(host.chars().next().unwrap().is_ascii_lowercase());

            let domain = generate_from_pattern("[a-z0-9.-]{1,30}", &mut rng);
            assert!((1..=30).contains(&domain.len()));

            let name = generate_from_pattern("[a-e][0-9]", &mut rng);
            assert_eq!(name.len(), 2);
        }
    }

    #[test]
    fn quantifiers() {
        let mut rng = TestRng::for_test("quant");
        for _ in 0..50 {
            let s = generate_from_pattern("a{2,4}b?c", &mut rng);
            assert!(s.starts_with("aa"));
            assert!(s.ends_with('c'));
            assert!(s.len() <= 6);
        }
    }
}
